"""Reuse-distance (LRU stack distance) analysis.

The reuse distance of an access is the number of *distinct* blocks
touched since the previous access to the same block; an access hits in a
fully-associative LRU cache of C blocks iff its reuse distance is < C.
Reuse-distance CDFs relative to LLC capacity are the paper's E3
characterization: GAP kernels put most of their mass far beyond the LLC,
SPEC-class workloads do not.

Computed exactly with the classic Bennett–Kruskal algorithm: a Fenwick
tree over access positions counts surviving "last accesses" inside the
lookback window in O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.trace import Trace

#: Distance value for first-time (cold) accesses.
COLD = -1


class _Fenwick:
    """Fenwick (binary indexed) tree over positions, 1-based internally."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in [0, index]."""
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)


def reuse_distances(blocks: np.ndarray) -> np.ndarray:
    """Exact reuse distance per access (``COLD`` for first touches)."""
    n = len(blocks)
    distances = np.empty(n, dtype=np.int64)
    last_pos: dict[int, int] = {}
    tree = _Fenwick(n)
    total_marked = 0
    block_list = blocks.tolist()
    for i, block in enumerate(block_list):
        prev = last_pos.get(block)
        if prev is None:
            distances[i] = COLD
        else:
            # Distinct blocks since prev = marked positions in (prev, i).
            distances[i] = total_marked - tree.prefix_sum(prev)
            tree.add(prev, -1)
            total_marked -= 1
        last_pos[block] = i
        tree.add(i, 1)
        total_marked += 1
    return distances


@dataclass(frozen=True)
class ReuseProfile:
    """Summary of a trace's reuse-distance distribution (block units)."""

    num_accesses: int
    cold_fraction: float
    median_distance: float
    p90_distance: float
    mean_distance: float

    def hit_fraction_at(self, capacity_blocks: int, distances: np.ndarray) -> float:
        """Fraction of accesses an LRU cache of that capacity would hit."""
        warm = distances[distances != COLD]
        if len(distances) == 0:
            return 0.0
        return float(np.count_nonzero(warm < capacity_blocks)) / len(distances)


def reuse_profile(trace: Trace, block_bits: int = 6) -> tuple[ReuseProfile, np.ndarray]:
    """Compute the reuse profile and raw distances of ``trace``."""
    blocks = trace.block_addrs(block_bits)
    distances = reuse_distances(blocks)
    warm = distances[distances != COLD]
    n = len(distances)
    if len(warm) == 0:
        profile = ReuseProfile(n, 1.0 if n else 0.0, float("inf"), float("inf"), float("inf"))
    else:
        profile = ReuseProfile(
            num_accesses=n,
            cold_fraction=float(np.count_nonzero(distances == COLD)) / n,
            median_distance=float(np.median(warm)),
            p90_distance=float(np.percentile(warm, 90)),
            mean_distance=float(warm.mean()),
        )
    return profile, distances


def reuse_cdf(
    distances: np.ndarray, capacities_blocks: list[int]
) -> dict[int, float]:
    """LRU hit fraction at each capacity (the E3 curve's sample points).

    Cold misses count as misses at every capacity, so values are directly
    comparable to simulated hit rates.
    """
    n = len(distances)
    if n == 0:
        return {c: 0.0 for c in capacities_blocks}
    warm = distances[distances != COLD]
    return {
        c: float(np.count_nonzero(warm < c)) / n for c in capacities_blocks
    }
