"""Plain-text table rendering for harness and benchmark output.

The benchmarks print the paper's tables and figure series as aligned
ASCII tables; this renderer keeps that output dependency-free and stable
enough to diff across runs.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats go through ``float_format``; everything else through ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
