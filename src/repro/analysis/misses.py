"""3C miss classification: compulsory / capacity / conflict.

The classic Hill taxonomy, applied at one cache level:

* **compulsory** — first-ever touch of the block (cold);
* **capacity** — would also miss in a *fully-associative* LRU cache of
  the same total size (reuse distance >= capacity in blocks);
* **conflict** — misses the set-associative cache but would hit the
  fully-associative one (set-index collisions).

The classification explains *which* misses a replacement policy could
ever address: compulsory misses are untouchable, capacity misses need a
bigger cache (or bypassing that frees space), and only conflict misses
are purely placement artifacts. The paper's GAP workloads are dominated
by capacity + compulsory misses — the quantitative form of "no policy
can fix this".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..mem.cache import Cache
from ..policies.basic import LRUPolicy
from ..trace.record import AccessKind
from ..trace.trace import Trace
from .reuse import COLD, reuse_distances


@dataclass(frozen=True)
class MissClassification:
    """Counts of the 3C taxonomy over one trace at one cache geometry."""

    accesses: int
    hits: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def misses(self) -> int:
        """Total misses of the set-associative cache."""
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        """Set-associative miss rate."""
        return self.misses / self.accesses if self.accesses else 0.0

    def fraction(self, kind: str) -> float:
        """Share of misses in one class ("compulsory"/"capacity"/"conflict")."""
        value = {"compulsory": self.compulsory, "capacity": self.capacity,
                 "conflict": self.conflict}[kind]
        return value / self.misses if self.misses else 0.0

    @property
    def policy_addressable_fraction(self) -> float:
        """Upper bound on the miss share a replacement policy can touch.

        Conflict misses plus capacity misses are in principle reachable
        (by smarter retention/bypass); compulsory misses never are.
        """
        if self.misses == 0:
            return 0.0
        return (self.capacity + self.conflict) / self.misses


def classify_misses(
    trace: Trace,
    size_bytes: int,
    num_ways: int,
    block_bits: int = 6,
) -> MissClassification:
    """Run the 3C classification for one cache geometry.

    Simulates the set-associative cache under LRU and compares against
    the reuse-distance model of a fully-associative LRU cache of the same
    capacity.
    """
    block_size = 1 << block_bits
    if size_bytes % (block_size * num_ways):
        raise ConfigurationError(
            f"size {size_bytes} is not sets*ways*{block_size}"
        )
    capacity_blocks = size_bytes // block_size

    blocks = trace.block_addrs(block_bits)
    distances = reuse_distances(blocks)

    cache = Cache("3C", size_bytes, num_ways, LRUPolicy(), block_bits=block_bits)
    compulsory = capacity = conflict = hits = 0
    for i, block in enumerate(blocks.tolist()):
        hit = cache.access(block, 0, AccessKind.LOAD).hit
        if hit:
            hits += 1
            continue
        cache.fill(block, 0, AccessKind.LOAD)
        distance = distances[i]
        if distance == COLD:
            compulsory += 1
        elif distance >= capacity_blocks:
            capacity += 1
        else:
            conflict += 1
    return MissClassification(
        accesses=len(blocks),
        hits=hits,
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )
