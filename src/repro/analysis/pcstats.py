"""PC-centric workload characterization (experiment E2).

The paper's explanation for why learned policies fail on graph
processing: GAP kernels execute from a *tiny* set of static PCs, and
each PC touches an *enormous* set of addresses, so any PC-indexed
correlation table sees one entry absorbing millions of conflicting
training examples. These helpers quantify exactly that, per workload,
for side-by-side tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.stats import compute_trace_stats
from ..trace.trace import Trace


@dataclass(frozen=True)
class PCProfile:
    """Per-workload PC characterization row."""

    workload: str
    num_pcs: int
    pc_entropy_bits: float
    mean_blocks_per_pc: float
    max_blocks_per_pc: int
    footprint_blocks: int

    @property
    def footprint_concentration(self) -> float:
        """Mean per-PC footprint as a fraction of the total footprint.

        Near 1.0 means each PC effectively spans the whole working set
        (the GAP failure mode); small values mean PCs partition the
        address space (the SPEC regime learned policies exploit).
        """
        if self.footprint_blocks == 0:
            return 0.0
        return self.mean_blocks_per_pc / self.footprint_blocks


def pc_profile(trace: Trace, block_bits: int = 6) -> PCProfile:
    """Compute the PC-characterization row for one trace."""
    stats = compute_trace_stats(trace, block_bits=block_bits)
    return PCProfile(
        workload=trace.name,
        num_pcs=stats.num_pcs,
        pc_entropy_bits=stats.pc_entropy_bits,
        mean_blocks_per_pc=stats.mean_blocks_per_pc,
        max_blocks_per_pc=stats.max_blocks_per_pc,
        footprint_blocks=stats.footprint_blocks,
    )


def compare_pc_profiles(traces: list[Trace], block_bits: int = 6) -> list[PCProfile]:
    """PC profiles for several traces, in input order."""
    return [pc_profile(t, block_bits=block_bits) for t in traces]


def pc_address_cardinality(trace: Trace, block_bits: int = 6) -> dict[int, int]:
    """Distinct blocks touched per PC (raw data behind the E2 table)."""
    return compute_trace_stats(trace, block_bits=block_bits).blocks_per_pc
