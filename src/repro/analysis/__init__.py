"""Workload characterization and aggregation tools."""

from .charts import grouped_hbar_chart, hbar_chart
from .misses import MissClassification, classify_misses
from .mrc import MissRatioCurve, default_capacities, miss_ratio_curve
from .phases import PhaseReport, WindowProfile, detect_phases, profile_windows
from .pcstats import PCProfile, compare_pc_profiles, pc_address_cardinality, pc_profile
from .reuse import COLD, ReuseProfile, reuse_cdf, reuse_distances, reuse_profile
from .stats import geometric_mean, harmonic_mean, percent_delta
from .tables import format_table

__all__ = [
    "COLD",
    "ReuseProfile",
    "reuse_cdf",
    "reuse_distances",
    "reuse_profile",
    "PCProfile",
    "pc_profile",
    "compare_pc_profiles",
    "pc_address_cardinality",
    "geometric_mean",
    "harmonic_mean",
    "percent_delta",
    "format_table",
    "hbar_chart",
    "grouped_hbar_chart",
    "MissClassification",
    "classify_misses",
    "MissRatioCurve",
    "miss_ratio_curve",
    "default_capacities",
    "PhaseReport",
    "WindowProfile",
    "detect_phases",
    "profile_windows",
]
