"""Windowed phase analysis of traces.

Slices a trace into fixed-size access windows and computes per-window
behaviour metrics (footprint, access mix, PC set, locality proxy). A
*phase change* is a window whose behaviour vector moves more than a
threshold from its predecessor's — the events that trip set-duelling
policies' adaptation (the paper's DRRIP/DIP discussion) and that make
single-window SimPoint selection risky.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..trace.record import AccessKind
from ..trace.trace import Trace


@dataclass(frozen=True)
class WindowProfile:
    """Behaviour of one fixed-size access window."""

    index: int
    start: int
    footprint_blocks: int
    store_fraction: float
    num_pcs: int
    new_block_fraction: float  # blocks not seen in any earlier window

    def vector(self) -> np.ndarray:
        """The normalized feature vector distance is computed on."""
        return np.array(
            [
                self.footprint_blocks,
                self.store_fraction,
                self.num_pcs,
                self.new_block_fraction,
            ],
            dtype=np.float64,
        )


@dataclass(frozen=True)
class PhaseReport:
    """All window profiles plus detected phase-change boundaries."""

    window_size: int
    windows: tuple[WindowProfile, ...]
    changes: tuple[int, ...]  # indices of windows that start a new phase

    @property
    def num_phases(self) -> int:
        """Number of phases (changes + the initial phase)."""
        return len(self.changes) + 1 if self.windows else 0


def profile_windows(trace: Trace, window_size: int, block_bits: int = 6) -> list[WindowProfile]:
    """Per-window behaviour profiles of ``trace``."""
    if window_size < 1:
        raise TraceError(f"window_size must be >= 1, got {window_size}")
    blocks = trace.block_addrs(block_bits)
    kinds = trace.kinds
    pcs = trace.pcs
    seen: set[int] = set()
    profiles: list[WindowProfile] = []
    for index, start in enumerate(range(0, len(trace), window_size)):
        stop = min(start + window_size, len(trace))
        window_blocks = blocks[start:stop]
        unique_blocks = set(window_blocks.tolist())
        new_blocks = unique_blocks - seen
        seen |= unique_blocks
        n = stop - start
        profiles.append(
            WindowProfile(
                index=index,
                start=start,
                footprint_blocks=len(unique_blocks),
                store_fraction=float(
                    np.count_nonzero(kinds[start:stop] == AccessKind.STORE) / n
                ),
                num_pcs=int(np.unique(pcs[start:stop]).size),
                new_block_fraction=len(new_blocks) / max(len(unique_blocks), 1),
            )
        )
    return profiles


def detect_phases(
    trace: Trace,
    window_size: int = 10_000,
    threshold: float = 0.5,
    block_bits: int = 6,
) -> PhaseReport:
    """Window the trace and mark windows whose behaviour shifts.

    The distance between consecutive windows' feature vectors is
    normalized per-dimension by the running scale; a relative distance
    above ``threshold`` marks a phase change.
    """
    profiles = profile_windows(trace, window_size, block_bits)
    if len(profiles) < 3:
        return PhaseReport(window_size, tuple(profiles), ())
    vectors = np.stack([p.vector() for p in profiles])
    scale = np.maximum(np.abs(vectors).max(axis=0), 1e-9)
    normalized = vectors / scale
    deltas = np.linalg.norm(np.diff(normalized, axis=0), axis=1)
    # The first window is cold (its new-block fraction is always 1), so
    # the 0 -> 1 transition is warm-up, not a phase change.
    changes = tuple(int(i) + 2 for i in np.nonzero(deltas[1:] > threshold)[0])
    return PhaseReport(window_size, tuple(profiles), changes)
