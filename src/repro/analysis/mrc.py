"""Miss-ratio curves (MRCs).

The miss ratio of a fully-associative LRU cache as a function of its
capacity, computed in one pass from exact reuse distances. MRCs are the
standard lens for "would a bigger/better cache help": a cliff means a
working set fits at that capacity; a long flat tail (the GAP signature)
means added capacity — and by extension smarter retention — buys
nothing until the footprint itself fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.trace import Trace
from .reuse import COLD, reuse_distances


@dataclass(frozen=True)
class MissRatioCurve:
    """An MRC sampled at block-count capacities.

    ``capacities[i]`` blocks -> ``miss_ratios[i]``; cold misses count as
    misses at every capacity, so ``miss_ratios[-1]`` is the compulsory
    floor once capacity exceeds the footprint.
    """

    capacities: tuple[int, ...]
    miss_ratios: tuple[float, ...]
    cold_fraction: float
    footprint_blocks: int

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        """Miss ratio at an arbitrary capacity (step interpolation)."""
        idx = np.searchsorted(self.capacities, capacity_blocks, side="right") - 1
        if idx < 0:
            return 1.0
        return self.miss_ratios[int(idx)]

    def knee_capacity(self, threshold: float = 0.5) -> int | None:
        """Smallest sampled capacity whose miss ratio drops below
        ``threshold`` x the capacity-1 ratio, or None if none does."""
        if not self.capacities:
            return None
        base = self.miss_ratios[0]
        for capacity, ratio in zip(self.capacities, self.miss_ratios):
            if ratio < threshold * base:
                return capacity
        return None


def default_capacities(max_blocks: int) -> list[int]:
    """Power-of-two capacity samples up to just past ``max_blocks``."""
    capacities = [1]
    while capacities[-1] < max_blocks * 2:
        capacities.append(capacities[-1] * 2)
    return capacities


def miss_ratio_curve(
    trace: Trace,
    capacities: list[int] | None = None,
    block_bits: int = 6,
) -> MissRatioCurve:
    """Compute the MRC of ``trace`` (one reuse-distance pass).

    ``capacities`` defaults to powers of two up to twice the footprint.
    """
    blocks = trace.block_addrs(block_bits)
    distances = reuse_distances(blocks)
    n = len(distances)
    footprint = int(np.unique(blocks).size) if n else 0
    if capacities is None:
        capacities = default_capacities(max(footprint, 1))
    capacities = sorted(set(int(c) for c in capacities if c >= 1))
    if n == 0:
        return MissRatioCurve(tuple(capacities), tuple(1.0 for _ in capacities), 0.0, 0)

    warm = distances[distances != COLD]
    cold = n - len(warm)
    # Histogram of warm distances -> hits(c) = #warm distances < c.
    sorted_warm = np.sort(warm)
    ratios = []
    for capacity in capacities:
        hits = int(np.searchsorted(sorted_warm, capacity, side="left"))
        ratios.append(1.0 - hits / n)
    return MissRatioCurve(
        capacities=tuple(capacities),
        miss_ratios=tuple(ratios),
        cold_fraction=cold / n,
        footprint_blocks=footprint,
    )
