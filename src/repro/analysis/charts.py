"""Terminal bar charts for figure-style output.

The paper's artifacts are bar charts (Figure 2's grouped MPKI bars,
Figure 3's per-suite speed-up bars). These renderers draw them as
unicode horizontal bars so the benchmark output *reads* like the figure,
not just like its data table. Pure text — no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

FULL = "█"
PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    """A left-aligned bar of `value` out of `scale`, `width` cells max."""
    if scale <= 0:
        return ""
    cells = max(0.0, value / scale) * width
    whole = int(cells)
    remainder = int((cells - whole) * 8)
    bar = FULL * whole + (PARTIAL[remainder] if whole < width else "")
    return bar


def hbar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.2f}",
    baseline: float | None = None,
) -> str:
    """Render a labelled horizontal bar chart.

    With ``baseline`` set (Figure-3 style speed-ups), bars start at the
    baseline: values above it grow right of a ``|`` marker, values below
    shrink left — matching how speed-up figures read.
    """
    if not values:
        raise ValueError("hbar_chart needs at least one value")
    label_width = max(len(k) for k in values)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if baseline is None:
        scale = max(values.values())
        for label, value in values.items():
            bar = _bar(value, scale, width)
            lines.append(
                f"{label.rjust(label_width)}  {bar.ljust(width)} {value_format.format(value)}"
            )
    else:
        # Symmetric scale around the baseline, at least ±10%.
        spread = max(
            max(abs(v - baseline) for v in values.values()), 0.1 * abs(baseline) or 0.1
        )
        half = width // 2
        for label, value in values.items():
            delta = value - baseline
            cells = int(round(abs(delta) / spread * half))
            cells = min(cells, half)
            if delta >= 0:
                bar = " " * half + "|" + FULL * cells
            else:
                bar = " " * (half - cells) + FULL * cells + "|"
            lines.append(
                f"{label.rjust(label_width)}  {bar.ljust(width + 1)} {value_format.format(value)}"
            )
    return "\n".join(lines)


def grouped_hbar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.1f}",
) -> str:
    """Figure-2 style grouped bars: one block of bars per group.

    All groups share one scale so bars are comparable across groups.
    """
    if not groups:
        raise ValueError("grouped_hbar_chart needs at least one group")
    scale = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    label_width = max(
        len(label) for series in groups.values() for label in series
    )
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group, series in groups.items():
        lines.append(f"{group}:")
        for label, value in series.items():
            bar = _bar(value, scale, width)
            lines.append(
                f"  {label.rjust(label_width)}  {bar.ljust(width)} "
                f"{value_format.format(value)}"
            )
    return "\n".join(lines)
