"""Statistical helpers for experiment aggregation."""

from __future__ import annotations

import math
from typing import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's suite aggregate).

    Raises ``ValueError`` on empty input or non-positive entries, because
    silently returning 0/NaN would corrupt speed-up tables.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (rate aggregation)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError(f"harmonic mean requires positive values, got {values}")
    return len(values) / sum(1.0 / v for v in values)


def percent_delta(value: float, baseline: float) -> float:
    """Relative change vs a baseline, in percent."""
    if baseline == 0:
        raise ValueError("percent delta needs a non-zero baseline")
    return 100.0 * (value - baseline) / baseline
