"""Durability for long sweeps: run journal, graceful shutdown, budgets.

PR 5's resilience layer survives failures *inside* the sweep process —
worker deaths, hangs, poison cells. This module covers the failure
domains above it, the ones a simulation *service* actually meets over an
hours-to-days horizon:

* **whole-process death** — :class:`RunJournal`, a schema-versioned
  write-ahead journal of cell outcomes. Every ``SweepEngine.run`` with a
  journal directory appends one fsync'd record per finished cell, so a
  ``kill -9`` (or a power cut) loses at most the cell that was in
  flight. Re-running the identical sweep spec — or ``repro sweep
  --resume <run-id>`` — restarts exactly at the first incomplete cell:
  completed cells come back from the result cache (the cache is the
  value store, the journal is the truth about what finished).
* **operator/scheduler shutdown** — :class:`ShutdownCoordinator`
  translates SIGTERM/SIGINT into a graceful stop: submission halts,
  in-flight cells drain against a deadline, the journal and failure
  report flush, and the sweep raises
  :class:`~repro.errors.SweepInterrupted` so the CLI can exit with
  :data:`EXIT_INTERRUPTED` ("interrupted, resumable") instead of a
  generic failure.
* **memory pressure** — :class:`MemoryWatchdog`, a per-worker RSS
  sampler. A cell that blows its budget raises a structured
  :class:`~repro.errors.MemoryBudgetError` inside the worker *before*
  the OS OOM-killer takes out the whole pool; the executor charges it a
  strike, so persistent offenders are poisoned while one-off pressure
  spikes recover on retry.

Disk exhaustion is handled by the result cache itself (byte budget with
LRU pruning, ENOSPC degradation — see
:class:`repro.harness.engine.ResultCache`); the chaos harness
(:mod:`repro.resilience.chaos`, ``repro chaos --scenario v2``) proves
every one of these paths end-to-end with bit-identical recovery.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sys
import threading
import time
import warnings
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from types import FrameType

from ..errors import MemoryBudgetError, ResilienceError

#: Schema version of one journal file. Bump on any incompatible change
#: to the header or record layout; readers refuse newer schemas instead
#: of misinterpreting them.
JOURNAL_SCHEMA_VERSION = 1

#: File suffix of a run journal (one file per run id).
JOURNAL_SUFFIX = ".journal"

#: Exit code of a gracefully interrupted (and therefore resumable)
#: sweep — BSD ``EX_TEMPFAIL``: "temporary failure, user is invited to
#: retry". Distinct from 0 (success) and 1 (failed), so wrappers and
#: schedulers can requeue interrupted runs without parsing stderr.
EXIT_INTERRUPTED = 75

#: Environment variable naming the journal directory for
#: :meth:`repro.harness.engine.SweepEngine.from_env`.
ENV_JOURNAL_DIR = "REPRO_JOURNAL_DIR"

#: Record-type tags inside a journal file.
_RECORD_HEADER = "header"
_RECORD_CELL = "cell"
_RECORD_END = "end"

#: Cell outcome values a journal records.
CELL_OK = "ok"
CELL_FAILED = "failed"
CELL_POISONED = "poisoned"


def sweep_spec_doc(
    trace_digests: dict[str, str],
    policies: list[str],
    config_doc: dict,
    warmup_fraction: float,
    sanitize: bool,
    telemetry_doc: dict | None,
    sampling_doc: dict | None,
    salt: str,
) -> dict:
    """The canonical description of one sweep — the journal's identity.

    Everything that determines the *result set* of a sweep is in here
    (mirroring :func:`repro.harness.engine.cell_key`, minus the per-cell
    split): trace content digests, policy list, machine configuration,
    warm-up fraction, sanitize/telemetry/sampling modes, and the
    simulator-version salt. Two runs with the same spec doc are the same
    run — which is exactly what makes auto-resume safe.
    """
    return {
        "traces": dict(sorted(trace_digests.items())),
        "policies": list(policies),
        "config": config_doc,
        "warmup_fraction": warmup_fraction,
        "sanitize": bool(sanitize),
        "telemetry": telemetry_doc,
        "sampling": sampling_doc,
        "salt": salt,
    }


def run_id_for(spec_doc: dict) -> str:
    """Deterministic run identifier: SHA-256 of the canonical spec."""
    canonical = json.dumps(spec_doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class RunJournal:
    """Crash-safe write-ahead journal of one sweep's cell outcomes.

    Layout: one JSON-lines file per run id under the journal directory.
    The first line is the header (schema version, run id, full sweep
    spec including the simulator salt, and an opaque ``context`` the CLI
    uses to rebuild the sweep for ``--resume``); every subsequent line
    is either a cell record or an end record. Appends are atomic at the
    line level and fsync'd, so after ``kill -9`` the journal is intact
    up to (at worst) one torn trailing line, which the reader discards.

    The journal never stores results — the content-addressed result
    cache does. A cell is *done* when both its cache entry and its
    journal record exist; a cell that died between compute and store has
    neither and simply re-runs. Journal writes degrade to a no-op with a
    single :class:`RuntimeWarning` if the journal location becomes
    unwritable: durability must never be the thing that kills a sweep.
    """

    def __init__(
        self,
        path: Path,
        run_id: str,
        spec_doc: dict,
        context: dict | None,
        resumed: bool,
        cell_records: dict[tuple[str, str], dict],
    ) -> None:
        self.path = path
        self.run_id = run_id
        self.spec_doc = spec_doc
        self.context = context
        #: True when this journal belonged to an earlier, incomplete run
        #: of the same spec and the current run is continuing it.
        self.resumed = resumed
        self._cells = cell_records
        self._fh = None  # type: ignore[var-annotated]
        self._disabled = False

    # -- construction -------------------------------------------------------

    @classmethod
    def open_or_create(
        cls,
        journal_dir: str | Path,
        spec_doc: dict,
        context: dict | None = None,
    ) -> "RunJournal | None":
        """The journal for this spec: resume it, rotate it, or create it.

        * no journal on disk → create a fresh one (header written
          atomically, then fsync'd);
        * an *incomplete* journal with the same run id → resume: its
          cell records are loaded and appends continue in place;
        * a *complete* journal → the previous run finished; it is
          rotated away (``.1`` suffix) and a fresh journal starts.

        Returns ``None`` (after one :class:`RuntimeWarning`) when the
        journal directory cannot be written — the sweep then runs
        journal-less rather than dying.
        """
        run_id = run_id_for(spec_doc)
        directory = Path(journal_dir)
        path = directory / f"{run_id}{JOURNAL_SUFFIX}"
        try:
            directory.mkdir(parents=True, exist_ok=True)
            if path.is_file():
                parsed = _parse_journal(path)
                if parsed is not None and not parsed.complete:
                    journal = cls(
                        path, run_id, spec_doc,
                        parsed.context if context is None else context,
                        resumed=True, cell_records=parsed.cells,
                    )
                    journal._fh = open(path, "a", encoding="utf-8")
                    return journal
                # Finished (or unreadable) previous generation: keep it
                # as history, never append a new run onto it.
                os.replace(path, path.with_suffix(path.suffix + ".1"))
            journal = cls(
                path, run_id, spec_doc, context,
                resumed=False, cell_records={},
            )
            header = {
                "record": _RECORD_HEADER,
                "schema": JOURNAL_SCHEMA_VERSION,
                "run_id": run_id,
                "spec": spec_doc,
                "context": context,
            }
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            journal._fh = open(path, "a", encoding="utf-8")
            return journal
        except OSError as exc:
            warnings.warn(
                f"run journal at {path} is unusable ({exc}); "
                "continuing without crash-safe resume",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    @staticmethod
    def load(path: str | Path) -> "_ParsedJournal":
        """Read-only parse of a journal file (``repro sweep --resume``)."""
        parsed = _parse_journal(Path(path))
        if parsed is None:
            raise ResilienceError(
                f"not a readable run journal: {path} (missing, torn header, "
                "or written by a newer schema)"
            )
        return parsed

    @staticmethod
    def find(journal_dir: str | Path, run_id: str) -> Path:
        """Path of ``run_id``'s journal; raises if it does not exist."""
        path = Path(journal_dir) / f"{run_id}{JOURNAL_SUFFIX}"
        if not path.is_file():
            known = sorted(
                p.name[: -len(JOURNAL_SUFFIX)]
                for p in Path(journal_dir).glob(f"*{JOURNAL_SUFFIX}")
            ) if Path(journal_dir).is_dir() else []
            raise ResilienceError(
                f"no journal for run id {run_id!r} under {journal_dir}"
                + (f"; known runs: {', '.join(known)}" if known else "")
            )
        return path

    # -- state --------------------------------------------------------------

    @property
    def completed_cells(self) -> set[tuple[str, str]]:
        """Cells recorded as finished OK (by this run or a resumed one)."""
        return {
            cell for cell, record in self._cells.items()
            if record.get("status") == CELL_OK
        }

    @property
    def failure_report_path(self) -> Path:
        """Default location of the persisted failure report for this run."""
        return self.path.with_name(f"{self.run_id}-failures.json")

    # -- writes -------------------------------------------------------------

    def _append(self, record: dict, sync: bool) -> None:
        if self._fh is None or self._disabled:
            return
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            if sync:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        except OSError as exc:
            self._disabled = True
            warnings.warn(
                f"run journal at {self.path} stopped accepting writes "
                f"({exc}); continuing without crash-safe resume",
                RuntimeWarning,
                stacklevel=3,
            )

    def record_cell(
        self,
        workload: str,
        policy: str,
        status: str,
        key: str | None = None,
        classification: str | None = None,
        sync: bool = True,
    ) -> None:
        """Append one cell outcome (idempotent per (cell, status)).

        ``sync=False`` skips the per-record fsync — the engine uses it
        for cache-hit bursts during the pre-scan, followed by one
        :meth:`flush`; computed cells always sync, because they are the
        records a crash would otherwise lose.
        """
        previous = self._cells.get((workload, policy))
        if previous is not None and previous.get("status") == status:
            return
        record = {
            "record": _RECORD_CELL,
            "workload": workload,
            "policy": policy,
            "status": status,
            "key": key,
            "classification": classification,
        }
        self._cells[(workload, policy)] = record
        self._append(record, sync=sync)

    def flush(self) -> None:
        """fsync any buffered (``sync=False``) records."""
        if self._fh is None or self._disabled:
            return
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError:
            self._disabled = True

    def close(self, complete: bool) -> None:
        """Seal the journal: append the end record and close the file.

        ``complete=True`` marks the run finished (every cell has a
        terminal record); ``False`` marks it interrupted-and-resumable.
        Safe to call more than once.
        """
        if self._fh is None:
            return
        self._append({"record": _RECORD_END, "complete": bool(complete)},
                     sync=True)
        try:
            self._fh.close()
        except OSError:
            pass
        self._fh = None


class _ParsedJournal:
    """The read-side view of a journal file (torn-tail tolerant)."""

    def __init__(
        self,
        run_id: str,
        spec: dict,
        context: dict | None,
        cells: dict[tuple[str, str], dict],
        complete: bool,
    ) -> None:
        self.run_id = run_id
        self.spec = spec
        self.context = context
        self.cells = cells
        self.complete = complete

    @property
    def completed_cells(self) -> set[tuple[str, str]]:
        return {
            cell for cell, record in self.cells.items()
            if record.get("status") == CELL_OK
        }


def _parse_journal(path: Path) -> _ParsedJournal | None:
    """Parse a journal file; ``None`` if the header is unusable.

    A torn trailing line (the crash case the journal exists for) is
    discarded; any later line is then unreachable by construction, since
    there is exactly one writer appending whole lines.
    """
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return None
    records: list[dict] = []
    for line in raw_lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail: everything up to here is durable
        if not isinstance(record, dict):
            break
        records.append(record)
    if not records:
        return None
    header = records[0]
    if (
        header.get("record") != _RECORD_HEADER
        or header.get("schema") != JOURNAL_SCHEMA_VERSION
    ):
        return None
    cells: dict[tuple[str, str], dict] = {}
    complete = False
    for record in records[1:]:
        kind = record.get("record")
        if kind == _RECORD_CELL:
            cells[(record["workload"], record["policy"])] = record
            complete = False  # a resumed run reopens the journal
        elif kind == _RECORD_END:
            complete = bool(record.get("complete"))
    return _ParsedJournal(
        run_id=header.get("run_id", ""),
        spec=header.get("spec", {}),
        context=header.get("context"),
        cells=cells,
        complete=complete,
    )


# -- graceful shutdown --------------------------------------------------------


class ShutdownCoordinator:
    """Turns SIGTERM/SIGINT into a cooperative, journaled stop.

    While installed, the first signal sets :attr:`requested` — the sweep
    loops notice it between cells (or wait slices), stop submitting,
    drain in-flight work against the drain deadline, flush the journal
    and failure report, and raise
    :class:`~repro.errors.SweepInterrupted`. A *second* signal escalates
    to an immediate ``KeyboardInterrupt``, because an operator mashing
    Ctrl-C has withdrawn their patience.

    Handlers can only be installed from the main thread (a Python
    restriction); elsewhere :meth:`install` is a no-op and the
    coordinator still works as a plain flag (tests drive it via
    :meth:`request`).
    """

    #: Signals a graceful shutdown listens for.
    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self) -> None:
        self._event = threading.Event()
        self._previous: dict[int, object] = {}
        self._installed = False
        self.signal_name: str | None = None

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def request(self, signal_name: str = "request()") -> None:
        """Flag a shutdown as if a signal had arrived (test hook)."""
        self.signal_name = self.signal_name or signal_name
        self._event.set()

    def _handler(self, signum: int, frame: FrameType | None) -> None:
        if self._event.is_set():
            # Second signal: the polite window is over.
            raise KeyboardInterrupt
        self.request(signal.Signals(signum).name)
        print(
            f"received {self.signal_name}: finishing in-flight cells, "
            "flushing journal (signal again to abort immediately) ...",
            file=sys.stderr,
        )

    def install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for sig in self.SIGNALS:
            self._previous[sig] = signal.getsignal(sig)
            signal.signal(sig, self._handler)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)  # type: ignore[arg-type]
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "ShutdownCoordinator":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()


# -- per-worker memory governance ---------------------------------------------


def current_rss_bytes() -> int | None:
    """Resident-set size of this process, or ``None`` if unmeasurable.

    Prefers ``/proc/self/statm`` (current RSS — drops when memory is
    returned, so one bomb does not taint every later cell in a reused
    worker); falls back to ``getrusage`` peak RSS on non-Linux unix.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak if sys.platform == "darwin" else peak * 1024
    except (ImportError, ValueError, OSError):  # pragma: no cover - exotic OS
        return None


class MemoryWatchdog:
    """Samples this process's RSS and trips when a budget is exceeded.

    Runs a daemon thread; on breach it records the measured RSS, then
    interrupts the main thread so the in-flight cell stops *now* rather
    than after the allocation that would have drawn the OOM-killer. The
    :func:`memory_guard` wrapper converts that interrupt into a
    structured :class:`~repro.errors.MemoryBudgetError`.
    """

    def __init__(self, budget_mb: float, interval: float = 0.05) -> None:
        if budget_mb <= 0:
            raise ResilienceError(
                f"memory budget must be positive, got {budget_mb}"
            )
        self.budget_bytes = int(budget_mb * 1024 * 1024)
        self.interval = interval
        self.breached_rss: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def breached(self) -> bool:
        return self.breached_rss is not None

    def _watch(self) -> None:
        # First sample after a few milliseconds, then every interval. A
        # cell can arrive already over budget (the allocation predates
        # the guard) and finish in less than one interval, so waiting a
        # full interval first would miss it — but sampling *immediately*
        # races :func:`memory_guard`: the interrupt could land before
        # the main thread enters the guarded body, escaping the handler
        # that converts it into a MemoryBudgetError.
        delay = min(0.005, self.interval)
        while True:
            if self._stop.wait(delay):
                return
            delay = self.interval
            rss = current_rss_bytes()
            if rss is not None and rss > self.budget_bytes:
                self.breached_rss = rss
                import _thread

                _thread.interrupt_main()
                return

    def start(self) -> None:
        if current_rss_bytes() is None:  # pragma: no cover - exotic OS
            return  # unmeasurable platform: watchdog degrades to off
        self._thread = threading.Thread(
            target=self._watch, name="repro-memory-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


@contextmanager
def memory_guard(budget_mb: float | None) -> Iterator[None]:
    """Enforce a per-worker RSS budget around one cell's simulation.

    ``None`` disables the guard entirely (zero overhead when off). On
    breach, the cell raises :class:`~repro.errors.MemoryBudgetError`
    naming the measured RSS and the budget — a picklable, classifiable
    failure instead of a dead worker.
    """
    if budget_mb is None:
        yield
        return
    watchdog = MemoryWatchdog(budget_mb)
    watchdog.start()
    try:
        try:
            yield
        except KeyboardInterrupt:
            if watchdog.breached:
                raise _budget_error(watchdog, budget_mb) from None
            raise
    finally:
        watchdog.stop()
    if watchdog.breached:
        # The interrupt raced the cell's completion; the verdict stands.
        raise _budget_error(watchdog, budget_mb)


def _budget_error(watchdog: MemoryWatchdog, budget_mb: float) -> MemoryBudgetError:
    measured = (watchdog.breached_rss or 0) / (1024 * 1024)
    return MemoryBudgetError(
        f"worker RSS {measured:.0f} MiB exceeded the {budget_mb:g} MiB "
        f"memory budget (pid {os.getpid()}); cell aborted before the "
        "OS OOM-killer could take the pool down"
    )


# -- failure-report persistence ----------------------------------------------


def write_failure_report(path: str | Path, report_doc: dict) -> Path:
    """Atomically persist a failure-report JSON document.

    The document comes from
    :meth:`repro.resilience.report.FailureReport.to_json_dict` and
    carries its own schema version. Parent directories are created;
    the write is temp-file + rename, so a crash cannot leave a torn
    report where a complete one is expected.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(report_doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, target)
    return target


# Re-exported for convenience: scripts that poll a child sweep's journal
# (the chaos kill+resume scenario, ops tooling) need the suffix and the
# parse entry point but not the writer.
__all__ = [
    "CELL_FAILED",
    "CELL_OK",
    "CELL_POISONED",
    "ENV_JOURNAL_DIR",
    "EXIT_INTERRUPTED",
    "JOURNAL_SCHEMA_VERSION",
    "JOURNAL_SUFFIX",
    "MemoryWatchdog",
    "RunJournal",
    "ShutdownCoordinator",
    "current_rss_bytes",
    "memory_guard",
    "run_id_for",
    "sweep_spec_doc",
    "write_failure_report",
]
