"""Deterministic fault injection: prove every recovery path end-to-end.

``repro chaos`` runs a small GAP x policy sweep while injecting, from a
seeded schedule, every failure mode the resilience layer claims to
survive:

* a **worker crash** (``os._exit`` mid-cell → ``BrokenProcessPool``);
* a **hang** past the cell timeout (the watchdog must kill and retry);
* a **corrupt cache entry** (checksum mismatch → quarantine + re-run);
* a **truncated trace file** (structured ``TraceFormatError``).

The harness then asserts the contract: the sweep *completes*, every
retried cell's result is **bit-identical** to a fault-free baseline, and
the :class:`~repro.resilience.report.FailureReport` accounts for every
injected fault. CI runs this as the ``chaos-smoke`` step.

Injection is exactly-once per fault via marker files in the harness's
scratch directory: a scheduled fault fires the first time its cell
reaches a worker and never again, so recovery is guaranteed to be
exercised regardless of how the pool interleaves cells. The crash and
the hang are chained onto the *same* victim cell (crash on its first
run, hang on its second) because a concurrent crash tears down every
worker — a hang scheduled on another cell could be absorbed by the
crash recovery and never observed as a timeout.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import MachineConfig, small_test_machine
from ..core.simulator import DEFAULT_WARMUP_FRACTION, simulate
from ..errors import ResilienceError, TraceFormatError
from ..trace.io import load_trace, save_trace
from ..trace.trace import Trace
from .policy import RetryPolicy
from .report import FailureReport

#: Exit status of a chaos-crashed worker (visible in pool diagnostics).
CRASH_EXIT_CODE = 66


def _cell_slug(workload: str, policy: str) -> str:
    return hashlib.sha256(f"{workload} x {policy}".encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ChaosPlan:
    """Worker-side fault schedule (picklable; shipped to pool workers).

    Faults are exactly-once: each fires the first time its cell runs in
    a worker, recorded via a marker file under ``marker_dir`` so retries
    (and innocent resubmissions) of the same cell run clean afterwards.
    A hang only fires once every scheduled crash has already happened —
    see the module docstring for why the two must be sequenced.
    """

    marker_dir: str
    crash_cells: tuple[tuple[str, str], ...] = ()
    hang_cells: tuple[tuple[str, str], ...] = ()
    hang_seconds: float = 30.0

    def _marker(self, kind: str, workload: str, policy: str) -> Path:
        return Path(self.marker_dir) / f"{kind}-{_cell_slug(workload, policy)}"

    def crashes_done(self) -> bool:
        return all(
            self._marker("crash", w, p).exists() for w, p in self.crash_cells
        )

    def apply(self, workload: str, policy: str) -> None:
        """Inject this cell's scheduled fault, if it has not fired yet."""
        cell = (workload, policy)
        if cell in self.crash_cells:
            marker = self._marker("crash", workload, policy)
            if not marker.exists():
                marker.touch()
                os._exit(CRASH_EXIT_CODE)
        if cell in self.hang_cells and self.crashes_done():
            marker = self._marker("hang", workload, policy)
            if not marker.exists():
                marker.touch()
                time.sleep(self.hang_seconds)


def _chaos_simulate_cell(
    plan: ChaosPlan,
    workload: str,
    policy: str,
    trace: Trace,
    config: MachineConfig,
    warmup_fraction: float,
    sanitize: bool,
    telemetry: object,
) -> tuple[str, str, object]:
    """Worker entry point: inject the scheduled fault, then simulate."""
    plan.apply(workload, policy)
    result = simulate(
        trace,
        config=config,
        llc_policy=policy,
        warmup_fraction=warmup_fraction,
        sanitize=sanitize,
        telemetry=telemetry,  # type: ignore[arg-type]
    )
    return workload, policy, result


@dataclass(frozen=True)
class ChaosSchedule:
    """The full seeded schedule: worker faults plus on-disk faults."""

    seed: int
    plan: ChaosPlan
    corrupt_cache_cells: tuple[tuple[str, str], ...]
    truncate_workload: str


def plan_chaos(
    cells: list[tuple[str, str]],
    seed: int,
    marker_dir: str | Path,
    hang_seconds: float = 30.0,
) -> ChaosSchedule:
    """Derive a deterministic fault schedule for ``cells`` from ``seed``.

    One victim cell takes the chained crash-then-hang; a *different*
    cell's cache entry is corrupted (so the corruption is detected on
    the cache read path, not shadowed by the worker faults); the
    truncated-trace leg uses the first workload in the matrix.
    """
    if len(cells) < 2:
        raise ResilienceError(
            "chaos needs a matrix of at least 2 cells to spread faults over"
        )
    rng = random.Random(seed)
    shuffled = list(cells)
    rng.shuffle(shuffled)
    victim, corrupt = shuffled[0], shuffled[1]
    plan = ChaosPlan(
        marker_dir=str(marker_dir),
        crash_cells=(victim,),
        hang_cells=(victim,),
        hang_seconds=hang_seconds,
    )
    return ChaosSchedule(
        seed=seed,
        plan=plan,
        corrupt_cache_cells=(corrupt,),
        truncate_workload=cells[0][0],
    )


@dataclass
class ChaosReport:
    """What was injected, what was observed, and whether the contract held."""

    seed: int
    cells: int = 0
    injected_crashes: int = 0
    injected_hangs: int = 0
    injected_corrupt_cache: int = 0
    injected_truncated_traces: int = 0
    observed_crash_recoveries: int = 0
    observed_timeout_recoveries: int = 0
    observed_quarantined: int = 0
    trace_fault_error: str = ""
    bit_identical: bool = False
    sweep_completed: bool = False
    failure_report: FailureReport = field(default_factory=FailureReport)

    @property
    def passed(self) -> bool:
        """Every injected fault observed, recovered, and results exact."""
        return (
            self.sweep_completed
            and self.bit_identical
            and self.failure_report.clean
            and self.observed_crash_recoveries >= self.injected_crashes
            and self.observed_timeout_recoveries >= self.injected_hangs
            and self.observed_quarantined >= self.injected_corrupt_cache
            and (not self.injected_truncated_traces or bool(self.trace_fault_error))
        )

    def to_json_dict(self) -> dict:
        doc = {
            k: getattr(self, k)
            for k in (
                "seed", "cells", "injected_crashes", "injected_hangs",
                "injected_corrupt_cache", "injected_truncated_traces",
                "observed_crash_recoveries", "observed_timeout_recoveries",
                "observed_quarantined", "trace_fault_error",
                "bit_identical", "sweep_completed",
            )
        }
        doc["passed"] = self.passed
        doc["failure_report"] = self.failure_report.to_json_dict()
        return doc

    def render(self) -> str:
        check = "ok" if self.passed else "FAILED"
        lines = [
            f"chaos (seed {self.seed}) over {self.cells} cells: {check}",
            f"  worker crashes:   {self.injected_crashes} injected, "
            f"{self.observed_crash_recoveries} recovered",
            f"  hangs/timeouts:   {self.injected_hangs} injected, "
            f"{self.observed_timeout_recoveries} recovered",
            f"  corrupt cache:    {self.injected_corrupt_cache} injected, "
            f"{self.observed_quarantined} quarantined",
            f"  truncated traces: {self.injected_truncated_traces} injected, "
            + (f"raised {self.trace_fault_error}" if self.trace_fault_error
               else "NOT detected"),
            f"  sweep completed:  {self.sweep_completed}; "
            f"results bit-identical to fault-free baseline: {self.bit_identical}",
            "",
            self.failure_report.render(),
        ]
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    kernels: tuple[str, ...] = ("bfs", "pr"),
    policies: tuple[str, ...] = ("lru", "srrip"),
    scale: int = 10,
    degree: int = 8,
    max_accesses: int = 20_000,
    jobs: int = 2,
    retry: RetryPolicy | None = None,
    config: MachineConfig | None = None,
    work_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the seeded fault-injection harness over a small GAP matrix.

    Returns a :class:`ChaosReport`; ``report.passed`` is the contract.
    ``work_dir`` (default: a fresh temp directory) holds the scratch
    cache, fault markers and the truncated-trace scratch file.
    """
    from ..gap.suite import gap_suite
    from ..harness.engine import SweepEngine, cell_key

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    if retry is None:
        retry = RetryPolicy(
            max_attempts=3,
            cell_timeout=10.0,
            backoff_base=0.05,
            backoff_max=1.0,
            seed=seed,
        )
    if retry.cell_timeout is None:
        raise ResilienceError("chaos requires a RetryPolicy with cell_timeout set")
    if config is None:
        config = small_test_machine()
    root = Path(work_dir) if work_dir else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    marker_dir = root / "markers"
    marker_dir.mkdir(parents=True, exist_ok=True)

    say(f"building {len(kernels)} GAP traces (scale {scale}) ...")
    traces = gap_suite(scale=scale, degree=degree, kernels=kernels,
                       max_accesses=max_accesses)
    cells = [(w, p) for w in traces for p in policies]
    schedule = plan_chaos(
        cells, seed=seed, marker_dir=marker_dir,
        hang_seconds=max(30.0, retry.cell_timeout * 4),
    )
    report = ChaosReport(
        seed=seed,
        cells=len(cells),
        injected_crashes=len(schedule.plan.crash_cells),
        injected_hangs=len(schedule.plan.hang_cells),
        injected_corrupt_cache=len(schedule.corrupt_cache_cells),
        injected_truncated_traces=1,
    )

    # Leg 1: a truncated trace file must fail with a structured error.
    say("injecting truncated trace ...")
    scratch = save_trace(traces[schedule.truncate_workload], root / "chaos_trace.npz")
    payload = scratch.read_bytes()
    scratch.write_bytes(payload[: int(len(payload) * 0.6)])
    try:
        load_trace(scratch)
    except TraceFormatError as exc:
        report.trace_fault_error = f"{type(exc).__name__}: {exc}"
    # any other exception type escapes: that is exactly the bug this
    # harness exists to catch.

    # Leg 2: fault-free baseline (serial, uncached) for bit-identity.
    say("running fault-free baseline sweep ...")
    baseline = SweepEngine(jobs=1).run(traces, list(policies), config=config)

    # Leg 3: pre-populate and corrupt the scheduled cache entries.
    engine = SweepEngine(cache_dir=root / "cache", jobs=jobs)
    assert engine.cache is not None
    for workload, policy in schedule.corrupt_cache_cells:
        say(f"corrupting cache entry of {workload} x {policy} ...")
        engine.run({workload: traces[workload]}, [policy], config=config)
        key = cell_key(
            traces[workload], policy, config, DEFAULT_WARMUP_FRACTION,
            salt=engine.salt,
        )
        entry = engine.cache.path_for(key)
        doc = json.loads(entry.read_text(encoding="utf-8"))
        doc["result"]["__chaos_corruption__"] = True  # checksum now stale
        entry.write_text(json.dumps(doc), encoding="utf-8")

    # Leg 4: the chaos sweep itself.
    say(f"running chaos sweep ({jobs} jobs, "
        f"cell timeout {retry.cell_timeout:g}s) ...")
    outcome = engine.run(
        traces, list(policies), config=config,
        isolate_failures=True, retry=retry, chaos=schedule.plan,
    )
    assert outcome.failure_report is not None
    report.failure_report = outcome.failure_report
    report.sweep_completed = not outcome.errors and all(
        p in outcome.matrix.results.get(w, {}) for w, p in cells
    )
    report.bit_identical = outcome.matrix.results == baseline.matrix.results
    report.observed_quarantined = outcome.failure_report.quarantined_cache_entries

    recovered = {
        (h.workload, h.policy)
        for h in outcome.failure_report.recovered
    }
    report.observed_crash_recoveries = sum(
        1 for cell in schedule.plan.crash_cells
        if cell in recovered and any(
            a.error_type == "BrokenProcessPool"
            for a in outcome.failure_report.cells[cell].attempts
        )
    )
    report.observed_timeout_recoveries = sum(
        1 for cell in schedule.plan.hang_cells
        if cell in recovered and any(
            a.error_type == "CellTimeoutError"
            for a in outcome.failure_report.cells[cell].attempts
        )
    )
    return report
