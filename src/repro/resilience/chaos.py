"""Deterministic fault injection: prove every recovery path end-to-end.

``repro chaos`` runs a small GAP x policy sweep while injecting, from a
seeded schedule, every failure mode the resilience layer claims to
survive:

* a **worker crash** (``os._exit`` mid-cell → ``BrokenProcessPool``);
* a **hang** past the cell timeout (the watchdog must kill and retry);
* a **corrupt cache entry** (checksum mismatch → quarantine + re-run);
* a **truncated trace file** (structured ``TraceFormatError``).

The harness then asserts the contract: the sweep *completes*, every
retried cell's result is **bit-identical** to a fault-free baseline, and
the :class:`~repro.resilience.report.FailureReport` accounts for every
injected fault. CI runs this as the ``chaos-smoke`` step.

**Chaos v2** (:func:`run_chaos_v2`, ``repro chaos --scenario v2``)
covers the failure domains *around* the process that v1 cannot touch
from inside it:

* **kill + resume** — a journaled sweep runs in a child process that is
  ``SIGKILL``-ed mid-matrix; the parent resumes from the run journal and
  must reproduce the uninterrupted results bit-identically;
* **disk full** — the result cache hits a (quota-injected) real
  ``ENOSPC`` mid-sweep; the sweep must finish uncached with exactly one
  warning, no stray temp files, and bit-identical results;
* **memory bomb** — a cell balloons its worker's RSS past the
  per-worker budget; the RSS watchdog must convert it to a structured
  :class:`~repro.errors.MemoryBudgetError` (transient, one strike) that
  recovers on retry instead of drawing the OS OOM-killer.

Injection is exactly-once per fault via marker files in the harness's
scratch directory: a scheduled fault fires the first time its cell
reaches a worker and never again, so recovery is guaranteed to be
exercised regardless of how the pool interleaves cells. The crash and
the hang are chained onto the *same* victim cell (crash on its first
run, hang on its second) because a concurrent crash tears down every
worker — a hang scheduled on another cell could be absorbed by the
crash recovery and never observed as a timeout.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import MachineConfig, small_test_machine
from ..core.simulator import DEFAULT_WARMUP_FRACTION, simulate
from ..errors import ResilienceError, TraceFormatError
from ..trace.io import load_trace, save_trace
from ..trace.trace import Trace
from .policy import RetryPolicy
from .report import FailureReport

#: Exit status of a chaos-crashed worker (visible in pool diagnostics).
CRASH_EXIT_CODE = 66


def _cell_slug(workload: str, policy: str) -> str:
    return hashlib.sha256(f"{workload} x {policy}".encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ChaosPlan:
    """Worker-side fault schedule (picklable; shipped to pool workers).

    Faults are exactly-once: each fires the first time its cell runs in
    a worker, recorded via a marker file under ``marker_dir`` so retries
    (and innocent resubmissions) of the same cell run clean afterwards.
    A hang only fires once every scheduled crash has already happened —
    see the module docstring for why the two must be sequenced.
    """

    marker_dir: str
    crash_cells: tuple[tuple[str, str], ...] = ()
    hang_cells: tuple[tuple[str, str], ...] = ()
    hang_seconds: float = 30.0
    #: Cells that balloon their worker's RSS on first run (chaos v2's
    #: memory-bomb leg); the allocation persists for the duration of the
    #: cell so the per-worker RSS watchdog is guaranteed to observe it.
    bomb_cells: tuple[tuple[str, str], ...] = ()
    bomb_mb: float = 0.0

    def _marker(self, kind: str, workload: str, policy: str) -> Path:
        return Path(self.marker_dir) / f"{kind}-{_cell_slug(workload, policy)}"

    def crashes_done(self) -> bool:
        return all(
            self._marker("crash", w, p).exists() for w, p in self.crash_cells
        )

    def apply(self, workload: str, policy: str) -> None:
        """Inject this cell's scheduled fault, if it has not fired yet."""
        cell = (workload, policy)
        if cell in self.crash_cells:
            marker = self._marker("crash", workload, policy)
            if not marker.exists():
                marker.touch()
                os._exit(CRASH_EXIT_CODE)
        if cell in self.hang_cells and self.crashes_done():
            marker = self._marker("hang", workload, policy)
            if not marker.exists():
                marker.touch()
                time.sleep(self.hang_seconds)
        if cell in self.bomb_cells and self.bomb_mb > 0:
            marker = self._marker("bomb", workload, policy)
            if not marker.exists():
                marker.touch()
                # Non-zero bytes so every page is written and therefore
                # resident — bytearray(n)'s lazily-committed zero pages
                # would never show up in RSS.
                _BOMB.append(b"\x01" * int(self.bomb_mb * 1024 * 1024))


#: The live memory bomb of this worker process. Held at module scope so
#: the allocation outlives :meth:`ChaosPlan.apply`; released at the
#: start of the *next* cell in the same worker (a single large bytes
#: object is mmap'd, so freeing it actually returns the RSS).
_BOMB: list[bytes] = []


def _chaos_simulate_cell(
    plan: ChaosPlan,
    workload: str,
    policy: str,
    trace: Trace,
    config: MachineConfig,
    warmup_fraction: float,
    sanitize: bool,
    telemetry: object,
    memory_budget_mb: float | None = None,
) -> tuple[str, str, object]:
    """Worker entry point: inject the scheduled fault, then simulate."""
    from .durability import memory_guard

    _BOMB.clear()  # a bomb from an earlier cell must not taint this one
    plan.apply(workload, policy)
    with memory_guard(memory_budget_mb):
        result = simulate(
            trace,
            config=config,
            llc_policy=policy,
            warmup_fraction=warmup_fraction,
            sanitize=sanitize,
            telemetry=telemetry,  # type: ignore[arg-type]
        )
    return workload, policy, result


@dataclass(frozen=True)
class ChaosSchedule:
    """The full seeded schedule: worker faults plus on-disk faults."""

    seed: int
    plan: ChaosPlan
    corrupt_cache_cells: tuple[tuple[str, str], ...]
    truncate_workload: str


def plan_chaos(
    cells: list[tuple[str, str]],
    seed: int,
    marker_dir: str | Path,
    hang_seconds: float = 30.0,
) -> ChaosSchedule:
    """Derive a deterministic fault schedule for ``cells`` from ``seed``.

    One victim cell takes the chained crash-then-hang; a *different*
    cell's cache entry is corrupted (so the corruption is detected on
    the cache read path, not shadowed by the worker faults); the
    truncated-trace leg uses the first workload in the matrix.
    """
    if len(cells) < 2:
        raise ResilienceError(
            "chaos needs a matrix of at least 2 cells to spread faults over"
        )
    rng = random.Random(seed)
    shuffled = list(cells)
    rng.shuffle(shuffled)
    victim, corrupt = shuffled[0], shuffled[1]
    plan = ChaosPlan(
        marker_dir=str(marker_dir),
        crash_cells=(victim,),
        hang_cells=(victim,),
        hang_seconds=hang_seconds,
    )
    return ChaosSchedule(
        seed=seed,
        plan=plan,
        corrupt_cache_cells=(corrupt,),
        truncate_workload=cells[0][0],
    )


@dataclass
class ChaosReport:
    """What was injected, what was observed, and whether the contract held."""

    seed: int
    cells: int = 0
    injected_crashes: int = 0
    injected_hangs: int = 0
    injected_corrupt_cache: int = 0
    injected_truncated_traces: int = 0
    observed_crash_recoveries: int = 0
    observed_timeout_recoveries: int = 0
    observed_quarantined: int = 0
    trace_fault_error: str = ""
    bit_identical: bool = False
    sweep_completed: bool = False
    failure_report: FailureReport = field(default_factory=FailureReport)

    @property
    def passed(self) -> bool:
        """Every injected fault observed, recovered, and results exact."""
        return (
            self.sweep_completed
            and self.bit_identical
            and self.failure_report.clean
            and self.observed_crash_recoveries >= self.injected_crashes
            and self.observed_timeout_recoveries >= self.injected_hangs
            and self.observed_quarantined >= self.injected_corrupt_cache
            and (not self.injected_truncated_traces or bool(self.trace_fault_error))
        )

    def to_json_dict(self) -> dict:
        doc = {
            k: getattr(self, k)
            for k in (
                "seed", "cells", "injected_crashes", "injected_hangs",
                "injected_corrupt_cache", "injected_truncated_traces",
                "observed_crash_recoveries", "observed_timeout_recoveries",
                "observed_quarantined", "trace_fault_error",
                "bit_identical", "sweep_completed",
            )
        }
        doc["passed"] = self.passed
        doc["failure_report"] = self.failure_report.to_json_dict()
        return doc

    def render(self) -> str:
        check = "ok" if self.passed else "FAILED"
        lines = [
            f"chaos (seed {self.seed}) over {self.cells} cells: {check}",
            f"  worker crashes:   {self.injected_crashes} injected, "
            f"{self.observed_crash_recoveries} recovered",
            f"  hangs/timeouts:   {self.injected_hangs} injected, "
            f"{self.observed_timeout_recoveries} recovered",
            f"  corrupt cache:    {self.injected_corrupt_cache} injected, "
            f"{self.observed_quarantined} quarantined",
            f"  truncated traces: {self.injected_truncated_traces} injected, "
            + (f"raised {self.trace_fault_error}" if self.trace_fault_error
               else "NOT detected"),
            f"  sweep completed:  {self.sweep_completed}; "
            f"results bit-identical to fault-free baseline: {self.bit_identical}",
            "",
            self.failure_report.render(),
        ]
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    kernels: tuple[str, ...] = ("bfs", "pr"),
    policies: tuple[str, ...] = ("lru", "srrip"),
    scale: int = 10,
    degree: int = 8,
    max_accesses: int = 20_000,
    jobs: int = 2,
    retry: RetryPolicy | None = None,
    config: MachineConfig | None = None,
    work_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the seeded fault-injection harness over a small GAP matrix.

    Returns a :class:`ChaosReport`; ``report.passed`` is the contract.
    ``work_dir`` (default: a fresh temp directory) holds the scratch
    cache, fault markers and the truncated-trace scratch file.
    """
    from ..gap.suite import gap_suite
    from ..harness.engine import SweepEngine, cell_key

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    if retry is None:
        retry = RetryPolicy(
            max_attempts=3,
            cell_timeout=10.0,
            backoff_base=0.05,
            backoff_max=1.0,
            seed=seed,
        )
    if retry.cell_timeout is None:
        raise ResilienceError("chaos requires a RetryPolicy with cell_timeout set")
    if config is None:
        config = small_test_machine()
    root = Path(work_dir) if work_dir else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    marker_dir = root / "markers"
    marker_dir.mkdir(parents=True, exist_ok=True)

    say(f"building {len(kernels)} GAP traces (scale {scale}) ...")
    traces = gap_suite(scale=scale, degree=degree, kernels=kernels,
                       max_accesses=max_accesses)
    cells = [(w, p) for w in traces for p in policies]
    schedule = plan_chaos(
        cells, seed=seed, marker_dir=marker_dir,
        hang_seconds=max(30.0, retry.cell_timeout * 4),
    )
    report = ChaosReport(
        seed=seed,
        cells=len(cells),
        injected_crashes=len(schedule.plan.crash_cells),
        injected_hangs=len(schedule.plan.hang_cells),
        injected_corrupt_cache=len(schedule.corrupt_cache_cells),
        injected_truncated_traces=1,
    )

    # Leg 1: a truncated trace file must fail with a structured error.
    say("injecting truncated trace ...")
    scratch = save_trace(traces[schedule.truncate_workload], root / "chaos_trace.npz")
    payload = scratch.read_bytes()
    scratch.write_bytes(payload[: int(len(payload) * 0.6)])
    try:
        load_trace(scratch)
    except TraceFormatError as exc:
        report.trace_fault_error = f"{type(exc).__name__}: {exc}"
    # any other exception type escapes: that is exactly the bug this
    # harness exists to catch.

    # Leg 2: fault-free baseline (serial, uncached) for bit-identity.
    say("running fault-free baseline sweep ...")
    baseline = SweepEngine(jobs=1).run(traces, list(policies), config=config)

    # Leg 3: pre-populate and corrupt the scheduled cache entries.
    engine = SweepEngine(cache_dir=root / "cache", jobs=jobs)
    assert engine.cache is not None
    for workload, policy in schedule.corrupt_cache_cells:
        say(f"corrupting cache entry of {workload} x {policy} ...")
        engine.run({workload: traces[workload]}, [policy], config=config)
        key = cell_key(
            traces[workload], policy, config, DEFAULT_WARMUP_FRACTION,
            salt=engine.salt,
        )
        entry = engine.cache.path_for(key)
        doc = json.loads(entry.read_text(encoding="utf-8"))
        doc["result"]["__chaos_corruption__"] = True  # checksum now stale
        entry.write_text(json.dumps(doc), encoding="utf-8")

    # Leg 4: the chaos sweep itself.
    say(f"running chaos sweep ({jobs} jobs, "
        f"cell timeout {retry.cell_timeout:g}s) ...")
    outcome = engine.run(
        traces, list(policies), config=config,
        isolate_failures=True, retry=retry, chaos=schedule.plan,
    )
    assert outcome.failure_report is not None
    report.failure_report = outcome.failure_report
    report.sweep_completed = not outcome.errors and all(
        p in outcome.matrix.results.get(w, {}) for w, p in cells
    )
    report.bit_identical = outcome.matrix.results == baseline.matrix.results
    report.observed_quarantined = outcome.failure_report.quarantined_cache_entries

    recovered = {
        (h.workload, h.policy)
        for h in outcome.failure_report.recovered
    }
    report.observed_crash_recoveries = sum(
        1 for cell in schedule.plan.crash_cells
        if cell in recovered and any(
            a.error_type == "BrokenProcessPool"
            for a in outcome.failure_report.cells[cell].attempts
        )
    )
    report.observed_timeout_recoveries = sum(
        1 for cell in schedule.plan.hang_cells
        if cell in recovered and any(
            a.error_type == "CellTimeoutError"
            for a in outcome.failure_report.cells[cell].attempts
        )
    )
    return report


# -- chaos v2: whole-process, disk and memory failure domains -----------------

#: Scenario names accepted by :func:`run_chaos_v2` / ``repro chaos``.
CHAOS_V2_SCENARIOS = ("kill-resume", "disk-full", "memory-bomb")


class _QuotaCache:
    """A :class:`~repro.harness.engine.ResultCache` with a write quota.

    After ``max_writes`` successful entry writes, every further write
    raises a *real* ``OSError(ENOSPC)`` from inside the store path — the
    disk-full scenario exercises the engine's genuine temp-file cleanup
    and degrade-to-uncached handling, not a simulation of it.
    """

    def __new__(cls, root, salt=None, max_writes: int = 1):
        import errno

        from ..harness.engine import ResultCache

        class Quota(ResultCache):
            def __init__(self) -> None:
                super().__init__(root, salt=salt)
                self.writes = 0

            def _write_payload(self, tmp: Path, text: str) -> None:
                if self.writes >= max_writes:
                    raise OSError(
                        errno.ENOSPC, "No space left on device (chaos quota)"
                    )
                self.writes += 1
                super()._write_payload(tmp, text)

        return Quota()


#: The child program of the kill+resume scenario: a journaled, cached,
#: serial sweep whose cells are artificially slowed so the parent can
#: SIGKILL it deterministically mid-matrix. Parameters arrive as one
#: JSON argv document; traces are loaded from files the parent saved.
_KILL_RESUME_CHILD = """
import json, sys, time

import repro.harness.engine as eng
from repro.core.config import small_test_machine
from repro.harness.engine import SweepEngine
from repro.trace.io import load_trace

params = json.loads(sys.argv[1])
traces = {name: load_trace(path) for name, path in params["traces"].items()}

_original = eng._simulate_cell

def _slowed(*args, **kwargs):
    time.sleep(params["cell_delay"])
    return _original(*args, **kwargs)

eng._simulate_cell = _slowed

engine = SweepEngine(
    cache_dir=params["cache_dir"], jobs=1, journal_dir=params["journal_dir"]
)
engine.run(traces, params["policies"], config=small_test_machine())
"""


@dataclass
class ScenarioResult:
    """Outcome of one chaos-v2 scenario."""

    name: str
    passed: bool
    details: dict = field(default_factory=dict)


@dataclass
class ChaosV2Report:
    """Aggregated chaos-v2 outcome (``repro chaos --scenario v2``)."""

    seed: int
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.scenarios) and all(s.passed for s in self.scenarios)

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "passed": self.passed,
            "scenarios": [
                {"name": s.name, "passed": s.passed, "details": s.details}
                for s in self.scenarios
            ],
        }

    def render(self) -> str:
        check = "ok" if self.passed else "FAILED"
        lines = [f"chaos v2 (seed {self.seed}): {check}"]
        for s in self.scenarios:
            status = "ok" if s.passed else "FAILED"
            lines.append(f"  {s.name}: {status}")
            for key in sorted(s.details):
                lines.append(f"    {key}: {s.details[key]}")
        return "\n".join(lines)


def _scenario_kill_resume(
    traces: dict[str, Trace],
    policies: tuple[str, ...],
    config: MachineConfig,
    baseline,
    root: Path,
    say: Callable[[str], None],
) -> ScenarioResult:
    """SIGKILL a journaled child sweep mid-matrix, then resume it."""
    import signal
    import subprocess
    import sys

    import repro
    from ..harness.engine import SweepEngine
    from ..trace.io import save_trace
    from .durability import JOURNAL_SUFFIX, RunJournal

    work = root / "kill-resume"
    journal_dir = work / "journal"
    work.mkdir(parents=True, exist_ok=True)
    details: dict = {}
    cells = [(w, p) for w in traces for p in policies]

    say("kill-resume: spawning journaled child sweep ...")
    params = {
        "traces": {
            name: str(save_trace(trace, work / f"{name}.npz"))
            for name, trace in traces.items()
        },
        "policies": list(policies),
        "cache_dir": str(work / "cache"),
        "journal_dir": str(journal_dir),
        "cell_delay": 0.75,  # slow cells so the kill lands mid-matrix
    }
    env = os.environ.copy()
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", _KILL_RESUME_CHILD, json.dumps(params)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )

    # Wait for the journal to show the first completed cell, then kill
    # -9: the crash lands after some — but provably not all — cells.
    journal_file: Path | None = None
    deadline = time.monotonic() + 120.0
    killed = False
    while time.monotonic() < deadline:
        candidates = (
            sorted(journal_dir.glob(f"*{JOURNAL_SUFFIX}"))
            if journal_dir.is_dir() else []
        )
        if candidates:
            journal_file = candidates[0]
            if journal_file.read_text(encoding="utf-8").count('"cell"') >= 1:
                os.kill(child.pid, signal.SIGKILL)
                killed = True
                break
        if child.poll() is not None:
            break  # child finished (or died) before we could kill it
        time.sleep(0.05)
    returncode = child.wait()
    stderr = (child.stderr.read() if child.stderr else b"").decode(
        errors="replace"
    )
    details["child_returncode"] = returncode
    details["killed"] = killed
    if not killed or journal_file is None:
        details["child_stderr"] = stderr[-2000:]
        return ScenarioResult("kill-resume", passed=False, details=details)

    parsed = RunJournal.load(journal_file)
    partial = len(parsed.completed_cells)
    details["cells_before_kill"] = partial
    details["journal_complete_after_kill"] = parsed.complete

    say(f"kill-resume: child killed after {partial} cells; resuming ...")
    engine = SweepEngine(
        cache_dir=params["cache_dir"], jobs=1, journal_dir=journal_dir
    )
    outcome = engine.run(traces, list(policies), config=config)
    details["resumed_cells"] = outcome.stats.resumed
    details["run_id"] = outcome.run_id
    details["bit_identical"] = (
        outcome.matrix.results == baseline.matrix.results
    )
    passed = (
        returncode == -signal.SIGKILL
        and not parsed.complete
        and 0 < partial < len(cells)
        and outcome.run_id == parsed.run_id  # same spec => same journal
        and outcome.stats.resumed == partial
        and outcome.stats.simulated == len(cells) - partial
        and details["bit_identical"]
    )
    return ScenarioResult("kill-resume", passed=passed, details=details)


def _scenario_disk_full(
    traces: dict[str, Trace],
    policies: tuple[str, ...],
    config: MachineConfig,
    baseline,
    root: Path,
    say: Callable[[str], None],
) -> ScenarioResult:
    """Run a cached sweep into a quota-limited cache dir (real ENOSPC)."""
    import warnings

    from ..harness.engine import SweepEngine

    say("disk-full: sweeping into a quota-limited cache ...")
    cache_root = root / "disk-full" / "cache"
    engine = SweepEngine(cache_dir=cache_root, jobs=1)
    engine.cache = _QuotaCache(cache_root, salt=engine.salt, max_writes=1)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcome = engine.run(traces, list(policies), config=config)
    runtime_warnings = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    stray_tmp = list(cache_root.rglob("*.tmp-*"))
    entries = engine.cache._entry_files()
    details = {
        "warnings": len(runtime_warnings),
        "entries_written": len(entries),
        "stray_tmp_files": len(stray_tmp),
        "bit_identical": outcome.matrix.results == baseline.matrix.results,
        "errors": len(outcome.errors),
    }
    passed = (
        len(runtime_warnings) == 1
        and "unusable" in str(runtime_warnings[0].message)
        and not stray_tmp
        and len(entries) == 1  # the pre-quota write survived intact
        and not outcome.errors
        and details["bit_identical"]
    )
    return ScenarioResult("disk-full", passed=passed, details=details)


def _scenario_memory_bomb(
    traces: dict[str, Trace],
    policies: tuple[str, ...],
    config: MachineConfig,
    baseline,
    root: Path,
    say: Callable[[str], None],
    seed: int,
    jobs: int,
) -> ScenarioResult:
    """Balloon one cell's worker RSS past the budget; expect recovery."""
    work = root / "memory-bomb"
    markers = work / "markers"
    markers.mkdir(parents=True, exist_ok=True)
    cells = [(w, p) for w in traces for p in policies]
    victim = random.Random(seed).choice(cells)
    say(f"memory-bomb: arming {victim[0]} x {victim[1]} ...")
    plan = ChaosPlan(
        marker_dir=str(markers), bomb_cells=(victim,), bomb_mb=320.0
    )
    retry = RetryPolicy(
        max_attempts=3, cell_timeout=60.0, backoff_base=0.05,
        backoff_max=1.0, seed=seed,
    )
    from ..harness.engine import SweepEngine

    outcome = SweepEngine(jobs=jobs).run(
        traces, list(policies), config=config, isolate_failures=True,
        retry=retry, chaos=plan, memory_budget_mb=256.0,
    )
    report = outcome.failure_report
    assert report is not None
    budget_attempts = report.attempts_with_error("MemoryBudgetError")
    details = {
        "budget_attempts": len(budget_attempts),
        "classifications": sorted(
            {a.classification for a in budget_attempts}
        ),
        "clean": report.clean,
        "bit_identical": outcome.matrix.results == baseline.matrix.results,
        "errors": len(outcome.errors),
    }
    passed = (
        not outcome.errors
        and report.clean
        and len(budget_attempts) >= 1
        and all(a.classification == "transient" for a in budget_attempts)
        and details["bit_identical"]
    )
    return ScenarioResult("memory-bomb", passed=passed, details=details)


def run_chaos_v2(
    seed: int = 0,
    scenarios: tuple[str, ...] = CHAOS_V2_SCENARIOS,
    kernels: tuple[str, ...] = ("bfs", "pr"),
    policies: tuple[str, ...] = ("lru", "srrip"),
    scale: int = 10,
    degree: int = 8,
    max_accesses: int = 20_000,
    jobs: int = 2,
    work_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ChaosV2Report:
    """Run the chaos-v2 scenarios (process death, disk full, memory bomb).

    Each scenario shares one fault-free serial baseline; the contract of
    every scenario is *bit-identical recovered results* plus the
    scenario-specific accounting (journal resume counts, single
    degradation warning, transient budget classification). Unknown
    scenario names raise :class:`~repro.errors.ResilienceError`.
    """
    from ..gap.suite import gap_suite
    from ..harness.engine import SweepEngine

    unknown = [s for s in scenarios if s not in CHAOS_V2_SCENARIOS]
    if unknown:
        raise ResilienceError(
            f"unknown chaos-v2 scenario(s) {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(CHAOS_V2_SCENARIOS)}"
        )

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    config = small_test_machine()
    root = (
        Path(work_dir) if work_dir
        else Path(tempfile.mkdtemp(prefix="repro-chaos-v2-"))
    )
    say(f"building {len(kernels)} GAP traces (scale {scale}) ...")
    traces = gap_suite(scale=scale, degree=degree, kernels=kernels,
                       max_accesses=max_accesses)
    say("running fault-free baseline sweep ...")
    baseline = SweepEngine(jobs=1).run(traces, list(policies), config=config)

    report = ChaosV2Report(seed=seed)
    for name in scenarios:
        if name == "kill-resume":
            result = _scenario_kill_resume(
                traces, policies, config, baseline, root, say
            )
        elif name == "disk-full":
            result = _scenario_disk_full(
                traces, policies, config, baseline, root, say
            )
        else:
            result = _scenario_memory_bomb(
                traces, policies, config, baseline, root, say, seed, jobs
            )
        say(f"{name}: {'ok' if result.passed else 'FAILED'}")
        report.scenarios.append(result)
    return report
