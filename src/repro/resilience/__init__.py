"""Fault tolerance for long-horizon sweeps (:mod:`repro.resilience`).

Production-scale GAP x SPEC x policy matrices run for hours; over that
horizon workers get OOM-killed, cells hang, processes are killed, disks
fill up, and on-disk state rots. This package makes the sweep stack
survive all of it:

* :class:`RetryPolicy` / :func:`classify_failure` — a failure model
  (transient vs deterministic vs poison) with bounded retry, exponential
  backoff and *deterministic* per-cell jitter (same seed, same schedule).
* :class:`ResilientExecutor` — the engine's fault-tolerant execution
  loop: per-cell wall-clock timeouts enforced by a watchdog, process
  pool rebuild after ``BrokenProcessPool``, poison marking after
  repeated strikes, and a structured :class:`FailureReport` of every
  attempt.
* :mod:`repro.resilience.durability` — durability across *process*
  death and resource exhaustion: the write-ahead :class:`RunJournal`
  behind ``repro sweep --resume``, the :class:`ShutdownCoordinator`
  that turns SIGTERM/SIGINT into a drained, resumable exit
  (:data:`EXIT_INTERRUPTED`), and the per-worker RSS watchdog
  (:func:`memory_guard`) that converts would-be OOM kills into
  structured, retryable failures.
* :mod:`repro.resilience.chaos` — a seeded fault-injection harness
  (``repro chaos``) that crashes workers, hangs cells, corrupts cache
  entries and truncates traces on a deterministic schedule; chaos v2
  (:func:`run_chaos_v2`) extends it to whole-process SIGKILL + journal
  resume, disk-full cache degradation and memory-bomb cells — every
  scenario must end in bit-identical recovered results.

See ``docs/resilience.md`` for the failure-domain ladder and knobs.
"""

from .chaos import ChaosPlan, ChaosReport, ChaosV2Report, run_chaos, run_chaos_v2
from .durability import (
    EXIT_INTERRUPTED,
    MemoryWatchdog,
    RunJournal,
    ShutdownCoordinator,
    memory_guard,
    run_id_for,
    write_failure_report,
)
from .executor import ResilientExecutor
from .policy import FailureKind, RetryPolicy, classify_failure
from .report import (
    FAILURE_REPORT_SCHEMA_VERSION,
    CellAttempt,
    CellHistory,
    FailureReport,
)

__all__ = [
    "CellAttempt",
    "CellHistory",
    "ChaosPlan",
    "ChaosReport",
    "ChaosV2Report",
    "EXIT_INTERRUPTED",
    "FAILURE_REPORT_SCHEMA_VERSION",
    "FailureKind",
    "FailureReport",
    "MemoryWatchdog",
    "ResilientExecutor",
    "RetryPolicy",
    "RunJournal",
    "ShutdownCoordinator",
    "classify_failure",
    "memory_guard",
    "run_chaos",
    "run_chaos_v2",
    "run_id_for",
    "write_failure_report",
]
