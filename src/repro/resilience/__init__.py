"""Fault tolerance for long-horizon sweeps (:mod:`repro.resilience`).

Production-scale GAP x SPEC x policy matrices run for hours; over that
horizon workers get OOM-killed, cells hang, and on-disk state rots. This
package makes the sweep stack survive all of it:

* :class:`RetryPolicy` / :func:`classify_failure` — a failure model
  (transient vs deterministic vs poison) with bounded retry, exponential
  backoff and *deterministic* per-cell jitter (same seed, same schedule).
* :class:`ResilientExecutor` — the engine's fault-tolerant execution
  loop: per-cell wall-clock timeouts enforced by a watchdog, process
  pool rebuild after ``BrokenProcessPool``, poison marking after
  repeated strikes, and a structured :class:`FailureReport` of every
  attempt.
* :mod:`repro.resilience.chaos` — a seeded fault-injection harness
  (``repro chaos``) that crashes workers, hangs cells, corrupts cache
  entries and truncates traces on a deterministic schedule, proving
  every recovery path end-to-end.

See ``docs/resilience.md`` for the failure taxonomy and knobs.
"""

from .chaos import ChaosPlan, ChaosReport, run_chaos
from .executor import ResilientExecutor
from .policy import FailureKind, RetryPolicy, classify_failure
from .report import CellAttempt, CellHistory, FailureReport

__all__ = [
    "CellAttempt",
    "CellHistory",
    "ChaosPlan",
    "ChaosReport",
    "FailureKind",
    "FailureReport",
    "ResilientExecutor",
    "RetryPolicy",
    "classify_failure",
    "run_chaos",
]
