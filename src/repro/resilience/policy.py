"""Failure classification and retry/backoff policy for sweep cells.

The failure model distinguishes three kinds of cell failure:

* **transient** — the environment, not the cell: a worker process died
  (``BrokenProcessPool``), the cell blew its wall-clock budget
  (:class:`~repro.errors.CellTimeoutError`), or the OS refused a
  resource (``OSError``). Retrying is worthwhile.
* **deterministic** — the cell itself: an unknown policy, a malformed
  trace, a simulator invariant violation. The same inputs will fail the
  same way forever, so retrying only burns time.
* **poison** — the cell takes the *harness* down with it: it OOMs the
  worker (``MemoryError``) or keeps killing/hanging workers past the
  strike budget. Poison cells are abandoned so the rest of the matrix
  can finish.

Backoff is exponential with **deterministic jitter**: the jitter factor
for (cell, attempt) is derived from a SHA-256 of the policy seed, the
cell identifier and the attempt number — two runs with the same seed
produce bit-identical backoff schedules, which keeps resilient sweeps
reproducible end-to-end (the chaos harness and the retry-determinism
tests rely on it).
"""

from __future__ import annotations

import enum
import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import (
    CellTimeoutError,
    ConfigurationError,
    MemoryBudgetError,
    ReproError,
)


class FailureKind(str, enum.Enum):
    """What a cell failure says about the cell (see module docstring)."""

    TRANSIENT = "transient"
    DETERMINISTIC = "deterministic"
    POISON = "poison"


def classify_failure(exc: BaseException) -> FailureKind:
    """Map one exception to the failure taxonomy.

    ``MemoryError`` is poison: an OOM-ing cell will OOM again and takes
    a worker with it each time. A
    :class:`~repro.errors.MemoryBudgetError` (the RSS watchdog tripping
    *before* the OOM-killer) is transient instead — the worker survived
    and a one-off pressure spike recovers on retry — but the executor
    charges it a strike, so a cell that keeps blowing its budget still
    walks the ladder to poison. (The check must precede the generic
    ``ReproError`` branch, which the budget error subclasses.) Worker
    death, timeouts and OS-level refusals are transient. Everything
    else — including every :class:`~repro.errors.ReproError` — is
    deterministic: the same inputs produce the same failure, so it is
    reported, not retried.
    """
    if isinstance(exc, MemoryError):
        return FailureKind.POISON
    if isinstance(exc, (BrokenProcessPool, CellTimeoutError, MemoryBudgetError)):
        return FailureKind.TRANSIENT
    if isinstance(exc, ReproError):
        return FailureKind.DETERMINISTIC
    if isinstance(exc, OSError):
        return FailureKind.TRANSIENT
    return FailureKind.DETERMINISTIC


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the engine fights for each sweep cell.

    Parameters
    ----------
    max_attempts:
        Total tries per cell (1 = no retry). Only transient failures
        consume retries; deterministic and poison failures stop at once.
    cell_timeout:
        Wall-clock seconds one cell may run before the watchdog aborts
        it (``None`` disables the watchdog). Enforced via worker
        processes, so a timeout forces pool execution even at
        ``jobs=1``.
    backoff_base / backoff_factor / backoff_max:
        Delay before attempt ``n+1`` is ``base * factor**(n-1)``,
        clamped to ``backoff_max``, then stretched by jitter.
    jitter:
        Fraction of deterministic jitter added on top (0.25 means up to
        +25%). Derived from ``seed``, never from a wall clock.
    seed:
        Seed of the jitter schedule; same seed, same schedule.
    poison_strikes:
        Worker-killing or timeout strikes one cell may accumulate
        before it is marked poison and abandoned.
    """

    max_attempts: int = 3
    cell_timeout: float | None = None
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25
    seed: int = 0
    poison_strikes: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError(
                f"RetryPolicy.cell_timeout must be positive, got {self.cell_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ConfigurationError(
                "RetryPolicy backoff parameters must satisfy "
                "base >= 0, factor >= 1, max >= 0"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"RetryPolicy.jitter must be within [0, 1], got {self.jitter}"
            )
        if self.poison_strikes < 1:
            raise ConfigurationError(
                f"RetryPolicy.poison_strikes must be >= 1, got {self.poison_strikes}"
            )

    def jitter_fraction(self, cell_id: str, attempt: int) -> float:
        """Deterministic jitter in ``[0, 1)`` for (cell, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}:{cell_id}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def backoff_for(self, cell_id: str, attempt: int) -> float:
        """Seconds to wait after ``attempt`` (1-based) failed transiently."""
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        return delay * (1.0 + self.jitter * self.jitter_fraction(cell_id, attempt))

    def should_retry(self, kind: FailureKind, attempt: int) -> bool:
        """Whether another attempt is warranted after this failure."""
        return kind is FailureKind.TRANSIENT and attempt < self.max_attempts
