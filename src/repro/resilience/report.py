"""Structured failure accounting for resilient sweeps.

Every retry, timeout, worker death and quarantined cache entry that a
sweep absorbs is recorded here, per cell and per attempt. The report
rides the sweep result (``RunMatrix.failure_report`` /
``SweepOutcome.failure_report``) so callers can audit exactly what the
resilience layer did — the chaos harness asserts against it, ``repro
sweep``/``repro chaos`` render it, and CI fails the chaos smoke unless
it comes back clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .policy import FailureKind

#: Terminal states of a cell that failed at least once.
OUTCOME_RECOVERED = "recovered"
OUTCOME_FAILED = "failed"
OUTCOME_POISONED = "poisoned"

#: Schema version of the persisted failure-report JSON document
#: (``repro sweep --failure-report``, nightly artifacts). Bump on any
#: incompatible change to :meth:`FailureReport.to_json_dict`.
FAILURE_REPORT_SCHEMA_VERSION = 1


@dataclass
class CellAttempt:
    """One failed attempt at one cell."""

    attempt: int
    classification: str  # a FailureKind value
    error_type: str
    message: str
    traceback: str = ""
    duration: float = 0.0  # seconds the attempt ran before failing
    backoff: float = 0.0  # delay scheduled before the next attempt (0 = none)


@dataclass
class CellHistory:
    """Every failed attempt of one cell, plus how the cell ended up."""

    workload: str
    policy: str
    attempts: list[CellAttempt] = field(default_factory=list)
    outcome: str = OUTCOME_FAILED

    @property
    def cell_id(self) -> str:
        return f"{self.workload} x {self.policy}"

    @property
    def last(self) -> CellAttempt:
        return self.attempts[-1]


@dataclass
class FailureReport:
    """What the resilience layer absorbed during one sweep.

    Cells that succeed first try never appear here; ``clean`` means
    every cell that *did* fail was recovered by a retry.
    """

    cells: dict[tuple[str, str], CellHistory] = field(default_factory=dict)
    quarantined_cache_entries: int = 0
    pool_rebuilds: int = 0

    def history(self, workload: str, policy: str) -> CellHistory:
        key = (workload, policy)
        if key not in self.cells:
            self.cells[key] = CellHistory(workload=workload, policy=policy)
        return self.cells[key]

    def record_attempt(self, workload: str, policy: str, attempt: CellAttempt) -> None:
        self.history(workload, policy).attempts.append(attempt)

    def record_outcome(self, workload: str, policy: str, outcome: str) -> None:
        self.history(workload, policy).outcome = outcome

    # -- aggregates ---------------------------------------------------------

    def _with_outcome(self, outcome: str) -> list[CellHistory]:
        return [h for h in self.cells.values() if h.outcome == outcome]

    @property
    def recovered(self) -> list[CellHistory]:
        return self._with_outcome(OUTCOME_RECOVERED)

    @property
    def failed(self) -> list[CellHistory]:
        return self._with_outcome(OUTCOME_FAILED)

    @property
    def poisoned(self) -> list[CellHistory]:
        return self._with_outcome(OUTCOME_POISONED)

    @property
    def total_failed_attempts(self) -> int:
        return sum(len(h.attempts) for h in self.cells.values())

    def attempts_of_kind(self, kind: FailureKind | str) -> list[CellAttempt]:
        """Every recorded attempt with the given classification."""
        value = kind.value if isinstance(kind, FailureKind) else kind
        return [
            a for h in self.cells.values() for a in h.attempts
            if a.classification == value
        ]

    def attempts_with_error(self, error_type: str) -> list[CellAttempt]:
        """Every recorded attempt that failed with ``error_type``."""
        return [
            a for h in self.cells.values() for a in h.attempts
            if a.error_type == error_type
        ]

    @property
    def clean(self) -> bool:
        """True when every failure the sweep hit was recovered."""
        return not self.failed and not self.poisoned

    # -- serialization / rendering ------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "schema": FAILURE_REPORT_SCHEMA_VERSION,
            "clean": self.clean,
            "quarantined_cache_entries": self.quarantined_cache_entries,
            "pool_rebuilds": self.pool_rebuilds,
            "cells": [
                {
                    "workload": h.workload,
                    "policy": h.policy,
                    "outcome": h.outcome,
                    "attempts": [
                        {
                            "attempt": a.attempt,
                            "classification": a.classification,
                            "error_type": a.error_type,
                            "message": a.message,
                            "duration": a.duration,
                            "backoff": a.backoff,
                        }
                        for a in h.attempts
                    ],
                }
                for h in self.cells.values()
            ],
        }

    def render(self, markdown: bool = False) -> str:
        """Human-readable summary (one row per affected cell)."""
        if not self.cells and not self.quarantined_cache_entries:
            return "failure report: clean (no failures absorbed)"

        headers = ["cell", "attempts", "classification", "outcome", "last error"]
        rows = []
        for history in self.cells.values():
            last = history.last if history.attempts else None
            rows.append([
                history.cell_id,
                str(len(history.attempts)),
                last.classification if last else "-",
                history.outcome,
                f"{last.error_type}: {last.message}"[:60] if last else "-",
            ])

        summary = (
            f"{len(self.cells)} cell(s) failed at least once: "
            f"{len(self.recovered)} recovered, {len(self.failed)} failed, "
            f"{len(self.poisoned)} poisoned; "
            f"{self.total_failed_attempts} failed attempt(s), "
            f"{self.pool_rebuilds} pool rebuild(s), "
            f"{self.quarantined_cache_entries} cache entr(ies) quarantined"
        )

        if markdown:
            lines = [
                "| " + " | ".join(headers) + " |",
                "| " + " | ".join("---" for _ in headers) + " |",
            ]
            lines.extend("| " + " | ".join(row) + " |" for row in rows)
            return "\n".join(["### Failure report", "", summary, "", *lines])

        from ..analysis.tables import format_table

        parts = [summary]
        if rows:
            parts.append(format_table(headers, rows, title="failure report"))
        return "\n".join(parts)
