"""Fault-tolerant execution of sweep cells.

:class:`ResilientExecutor` is the engine's execution loop when a
:class:`~repro.resilience.policy.RetryPolicy` (or chaos plan) is armed.
It owns three recovery mechanisms the plain executor lacks:

* **Retry with deterministic backoff** — transient failures are retried
  up to ``max_attempts`` with exponential backoff and seeded jitter;
  deterministic failures fail fast.
* **Watchdog timeouts** — each in-flight cell carries a wall-clock
  deadline. A cell that blows it has its worker pool torn down (a hung
  worker cannot be cancelled politely), is charged a strike, and is
  retried; innocent in-flight cells are resubmitted at the *same*
  attempt number with no penalty.
* **``BrokenProcessPool`` recovery** — a worker dying (OOM killer,
  ``os._exit``, segfault) breaks the whole ``ProcessPoolExecutor``. The
  executor rebuilds the pool, charges a strike to every cell whose
  future died with it (the culprit cannot be singled out post-mortem;
  innocents rotate, so spurious strikes do not accumulate on any one
  cell), and resubmits. A cell that keeps killing workers past
  ``poison_strikes`` is marked **poison** and abandoned so the rest of
  the matrix can finish.

Submission is bounded to the worker count, so every in-flight future is
actually running — deadlines measure real wall-clock execution, and a
pool break never charges strikes to cells that were still queued.

Every absorbed failure lands in the shared
:class:`~repro.resilience.report.FailureReport`.
"""

from __future__ import annotations

import heapq
import itertools
import time
import traceback as traceback_module
from collections import deque
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import CellTimeoutError, MemoryBudgetError
from .durability import ShutdownCoordinator
from .policy import FailureKind, RetryPolicy, classify_failure
from .report import (
    OUTCOME_FAILED,
    OUTCOME_POISONED,
    OUTCOME_RECOVERED,
    CellAttempt,
    FailureReport,
)

#: Floor on the wait() slice so a pathological deadline spread cannot
#: degenerate into a busy loop.
_MIN_WAIT = 0.01

#: Ceiling on waits while a shutdown coordinator is armed: Python signal
#: handlers cannot interrupt ``concurrent.futures.wait`` or a PEP-475
#: ``time.sleep``, so the loop must come up for air to see the flag.
_SHUTDOWN_POLL = 0.5


@dataclass
class _CellState:
    """Mutable per-cell bookkeeping while the sweep is in flight."""

    workload: str
    policy: str
    attempt: int = 1
    strikes: int = 0  # worker-killing faults (pool breaks, timeouts)

    @property
    def cell_id(self) -> str:
        return f"{self.workload} x {self.policy}"


class ResilientExecutor:
    """Runs sweep cells under a :class:`RetryPolicy`.

    Parameters
    ----------
    retry:
        The retry/timeout/backoff policy.
    workers:
        Worker processes for the pool path (``run_pool``).
    submit:
        ``submit(pool, workload, policy, attempt) -> Future`` — builds
        the worker call for one attempt of one cell.
    run_inline:
        ``run_inline(workload, policy, attempt) -> result`` — the serial
        in-process equivalent (``run_serial``).
    on_success:
        Called with ``(workload, policy, result)`` for every finished
        cell.
    on_failure:
        Called with ``(workload, policy, exc, kind)`` when a cell is
        abandoned (retries exhausted, deterministic, or poison). May
        raise to abort the sweep; the executor then tears the pool down.
    report:
        Shared :class:`FailureReport` receiving every absorbed attempt.
    pool_factory:
        Optional ``() -> ProcessPoolExecutor`` used for every pool
        generation (initial creation and post-recycle rebuilds). The
        sweep engine uses it to install per-worker state — the trace
        registry — via a pool initializer; ``None`` falls back to a
        plain pool of ``workers`` processes.
    shutdown:
        Optional :class:`~repro.resilience.durability.ShutdownCoordinator`.
        When its flag is raised the executor stops submitting, drains
        in-flight cells for at most ``drain_timeout`` seconds, and
        returns — unfinished cells are simply left unrun (the journal
        marks them incomplete, so a resume re-runs them).
    """

    def __init__(
        self,
        retry: RetryPolicy,
        workers: int,
        submit: Callable[[ProcessPoolExecutor, str, str, int], Future],
        run_inline: Callable[[str, str, int], object],
        on_success: Callable[[str, str, object], None],
        on_failure: Callable[[str, str, BaseException, FailureKind], None],
        report: FailureReport,
        pool_factory: Callable[[], ProcessPoolExecutor] | None = None,
        shutdown: ShutdownCoordinator | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        self.retry = retry
        self.workers = max(1, workers)
        self.submit = submit
        self.run_inline = run_inline
        self.on_success = on_success
        self.on_failure = on_failure
        self.report = report
        self.pool_factory = pool_factory
        self.shutdown = shutdown
        self.drain_timeout = drain_timeout

    def _stopping(self) -> bool:
        return self.shutdown is not None and self.shutdown.requested

    # -- shared bookkeeping -------------------------------------------------

    def _succeed(self, cell: _CellState, result: object) -> None:
        if (cell.workload, cell.policy) in self.report.cells:
            self.report.record_outcome(cell.workload, cell.policy, OUTCOME_RECOVERED)
        self.on_success(cell.workload, cell.policy, result)

    def _absorb(
        self,
        cell: _CellState,
        exc: BaseException,
        duration: float,
        strike: bool,
        reschedule: Callable[[_CellState, float], None],
    ) -> None:
        """Classify one failed attempt; retry, or abandon the cell."""
        kind = classify_failure(exc)
        if strike:
            cell.strikes += 1
            if kind is FailureKind.TRANSIENT and cell.strikes >= self.retry.poison_strikes:
                kind = FailureKind.POISON
        retrying = self.retry.should_retry(kind, cell.attempt)
        backoff = self.retry.backoff_for(cell.cell_id, cell.attempt) if retrying else 0.0
        self.report.record_attempt(
            cell.workload,
            cell.policy,
            CellAttempt(
                attempt=cell.attempt,
                classification=kind.value,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback="".join(
                    traceback_module.format_exception(type(exc), exc, exc.__traceback__)
                ),
                duration=duration,
                backoff=backoff,
            ),
        )
        if retrying:
            cell.attempt += 1
            reschedule(cell, backoff)
            return
        outcome = OUTCOME_POISONED if kind is FailureKind.POISON else OUTCOME_FAILED
        self.report.record_outcome(cell.workload, cell.policy, outcome)
        self.on_failure(cell.workload, cell.policy, exc, kind)

    # -- serial path --------------------------------------------------------

    def run_serial(self, cells: Iterable[tuple[str, str]]) -> None:
        """Retry loop without a pool (no timeout enforcement possible).

        The engine routes timeout-armed or chaos-armed sweeps to
        :meth:`run_pool` even at ``jobs=1``; this path covers plain
        retry/classification where in-process execution keeps unit
        sweeps hermetic.
        """
        for workload, policy in cells:
            if self._stopping():
                return  # remaining cells stay unrun (resumable)
            cell = _CellState(workload, policy)
            while True:
                started = time.monotonic()
                try:
                    result = self.run_inline(cell.workload, cell.policy, cell.attempt)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    retry_delay: list[float] = []
                    self._absorb(
                        cell,
                        exc,
                        duration=time.monotonic() - started,
                        # Memory-budget breaches strike even in-process:
                        # a cell that keeps blowing its budget must walk
                        # the same ladder to poison as a worker-killer.
                        strike=isinstance(exc, MemoryBudgetError),
                        reschedule=lambda _cell, backoff: retry_delay.append(backoff),
                    )
                    if not retry_delay:
                        break  # abandoned (on_failure already ran)
                    if self._stopping():
                        break  # skip the backoff wait; cell resumes later
                    time.sleep(retry_delay[0])
                else:
                    self._succeed(cell, result)
                    break

    # -- pool path ----------------------------------------------------------

    def run_pool(self, cells: Iterable[tuple[str, str]]) -> None:
        """Fan cells over a process pool with watchdog + rebuild."""
        timeout = self.retry.cell_timeout
        seq = itertools.count()  # heap tie-breaker
        queue: deque[_CellState] = deque(_CellState(w, p) for w, p in cells)
        delayed: list[tuple[float, int, _CellState]] = []  # backoff heap
        inflight: dict[Future, tuple[_CellState, float, float]] = {}  # start, deadline
        pool: ProcessPoolExecutor | None = None

        def reschedule(cell: _CellState, backoff: float) -> None:
            heapq.heappush(delayed, (time.monotonic() + backoff, next(seq), cell))

        try:
            while queue or delayed or inflight:
                if self._stopping():
                    self._drain(inflight)
                    return  # queue/delayed cells stay unrun (resumable)
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    queue.append(heapq.heappop(delayed)[2])
                while queue and len(inflight) < self.workers:
                    cell = queue.popleft()
                    if pool is None:
                        pool = (
                            self.pool_factory()
                            if self.pool_factory is not None
                            else ProcessPoolExecutor(max_workers=self.workers)
                        )
                    future = self.submit(pool, cell.workload, cell.policy, cell.attempt)
                    started = time.monotonic()
                    deadline = float("inf") if timeout is None else started + timeout
                    inflight[future] = (cell, started, deadline)

                if not inflight:
                    if delayed:  # everything is backing off
                        pause = max(_MIN_WAIT, delayed[0][0] - time.monotonic())
                        if self.shutdown is not None:
                            # Signal handlers cannot interrupt the sleep
                            # (PEP 475 retries it); poll the flag instead.
                            pause = min(pause, _SHUTDOWN_POLL)
                        time.sleep(pause)
                    continue

                done, _ = wait(
                    set(inflight),
                    timeout=self._wait_slice(inflight, delayed),
                    return_when=FIRST_COMPLETED,
                )

                pool_broke = False
                for future in done:
                    cell, started, _ = inflight.pop(future)
                    duration = time.monotonic() - started
                    try:
                        result = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenProcessPool as exc:
                        pool_broke = True
                        self._absorb(cell, exc, duration, strike=True,
                                     reschedule=reschedule)
                    except Exception as exc:
                        # A memory-budget breach counts as a strike: the
                        # worker survived (unlike an OOM kill), but a
                        # cell that keeps blowing its budget must still
                        # reach poison before the OS OOM-killer does.
                        self._absorb(cell, exc, duration,
                                     strike=isinstance(exc, MemoryBudgetError),
                                     reschedule=reschedule)
                    else:
                        self._succeed(cell, result)

                if pool_broke:
                    pool = self._recycle_pool(pool, inflight, queue, kill=False)
                    continue

                if timeout is not None:
                    now = time.monotonic()
                    expired = [f for f, (_, _, dl) in inflight.items() if dl <= now]
                    for future in expired:
                        cell, started, _ = inflight.pop(future)
                        exc = CellTimeoutError(
                            f"cell {cell.cell_id} exceeded its {timeout:g}s "
                            f"wall-clock budget (attempt {cell.attempt})"
                        )
                        self._absorb(cell, exc, now - started, strike=True,
                                     reschedule=reschedule)
                    if expired:
                        # The hung worker cannot be cancelled; kill the
                        # pool and resubmit the innocent in-flight cells
                        # at the same attempt with no penalty.
                        pool = self._recycle_pool(pool, inflight, queue, kill=True)
        finally:
            if pool is not None:
                self._shutdown_pool(pool, kill=True)

    def _wait_slice(
        self,
        inflight: dict[Future, tuple[_CellState, float, float]],
        delayed: list[tuple[float, int, _CellState]],
    ) -> float | None:
        """How long wait() may block before a deadline or backoff expiry."""
        now = time.monotonic()
        horizon = min(deadline for _, _, deadline in inflight.values())
        if delayed:
            horizon = min(horizon, delayed[0][0])
        if self.shutdown is not None:
            return min(_SHUTDOWN_POLL, max(_MIN_WAIT, horizon - now))
        if horizon == float("inf"):
            return None
        return max(_MIN_WAIT, horizon - now)

    def _drain(self, inflight: dict[Future, tuple[_CellState, float, float]]) -> None:
        """Give in-flight cells a bounded window to finish, then stop.

        Completed cells are recorded (and checkpointed by the engine's
        callbacks) like any other; cells that fail — or are still
        running when the drain deadline expires — are left unfinished
        without retrying, so the journal marks them incomplete and a
        resume re-runs them. The caller's ``finally`` kills the pool.
        """
        deadline = time.monotonic() + self.drain_timeout
        while inflight and time.monotonic() < deadline:
            done, _ = wait(set(inflight), timeout=0.25,
                           return_when=FIRST_COMPLETED)
            for future in done:
                cell, started, _ = inflight.pop(future)
                duration = time.monotonic() - started
                try:
                    result = future.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    # Account for the attempt but never resubmit during
                    # a shutdown; the cell simply stays unfinished.
                    self.report.record_attempt(
                        cell.workload,
                        cell.policy,
                        CellAttempt(
                            attempt=cell.attempt,
                            classification=classify_failure(exc).value,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            duration=duration,
                        ),
                    )
                else:
                    self._succeed(cell, result)

    def _recycle_pool(
        self,
        pool: ProcessPoolExecutor | None,
        inflight: dict[Future, tuple[_CellState, float, float]],
        queue: deque[_CellState],
        kill: bool,
    ) -> None:
        """Tear the pool down and resubmit innocent in-flight cells.

        Cells still in ``inflight`` were victims of the teardown, not
        its cause — they rejoin the queue at the same attempt number.
        """
        survivors = [cell for cell, _, _ in inflight.values()]
        inflight.clear()
        queue.extend(survivors)
        if pool is not None:
            self._shutdown_pool(pool, kill=kill)
            self.report.pool_rebuilds += 1
        return None

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
        if kill:
            # Hung workers ignore a polite shutdown; terminate them.
            # ``_processes`` is CPython-private but stable since 3.7 and
            # the only handle on the worker PIDs; degrade to a plain
            # shutdown if it ever disappears.
            try:
                for process in list(pool._processes.values()):
                    process.terminate()
            except (AttributeError, OSError):  # pragma: no cover - fallback
                pass
        pool.shutdown(wait=False, cancel_futures=True)
