"""Graph substrate: CSR/CSC structures, generators, persistence."""

from .csr import CSRGraph
from .generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    kronecker,
    path_graph,
    star_graph,
    uniform_random,
)
from .loaders import load_csr, load_edge_list, save_csr, save_edge_list

__all__ = [
    "CSRGraph",
    "uniform_random",
    "kronecker",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "load_edge_list",
    "save_edge_list",
    "load_csr",
    "save_csr",
]
