"""Graph generators.

The GAP benchmark suite evaluates on two synthetic graph families, which
we reproduce at reduced scale (see DESIGN.md, substitution 3):

* ``uniform_random`` — GAP's *urand*: Erdős–Rényi-style random edges,
  uniform degree distribution, essentially no locality structure.
* ``kronecker`` — GAP's *kron*: an RMAT/Kronecker power-law graph with
  the Graph500 initiator (A, B, C = 0.57, 0.19, 0.19), producing the
  skewed degree distributions of social/web graphs.

Deterministic small generators (path, cycle, star, complete, grid) back
the unit tests with graphs whose algorithmic results are known in closed
form.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def uniform_random(
    num_vertices: int, avg_degree: int = 16, seed: int = 42, symmetrize: bool = True
) -> CSRGraph:
    """GAP's *urand*: ``num_vertices * avg_degree`` uniform random edges."""
    if num_vertices < 1 or avg_degree < 1:
        raise GraphError("uniform_random needs positive size and degree")
    rng = np.random.default_rng(seed)
    num_edges = num_vertices * avg_degree // (2 if symmetrize else 1)
    edges = rng.integers(0, num_vertices, size=(num_edges, 2), dtype=np.int64)
    return CSRGraph.from_edges(num_vertices, edges, symmetrize=symmetrize)


def kronecker(
    scale: int,
    edge_factor: int = 16,
    seed: int = 42,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    symmetrize: bool = True,
) -> CSRGraph:
    """GAP's *kron*: RMAT graph with 2**scale vertices (Graph500 initiator).

    Each of the ``scale`` address bits of both endpoints is drawn from
    the (A, B, C, D) quadrant distribution; endpoints are randomly
    permuted afterwards so degree correlates with nothing observable, as
    in the Graph500 specification.
    """
    if scale < 1 or scale > 30:
        raise GraphError(f"scale must be in [1, 30], got {scale}")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise GraphError("initiator probabilities must be non-negative and sum <= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor // (2 if symmetrize else 1)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: A (src 0, dst 0), B (0, 1), C (1, 0), D (1, 1).
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = ((r >= a) & (r < a + b)).astype(np.int64) | (
            (r >= a + b + c).astype(np.int64)
        )
        src |= src_bit << bit
        dst |= dst_bit << bit
    perm = rng.permutation(n)
    edges = np.column_stack([perm[src], perm[dst]])
    return CSRGraph.from_edges(n, edges, symmetrize=symmetrize)


def path_graph(num_vertices: int) -> CSRGraph:
    """0 - 1 - 2 - ... - (n-1), undirected."""
    if num_vertices < 1:
        raise GraphError("path needs at least one vertex")
    src = np.arange(num_vertices - 1, dtype=np.int64)
    edges = np.column_stack([src, src + 1])
    return CSRGraph.from_edges(num_vertices, edges, symmetrize=True)


def cycle_graph(num_vertices: int) -> CSRGraph:
    """A single undirected cycle."""
    if num_vertices < 3:
        raise GraphError("cycle needs at least three vertices")
    src = np.arange(num_vertices, dtype=np.int64)
    edges = np.column_stack([src, (src + 1) % num_vertices])
    return CSRGraph.from_edges(num_vertices, edges, symmetrize=True)


def star_graph(num_leaves: int) -> CSRGraph:
    """Vertex 0 connected to ``num_leaves`` leaves, undirected."""
    if num_leaves < 1:
        raise GraphError("star needs at least one leaf")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    edges = np.column_stack([np.zeros(num_leaves, dtype=np.int64), leaves])
    return CSRGraph.from_edges(num_leaves + 1, edges, symmetrize=True)


def complete_graph(num_vertices: int) -> CSRGraph:
    """Every pair connected, undirected."""
    if num_vertices < 2:
        raise GraphError("complete graph needs at least two vertices")
    idx = np.arange(num_vertices, dtype=np.int64)
    src, dst = np.meshgrid(idx, idx)
    mask = src < dst
    edges = np.column_stack([src[mask], dst[mask]])
    return CSRGraph.from_edges(num_vertices, edges, symmetrize=True)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """A rows x cols 4-neighbour mesh, undirected."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    vid = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.column_stack([vid[:, :-1].ravel(), vid[:, 1:].ravel()])
    vertical = np.column_stack([vid[:-1, :].ravel(), vid[1:, :].ravel()])
    edges = np.concatenate([horizontal, vertical])
    return CSRGraph.from_edges(rows * cols, edges, symmetrize=True)
