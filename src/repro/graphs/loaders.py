"""Graph persistence: edge-list text files and binary CSR archives.

The text format is the plain whitespace edge list GAP and SNAP datasets
use (``#``-prefixed comment lines allowed); the binary format stores the
CSR arrays directly in an ``.npz`` for fast reload of generated graphs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def save_edge_list(graph: CSRGraph, path: str | Path) -> Path:
    """Write the graph as ``src dst`` lines."""
    path = Path(path)
    edges = graph.edges()
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# vertices: {graph.num_vertices}\n")
        for src, dst in edges:
            f.write(f"{src} {dst}\n")
    return path


def load_edge_list(
    path: str | Path, num_vertices: int | None = None, symmetrize: bool = False
) -> CSRGraph:
    """Read a whitespace edge list; vertex count defaults to max id + 1."""
    path = Path(path)
    sources: list[int] = []
    dests: list[int] = []
    with open(path, encoding="utf-8") as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_number}: expected 'src dst'")
            try:
                sources.append(int(parts[0]))
                dests.append(int(parts[1]))
            except ValueError as exc:
                raise GraphError(f"{path}:{line_number}: non-integer vertex id") from exc
    if not sources:
        return CSRGraph(np.zeros(1 if num_vertices is None else num_vertices + 1,
                                 dtype=np.int64), np.empty(0, dtype=np.int64))
    edges = np.column_stack([np.array(sources, dtype=np.int64),
                             np.array(dests, dtype=np.int64)])
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1
    return CSRGraph.from_edges(num_vertices, edges, symmetrize=symmetrize)


def save_csr(graph: CSRGraph, path: str | Path) -> Path:
    """Write CSR arrays to an ``.npz`` archive."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, offsets=graph.offsets, neighbors=graph.neighbors)
    return path


def load_csr(path: str | Path) -> CSRGraph:
    """Read a graph written by :func:`save_csr`."""
    path = Path(path)
    try:
        with np.load(path) as data:
            if "offsets" not in data or "neighbors" not in data:
                raise GraphError(f"{path}: not a repro CSR archive")
            return CSRGraph(data["offsets"], data["neighbors"])
    except (OSError, ValueError) as exc:
        raise GraphError(f"{path}: cannot read CSR archive: {exc}") from exc
