"""Compressed Sparse Row / Column graph representation.

The CSR format of the paper's Figure 1: the *Offset Array* (OA) holds,
per vertex, the start of its adjacency list inside the *Neighbours Array*
(NA); *Property Arrays* (PA) carry per-vertex values (ranks, distances,
components). The GAP kernels in :mod:`repro.gap` traverse this structure
for real, and the memory-model in :mod:`repro.gap.memory` maps each OA /
NA / PA touch to the synthetic address space seen by the simulator.

Arrays are numpy ``int64``/``float64``; construction validates
consistency and the class exposes both single-vertex and vectorized
adjacency access.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError


class CSRGraph:
    """A directed graph in CSR form (use :meth:`transpose` for CSC).

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``offsets[0] == 0``, ``offsets[-1] == num_edges``.
    neighbors:
        ``int64`` array of destination vertices, grouped by source.
    """

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if offsets.ndim != 1 or neighbors.ndim != 1:
            raise GraphError("offsets and neighbors must be 1-D arrays")
        if len(offsets) < 1 or offsets[0] != 0:
            raise GraphError("offsets must start with 0")
        if len(offsets) >= 2 and np.any(np.diff(offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        if offsets[-1] != len(neighbors):
            raise GraphError(
                f"offsets[-1]={offsets[-1]} must equal len(neighbors)={len(neighbors)}"
            )
        n = len(offsets) - 1
        if len(neighbors) and (neighbors.min() < 0 or neighbors.max() >= n):
            raise GraphError("neighbor ids out of range")
        self.offsets = offsets
        self.neighbors = neighbors
        self.num_vertices = n
        self.num_edges = int(offsets[-1])

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray,
        symmetrize: bool = False,
        dedup: bool = True,
    ) -> "CSRGraph":
        """Build CSR from an ``(m, 2)`` edge array.

        ``symmetrize=True`` adds the reverse of every edge (undirected
        graphs); ``dedup`` removes self-loops and duplicate edges, as the
        GAP builder does.
        """
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges) and (edges.min() < 0 or edges.max() >= num_vertices):
            raise GraphError("edge endpoints out of range")
        if symmetrize and len(edges):
            edges = np.concatenate([edges, edges[:, ::-1]])
        if dedup and len(edges):
            edges = edges[edges[:, 0] != edges[:, 1]]  # drop self-loops
            # unique rows via a 1-D key
            keys = edges[:, 0] * np.int64(num_vertices) + edges[:, 1]
            _, idx = np.unique(keys, return_index=True)
            edges = edges[np.sort(idx)]
        src = edges[:, 0]
        dst = edges[:, 1]
        # Sorting by (src, dst) groups rows and leaves each adjacency
        # list sorted — deterministic traversal order in one pass.
        order = np.lexsort((dst, src))
        src = src[order]
        neighbors = dst[order]
        counts = np.bincount(src, minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, neighbors)

    # -- queries ----------------------------------------------------------------

    def out_degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def out_degrees(self) -> np.ndarray:
        """All out-degrees as an array."""
        return np.diff(self.offsets)

    def neighbors_of(self, v: int) -> np.ndarray:
        """Adjacency list of ``v`` (a view, do not mutate)."""
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def edges(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees())
        return np.column_stack([src, self.neighbors])

    def transpose(self) -> "CSRGraph":
        """The reverse graph — CSR of the transpose, i.e. CSC of this one."""
        if self.num_edges == 0:
            return CSRGraph(np.zeros(self.num_vertices + 1, dtype=np.int64),
                            np.empty(0, dtype=np.int64))
        edges = self.edges()
        return CSRGraph.from_edges(
            self.num_vertices, edges[:, ::-1], symmetrize=False, dedup=False
        )

    def is_symmetric(self) -> bool:
        """Whether every edge has its reverse (undirected structure)."""
        if self.num_edges == 0:
            return True
        fwd = self.edges()
        keys_fwd = fwd[:, 0] * np.int64(self.num_vertices) + fwd[:, 1]
        keys_rev = fwd[:, 1] * np.int64(self.num_vertices) + fwd[:, 0]
        return bool(np.array_equal(np.sort(keys_fwd), np.sort(keys_rev)))

    @property
    def average_degree(self) -> float:
        """Mean out-degree."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def __repr__(self) -> str:
        return (
            f"CSRGraph(vertices={self.num_vertices:,}, edges={self.num_edges:,}, "
            f"avg_degree={self.average_degree:.1f})"
        )
