"""Rule base class and registry.

Mirrors :mod:`repro.policies.registry`: rules are registered under
canonical lowercase names, instantiated fresh per run, and listed with
:func:`available_rules`. Adding a check means subclassing :class:`Rule`
and calling :func:`register_rule` — the CLI, ``make lint`` and the test
suite pick it up with no further wiring (see docs/linting.md).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Iterator

from ..errors import ReproError
from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .model import LintContext


class UnknownRuleError(ReproError):
    """A lint rule name was not found in the rule registry."""


class Rule(abc.ABC):
    """One static check over a :class:`~repro.lint.model.LintContext`.

    Subclasses set :attr:`name` (registry identifier), :attr:`severity`
    (the severity of the findings they emit) and implement
    :meth:`check`, yielding :class:`~repro.lint.findings.Finding`
    records. Rules must be pure functions of the context: no mutation,
    no filesystem access beyond what the context already parsed.
    """

    #: Registry name, e.g. ``"pc-writeback-guard"``.
    name: str = "rule"

    #: One-line description shown by ``repro lint --list-rules``.
    description: str = ""

    #: Severity of this rule's findings.
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(self, ctx: "LintContext") -> Iterator[Finding]:
        """Yield findings for every violation visible in ``ctx``."""

    def finding(self, path: str, line: int, message: str, hint: str) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=path,
            line=line,
            message=message,
            hint=hint,
        )


_REGISTRY: dict[str, Callable[[], Rule]] = {}


def register_rule(name: str, factory: Callable[[], Rule]) -> None:
    """Register (or replace) a rule factory under ``name``."""
    _REGISTRY[name.lower()] = factory


def make_rule(name: str) -> Rule:
    """Create a fresh instance of the rule registered as ``name``."""
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise UnknownRuleError(
            f"unknown lint rule {name!r}; available: {', '.join(available_rules())}"
        )
    return factory()


def available_rules() -> list[str]:
    """Sorted list of registered rule names."""
    return sorted(_REGISTRY)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in name order."""
    return [make_rule(name) for name in available_rules()]
