"""Finding output formats: text, JSON, and markdown.

The text form is for terminals (one finding per line plus a fix hint),
JSON is for tooling (schema-versioned, round-trips through
:meth:`~repro.lint.findings.Finding.from_json_dict`), and markdown is
the table the CI gate posts to ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

import json

from .findings import Finding, Severity

#: Version of the ``repro lint --format json`` document.
FINDINGS_JSON_VERSION = 1


def summarize(findings: list[Finding]) -> dict[str, int]:
    """Counts by severity (notes reported as ``info``)."""
    return {
        "errors": sum(1 for f in findings if f.severity == Severity.ERROR),
        "warnings": sum(1 for f in findings if f.severity == Severity.WARNING),
        "info": sum(1 for f in findings if f.severity == Severity.NOTE),
    }


def render_text(findings: list[Finding]) -> str:
    """One rendered finding per entry, newline-joined."""
    return "\n".join(f.render() for f in findings)


def render_json(findings: list[Finding], suppressed: int = 0) -> str:
    """The versioned JSON document for ``--format json``."""
    doc = {
        "version": FINDINGS_JSON_VERSION,
        "findings": [f.to_json_dict() for f in findings],
        "summary": {**summarize(findings), "suppressed": suppressed},
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def parse_json(text: str) -> list[Finding]:
    """Findings back out of a ``render_json`` document."""
    doc = json.loads(text)
    if doc.get("version") != FINDINGS_JSON_VERSION:
        raise ValueError(
            f"unsupported findings document version {doc.get('version')!r}"
        )
    return [Finding.from_json_dict(entry) for entry in doc["findings"]]


def _md_escape(text: str) -> str:
    return text.replace("|", "\\|").replace("\n", " ")


def render_markdown(findings: list[Finding], suppressed: int = 0) -> str:
    """The markdown table posted to CI job summaries."""
    counts = summarize(findings)
    lines = [
        "## repro lint",
        "",
        f"**{counts['errors']} error(s), {counts['warnings']} warning(s), "
        f"{counts['info']} info** ({suppressed} baselined)",
        "",
    ]
    if findings:
        lines += [
            "| Severity | Rule | Location | Message | Hint |",
            "|---|---|---|---|---|",
        ]
        for f in findings:
            lines.append(
                f"| {f.severity} | `{f.rule}` | `{_md_escape(f.path)}:{f.line}` "
                f"| {_md_escape(f.message)} | {_md_escape(f.hint)} |"
            )
    else:
        lines.append("No findings — the tree is clean under the current baseline.")
    return "\n".join(lines)
