"""Correctness tooling for the simulator: static analysis + runtime sanitizer.

The paper's Figure 3 claim — PC-indexed learned policies silently degrade
on GAP workloads — is only as trustworthy as the policy ports behind it.
A port that mishandles BYPASS, indexes a PC table with the ``pc == 0`` of
a writeback, or drifts a "saturating" counter without bounds produces
plausible-looking but wrong speed-ups. This package makes those contract
details checkable:

* :mod:`repro.lint.analyzer` — an AST-based static analyzer that verifies
  every policy in the registry against the
  :class:`~repro.policies.base.ReplacementPolicy` contract, via pluggable
  :class:`~repro.lint.rules.Rule` objects (registry mirroring
  :mod:`repro.policies.registry`).
* :mod:`repro.lint.sanitize` — an opt-in runtime invariant sanitizer
  (``--sanitize``) that asserts set-occupancy bounds, tag uniqueness,
  eviction-notification pairing and dirty-bit consistency during real
  simulations, cheap enough for CI on the synthetic traces.

``python -m repro lint`` runs the analyzer over the live tree;
``python -m repro lint --sanitize-selftest`` exercises the sanitizer.
"""

from __future__ import annotations

from .analyzer import LintContext, lint_paths, lint_tree
from .baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    parse_baseline,
)
from .findings import Finding, Severity
from .output import (
    parse_json,
    render_json,
    render_markdown,
    render_text,
    summarize,
)
from .rules import Rule, available_rules, make_rule, register_rule
from .saltclosure import SaltClosureReport, salt_closure_report
from .sanitize import InvariantSanitizer, SanitizerError, attach_sanitizers
from .warmstate import WarmStateReport, warm_state_report

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "InvariantSanitizer",
    "LintContext",
    "Rule",
    "SaltClosureReport",
    "SanitizerError",
    "Severity",
    "WarmStateReport",
    "apply_baseline",
    "attach_sanitizers",
    "available_rules",
    "lint_paths",
    "lint_tree",
    "make_rule",
    "parse_baseline",
    "parse_json",
    "register_rule",
    "render_json",
    "render_markdown",
    "render_text",
    "salt_closure_report",
    "summarize",
    "warm_state_report",
]
