"""Dataflow-aware determinism rules for simulation code.

The basic :class:`~repro.lint.contract.DeterminismRule` bans the obvious
hazards (``import random``, wall-clock imports, bare ``hash()``,
unseeded generators) at the statement level. The rules here catch the
quieter ways nondeterminism leaks into a simulation:

* iterating an *unordered* container — Python ``set`` iteration order
  depends on insertion history and the per-process string hash seed, so
  a victim scan or training loop driven by one diverges run to run even
  when every element is identical;
* values from process-identity sources (``id()``, ``time.*``,
  ``os.getpid()``, ``uuid``) flowing into policy state, table indices or
  return values — a predictor keyed on ``id(line) % tables`` is keyed on
  the allocator;
* reading the environment — an env var is invisible to the sweep
  engine's cache key, so two runs with different environments would
  share a cache entry while computing different things.

All three apply only to simulation modules (``policies``/``mem``/
``core`` path components, same scope as the base determinism rule).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding, Severity
from .model import ClassInfo, LintContext, ModuleInfo
from .rules import Rule, register_rule

from .contract import _is_simulation_module

#: Call names whose results identify the process, not the simulation.
_IDENTITY_SOURCES = {"id", "getpid", "uuid1", "uuid4", "urandom", "token_bytes"}

#: ``time`` module functions (matched as ``time.<name>(...)`` calls).
_CLOCK_SOURCES = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}


def _is_set_constructor(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set (literal, comp, or call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _set_typed_attrs(cls: ClassInfo) -> set[str]:
    """``self.<attr>`` names assigned a set anywhere in the class."""
    attrs: set[str] = set()
    for fn in cls.methods.values():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_set_constructor(node.value):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


def _set_typed_locals(fn: ast.FunctionDef) -> set[str]:
    """Local names assigned a set inside ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_set_constructor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _method_owner_map(ctx: LintContext) -> dict[int, ClassInfo]:
    """``id(function node)`` -> owning class, for every known method."""
    return {
        id(fn): cls for cls in ctx.classes for fn in cls.methods.values()
    }


class UnorderedIterRule(Rule):
    """No iteration over sets in simulation code.

    ``dict`` preserves insertion order (deterministic given a
    deterministic insertion sequence); ``set`` does not — its iteration
    order depends on hash values, which for strings are salted per
    process. A ``for way in candidate_set`` victim scan can therefore
    pick different victims on identical inputs. Iterate a list, or wrap
    the set in ``sorted(...)`` to impose a total order.
    """

    name = "determinism-unordered-iter"
    description = "simulation code never iterates a set (unordered, hash-seed dependent)"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        owners = _method_owner_map(ctx)
        for module in ctx.modules:
            if not _is_simulation_module(module.path):
                continue
            for fn in ast.walk(module.tree):
                if not isinstance(fn, ast.FunctionDef):
                    continue
                cls = owners.get(id(fn))
                set_attrs = _set_typed_attrs(cls) if cls is not None else set()
                set_locals = _set_typed_locals(fn)
                for where, iter_expr in self._iteration_sites(fn):
                    if self._is_set_valued(iter_expr, set_locals, set_attrs):
                        yield self.finding(
                            module.path,
                            where,
                            f"{fn.name} iterates over "
                            f"{self._describe(iter_expr)}; set order is "
                            "unordered and varies with the process hash seed",
                            "iterate a list, or wrap the set in sorted(...) "
                            "to impose a deterministic order",
                        )

    @staticmethod
    def _describe(expr: ast.expr) -> str:
        if isinstance(expr, ast.Name):
            return f"the set {expr.id!r}"
        if isinstance(expr, ast.Attribute):
            return f"the set 'self.{expr.attr}'"
        return "a set"

    @staticmethod
    def _iteration_sites(fn: ast.FunctionDef) -> Iterator[tuple[int, ast.expr]]:
        for node in ast.walk(fn):
            if isinstance(node, ast.For):
                yield node.lineno, node.iter
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield node.lineno, gen.iter

    @staticmethod
    def _is_set_valued(
        expr: ast.expr, set_locals: set[str], set_attrs: set[str]
    ) -> bool:
        if _is_set_constructor(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in set_locals
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr in set_attrs
        return False


def _source_call_name(node: ast.Call) -> str | None:
    """The source name if ``node`` calls a nondeterministic source."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _IDENTITY_SOURCES:
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in _IDENTITY_SOURCES:
            return func.attr
        if func.attr in _CLOCK_SOURCES and isinstance(func.value, ast.Name):
            if func.value.id == "time":
                return f"time.{func.attr}"
    return None


class DataflowRule(Rule):
    """Process-identity values must not flow into simulation decisions.

    A single forward taint pass per function: sources are calls to
    ``id()``, ``time.*()``, ``os.getpid()`` and friends; taint
    propagates through local assignments; sinks are stores into
    ``self.*`` state, subscript indices (table lookups) and return
    values. The statement-level determinism rule already bans *importing*
    ``time`` in simulation modules — this rule reports the flow itself,
    so a hazard smuggled through a helper parameter or pre-imported
    module still surfaces, with the sink (the corrupted decision) as the
    finding location.
    """

    name = "determinism-dataflow"
    description = "id()/time()/pid values never reach policy state, indices or returns"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules:
            if not _is_simulation_module(module.path):
                continue
            for fn in ast.walk(module.tree):
                if isinstance(fn, ast.FunctionDef):
                    yield from self._check_function(module, fn)

    def _check_function(
        self, module: ModuleInfo, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        # Forward pass: which locals hold source-derived values?
        tainted: dict[str, str] = {}  # name -> source description

        def expr_source(node: ast.AST) -> str | None:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    source = _source_call_name(sub)
                    if source is not None:
                        return source
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    return tainted[sub.id]
            return None

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                source = expr_source(node.value)
                if source is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.setdefault(target.id, source)
            elif isinstance(node, ast.AugAssign):
                source = expr_source(node.value)
                if source is not None and isinstance(node.target, ast.Name):
                    tainted.setdefault(node.target.id, source)

        reported: set[int] = set()

        def report(lineno: int, source: str, sink: str) -> Finding:
            reported.add(lineno)
            return self.finding(
                module.path,
                lineno,
                f"{fn.name}: value derived from {source}() flows into {sink}",
                "derive the value from simulation inputs (addresses, PCs, "
                "a seeded Generator), never from process identity or clocks",
            )

        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                source = expr_source(node.value)
                if source is None:
                    continue
                for target in targets:
                    root = target
                    while isinstance(root, ast.Subscript):
                        root = root.value
                    if (
                        isinstance(root, ast.Attribute)
                        and isinstance(root.value, ast.Name)
                        and root.value.id == "self"
                    ):
                        yield report(
                            node.lineno, source, f"policy state self.{root.attr}"
                        )
                        break
            elif isinstance(node, ast.Subscript):
                source = expr_source(node.slice)
                if source is not None and node.lineno not in reported:
                    yield report(node.lineno, source, "a table index")
            elif isinstance(node, ast.Return) and node.value is not None:
                source = expr_source(node.value)
                if source is not None and node.lineno not in reported:
                    yield report(node.lineno, source, "a return value")


class EnvReadRule(Rule):
    """Simulation code never reads the process environment.

    Environment variables are configuration the sweep-engine cache key
    cannot see: two hosts with different ``REPRO_*`` (or any other)
    variables would share cache entries while simulating different
    machines. Configuration belongs in :class:`MachineConfig` or
    explicit parameters; only the harness layer may consult the
    environment (and it folds what it reads into cache keys).
    """

    name = "determinism-env"
    description = "simulation code never reads os.environ / os.getenv"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules:
            if not _is_simulation_module(module.path):
                continue
            for node in ast.walk(module.tree):
                what: str | None = None
                if isinstance(node, ast.Attribute) and node.attr == "environ":
                    what = "os.environ"
                elif isinstance(node, ast.Name) and node.id == "environ":
                    what = "environ"
                elif isinstance(node, ast.Call):
                    func = node.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id
                        if isinstance(func, ast.Name)
                        else None
                    )
                    if name == "getenv":
                        what = "os.getenv()"
                if what is not None:
                    yield self.finding(
                        module.path,
                        node.lineno,
                        f"simulation module reads the environment via {what}",
                        "plumb configuration through MachineConfig or function "
                        "parameters; env vars bypass the sweep cache key",
                    )


for _rule in (UnorderedIterRule, DataflowRule, EnvReadRule):
    register_rule(_rule.name, _rule)
