"""Salt-closure pass: the sweep cache's salt covers everything it must.

The sweep engine's on-disk result cache is keyed on a *simulator-version
salt* — a hash over the source files named by
``repro.harness.engine.SALT_SOURCE_PACKAGES``. The soundness argument is
simple: if editing a file could change what a simulation computes, that
file must be inside the salt, or cached results survive the edit and
the "bit-identical" guarantee becomes a lie served from disk.

"Could change what a simulation computes" is exactly runtime
reachability over the import graph (:mod:`repro.lint.imports`) from the
simulation entry points: the simulator driver, the fast-path engine,
and the policy registry (which pulls in every policy module). This pass
builds that closure and fails if any reachable module of the analyzed
package lies outside the salt's coverage.

Both sides of the comparison come from the *parsed* tree — the entry
list is read out of ``engine.py``'s AST, not imported — so the pass
works identically on the live package and on test fixture trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .findings import Finding, Severity
from .imports import build_import_graph, module_name_for
from .model import LintContext, ModuleInfo
from .rules import Rule, register_rule

#: The salt configuration variable looked up in the engine's AST.
SALT_VARIABLE = "SALT_SOURCE_PACKAGES"

#: Entry points of the simulation, relative to the package root: the
#: reference driver, the fast-path engine, the batched multi-cell
#: engine, the sampling executor, and the policy registry.
ENTRY_MODULE_SUFFIXES = (
    "core.simulator",
    "mem.fastpath",
    "mem.batch",
    "policies.registry",
    "sampling.executor",
)


@dataclass
class SaltClosureReport:
    """What the pass computed, for tests and diagnostics."""

    #: Module names of the entry points actually present in the graph.
    entries: list[str] = field(default_factory=list)
    #: The raw SALT_SOURCE_PACKAGES entries parsed from engine.py.
    salt_specs: list[str] = field(default_factory=list)
    #: Every module transitively reachable from the entries.
    reachable: set[str] = field(default_factory=set)
    #: Reachable modules not covered by any salt spec.
    uncovered: list[str] = field(default_factory=list)


def _find_salt_assignment(
    ctx: LintContext,
) -> tuple[ModuleInfo, ast.Assign] | None:
    """The module and assignment defining ``SALT_SOURCE_PACKAGES``."""
    for module in ctx.modules:
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == SALT_VARIABLE
                for t in node.targets
            ):
                return module, node
    return None


def _parse_salt_specs(node: ast.Assign) -> list[str] | None:
    """The string entries of the salt tuple, or None if not a literal."""
    value = node.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    specs: list[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        specs.append(element.value)
    return specs


def _spec_covers(spec: str, root: str, module: str) -> bool:
    """Whether one salt spec covers ``module`` (a dotted name).

    A spec ending in ``.py`` names a single module by path relative to
    the package root (``"errors.py"``, ``"lint/sanitize.py"``); any
    other spec names a package and covers it with all submodules.
    """
    if spec.endswith(".py"):
        dotted = spec[: -len(".py")].replace("/", ".").replace("\\", ".")
        return module == f"{root}.{dotted}"
    prefix = f"{root}.{spec}"
    return module == prefix or module.startswith(prefix + ".")


def salt_closure_report(ctx: LintContext) -> SaltClosureReport | None:
    """Compute the closure comparison, or None when it does not apply.

    Returns None when the context has no ``SALT_SOURCE_PACKAGES``
    assignment, the engine file is not inside a package (no
    ``__init__.py`` chain — fixture fragments), or none of the entry
    points exist in the tree.
    """
    located = _find_salt_assignment(ctx)
    if located is None:
        return None
    engine_module, assignment = located
    specs = _parse_salt_specs(assignment)
    if specs is None:
        return None  # reported separately as a malformed-salt finding
    engine_name = module_name_for(engine_module.path)
    if engine_name is None:
        return None
    root = engine_name.split(".")[0]
    graph = build_import_graph(ctx)
    entries = [
        name
        for suffix in ENTRY_MODULE_SUFFIXES
        if (name := f"{root}.{suffix}") in graph.modules
    ]
    if not entries:
        return None
    reachable = graph.reachable(entries)
    uncovered = sorted(
        module
        for module in reachable
        if not any(_spec_covers(spec, root, module) for spec in specs)
    )
    return SaltClosureReport(
        entries=entries,
        salt_specs=specs,
        reachable=reachable,
        uncovered=uncovered,
    )


class SaltClosureRule(Rule):
    """Every module reachable from the simulation is inside the salt."""

    name = "salt-closure"
    description = "SALT_SOURCE_PACKAGES covers the import closure of the simulation"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        located = _find_salt_assignment(ctx)
        if located is None:
            return
        engine_module, assignment = located
        if _parse_salt_specs(assignment) is None:
            yield self.finding(
                engine_module.path,
                assignment.lineno,
                f"{SALT_VARIABLE} is not a literal tuple of strings; the "
                "salt closure cannot be verified statically",
                "keep the salt source list a plain tuple of string literals",
            )
            return
        report = salt_closure_report(ctx)
        if report is None:
            return
        for module in report.uncovered:
            yield self.finding(
                engine_module.path,
                assignment.lineno,
                f"module {module} is reachable from the simulation entry "
                f"points but not covered by {SALT_VARIABLE}; editing it "
                "would not invalidate cached results",
                "add its package (or a '<path>.py' single-module entry) "
                f"to {SALT_VARIABLE}",
            )


register_rule(SaltClosureRule.name, SaltClosureRule)
