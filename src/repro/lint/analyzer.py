"""Lint drivers: collect files, build the context, run the rules.

Two entry points:

* :func:`lint_paths` — lint an explicit set of files/directories (used by
  the per-rule tests on fixture modules, and by ``repro lint <paths>``);
* :func:`lint_tree` — lint the live :mod:`repro` package, adding the
  runtime registry-consistency checks that need the real
  :mod:`repro.policies.registry` (every registered name constructs, the
  instance's ``name`` matches its registry key, and the class is visible
  to the static pass) and the sweep-engine consistency checks (the
  simulator-version salt computes and actually covers the simulation
  core's source).
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ReproError
from .findings import Finding, Severity
from .model import LintContext, ModuleInfo, parse_module
from .rules import Rule, all_rules

# Importing the rule modules registers the built-in rules.
from . import contract as _contract  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import fastpath_audit as _fastpath_audit  # noqa: F401
from . import saltclosure as _saltclosure  # noqa: F401
from . import snapshot as _snapshot  # noqa: F401
from . import warmstate as _warmstate  # noqa: F401

#: Directories never linted (caches, build output).
_SKIP_DIRS = {"__pycache__", ".git", "build", "dist"}


def _collect_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_file():
            raise ReproError(f"not a Python file: {path}")
        else:
            raise ReproError(f"lint path does not exist: {path}")
    return files


def build_context(paths: list[str | Path]) -> tuple[LintContext, list[Finding]]:
    """Parse every file into a context; syntax errors become findings."""
    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in _collect_files(paths):
        try:
            modules.append(parse_module(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    severity=Severity.ERROR,
                    path=str(path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error; nothing else was checked",
                )
            )
    return LintContext(modules), findings


def run_rules(ctx: LintContext, rules: list[Rule] | None = None) -> list[Finding]:
    """Run ``rules`` (default: all registered) over a built context."""
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def lint_paths(
    paths: list[str | Path], rules: list[Rule] | None = None
) -> list[Finding]:
    """Lint explicit files/directories; returns sorted findings."""
    ctx, findings = build_context(paths)
    return sorted(
        set(findings + run_rules(ctx, rules)),
        key=lambda f: (f.path, f.line, f.rule),
    )


def package_root() -> Path:
    """The installed :mod:`repro` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def _registry_findings(ctx: LintContext) -> list[Finding]:
    """Cross-check the live policy registry against the static view."""
    from ..policies.base import ReplacementPolicy
    from ..policies.registry import available_policies, make_policy

    registry_path = str(package_root() / "policies" / "registry.py")
    findings: list[Finding] = []
    static_names = {cls.name for cls in ctx.policy_classes(concrete_only=False)}
    for name in available_policies():
        try:
            instance = make_policy(name)
        except Exception as exc:  # a registered factory must construct
            findings.append(
                Finding(
                    rule="registry-consistency",
                    severity=Severity.ERROR,
                    path=registry_path,
                    line=1,
                    message=f"registered policy {name!r} fails to construct: {exc}",
                    hint="the factory must build a fresh, unattached instance",
                )
            )
            continue
        if not isinstance(instance, ReplacementPolicy):
            findings.append(
                Finding(
                    rule="registry-consistency",
                    severity=Severity.ERROR,
                    path=registry_path,
                    line=1,
                    message=f"registered policy {name!r} is not a ReplacementPolicy",
                    hint="register only ReplacementPolicy subclasses",
                )
            )
            continue
        if instance.name != name:
            findings.append(
                Finding(
                    rule="registry-consistency",
                    severity=Severity.ERROR,
                    path=registry_path,
                    line=1,
                    message=(
                        f"policy registered as {name!r} reports name="
                        f"{instance.name!r}; reports and budgets key on it"
                    ),
                    hint="make the class `name` attribute match its registry key",
                )
            )
        if type(instance).__name__ not in static_names:
            findings.append(
                Finding(
                    rule="registry-consistency",
                    severity=Severity.WARNING,
                    path=registry_path,
                    line=1,
                    message=(
                        f"class {type(instance).__name__} (policy {name!r}) is "
                        "not visible to the static analyzer"
                    ),
                    hint="define policy classes statically inside repro/policies/",
                )
            )
    return findings


def _engine_findings() -> list[Finding]:
    """Sanity-check the sweep engine's cache-invalidation contract.

    The engine's on-disk cache is only sound if its simulator-version
    salt really covers the simulation core: every entry named in
    ``SALT_SOURCE_PACKAGES`` must exist in the live tree — a package
    directory for plain entries, a file for single-module ``.py``
    entries (a rename that silently drops one would freeze the salt
    while semantics change) — and the salt itself must compute.
    """
    from ..harness import engine as engine_module

    engine_path = str(package_root() / "harness" / "engine.py")
    findings: list[Finding] = []
    for package in engine_module.SALT_SOURCE_PACKAGES:
        target = package_root() / package
        exists = target.is_file() if package.endswith(".py") else target.is_dir()
        if not exists:
            findings.append(
                Finding(
                    rule="engine-salt-coverage",
                    severity=Severity.ERROR,
                    path=engine_path,
                    line=1,
                    message=(
                        f"salt source entry {package!r} does not exist; "
                        "cached results would survive core changes"
                    ),
                    hint="keep SALT_SOURCE_PACKAGES in sync with the package layout",
                )
            )
    try:
        engine_module.simulator_salt()
    except Exception as exc:
        findings.append(
            Finding(
                rule="engine-salt-coverage",
                severity=Severity.ERROR,
                path=engine_path,
                line=1,
                message=f"simulator_salt() fails to compute: {exc}",
                hint="the sweep cache cannot version itself without a salt",
            )
        )
    return findings


def lint_tree(
    root: str | Path | None = None, rules: list[Rule] | None = None
) -> list[Finding]:
    """Lint the live package tree plus the runtime registry/engine checks."""
    if root is None:
        root = package_root()
    ctx, findings = build_context([root])
    findings += run_rules(ctx, rules)
    findings += _registry_findings(ctx)
    findings += _engine_findings()
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))
