"""Per-class mutable-state inventory, inferred from the AST.

A replacement policy's *mutable state* is every ``self.<attr>``
allocated in its constructor/``initialize`` and changed from inside the
hook contract (``find_victim``/``on_hit``/``on_fill``/``on_eviction``
and the helpers they reach). That inventory is what
``snapshot_state()`` must account for — learned policies carry far more
hidden predictor state than their headline tables (samplers, per-line
metadata, history registers), and a snapshot that silently omits some of
it under-reports exactly the state whose variability the reuse-prediction
literature warns about.

Mutation is detected conservatively:

* direct assignment and augmented assignment to ``self.attr`` or any
  subscript rooted at it (``self.t[i] = ...``, ``self.t[i][j] += 1``);
* assignment through a local alias of a state row
  (``row = self.t[i]; row[j] = ...``), the idiom the saturating-counter
  rule already sees through;
* *any* method call on the attribute or a subscript of it
  (``self._sampler.observe(...)``, ``self._pchr.append(...)``,
  ``self._rng.integers(...)``) — calls may be pure, but a reuse
  predictor's "query" frequently trains as a side effect, so calls count
  as mutation and provably-pure cases belong in the lint baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import HOOK_METHODS, ClassInfo, LintContext, subscript_root_attr

#: Methods that allocate state (searched for ``self.x = ...`` targets).
INITIALIZER_METHODS = ("__init__", "initialize")


def _self_attr(node: ast.AST) -> str | None:
    """The ``x`` of a plain ``self.x`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assignment_target_attr(target: ast.expr) -> str | None:
    """The ``self.<attr>`` root of an assignment target, if any."""
    direct = _self_attr(target)
    if direct is not None:
        return direct
    if isinstance(target, ast.Subscript):
        return subscript_root_attr(target)
    return None


def assigned_attrs(fn: ast.FunctionDef) -> dict[str, int]:
    """``self.<attr>`` names directly assigned in ``fn`` -> first lineno."""
    found: dict[str, int] = {}
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None and attr not in found:
                found[attr] = target.lineno
    return found


def _alias_map(fn: ast.FunctionDef) -> dict[str, str]:
    """Local name -> ``self.<attr>`` it aliases (``row = self.t[i]``)."""
    aliases: dict[str, str] = {}
    for stmt in ast.walk(fn):
        if not isinstance(stmt, ast.Assign):
            continue
        root: str | None = None
        if isinstance(stmt.value, ast.Subscript):
            root = subscript_root_attr(stmt.value)
        else:
            root = _self_attr(stmt.value)
        if root is None:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                aliases[target.id] = root
    return aliases


def mutated_attrs(fn: ast.FunctionDef) -> set[str]:
    """``self.<attr>`` names ``fn`` mutates (see module docstring)."""
    aliases = _alias_map(fn)
    mutated: set[str] = set()

    def resolve(target: ast.expr) -> str | None:
        attr = _assignment_target_attr(target)
        if attr is not None:
            return attr
        # A store *through* a local alias (``row[...] = ...``) mutates the
        # aliased state; re-binding the bare alias name does not.
        if isinstance(target, ast.Subscript):
            node: ast.AST = target
            while isinstance(node, ast.Subscript):
                node = node.value
            if isinstance(node, ast.Name):
                return aliases.get(node.id)
        return None

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = resolve(target)
                if attr is not None:
                    mutated.add(attr)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = resolve(node.target)
            if attr is not None:
                mutated.add(attr)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # A method call on state (or a row of it) counts as mutation.
            receiver: ast.AST = node.func.value
            while isinstance(receiver, ast.Subscript):
                receiver = receiver.value
            attr = _self_attr(receiver)
            if attr is not None:
                mutated.add(attr)
            elif isinstance(receiver, ast.Name) and receiver.id in aliases:
                mutated.add(aliases[receiver.id])
    return mutated


def referenced_attrs(fn: ast.FunctionDef) -> set[str]:
    """Every ``self.<attr>`` name read or written anywhere in ``fn``."""
    return {
        attr
        for node in ast.walk(fn)
        if (attr := _self_attr(node)) is not None
    }


@dataclass
class StateInventory:
    """The mutable-state picture of one (resolved) policy class."""

    #: attr -> lineno of its allocation in ``__init__``/``initialize``.
    allocated: dict[str, int] = field(default_factory=dict)
    #: attr -> hook names whose reachable code mutates it.
    mutated_by: dict[str, set[str]] = field(default_factory=dict)

    @property
    def mutable(self) -> dict[str, int]:
        """Allocated attrs that some hook mutates -> allocation lineno."""
        return {
            attr: line
            for attr, line in self.allocated.items()
            if attr in self.mutated_by
        }


def _property_methods(ctx: LintContext, cls: ClassInfo) -> dict[str, ast.FunctionDef]:
    """Property-decorated methods visible on ``cls`` (MRO-resolved)."""
    props: dict[str, ast.FunctionDef] = {}
    for owner_name in [cls.name, *ctx.mro_names(cls)]:
        owner = ctx.class_by_name.get(owner_name)
        if owner is None:
            continue
        for name, fn in owner.methods.items():
            if name in props:
                continue
            for deco in fn.decorator_list:
                if isinstance(deco, ast.Name) and deco.id == "property":
                    props[name] = fn
                    break
    return props


def _is_super_call_attr(node: ast.Attribute) -> bool:
    """Whether ``node`` is the ``.m`` of a ``super().m(...)`` access."""
    return (
        isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Name)
        and node.value.func.id == "super"
        and not node.value.args
    )


def _resolve_super_method(
    ctx: LintContext, owner: ClassInfo, name: str
) -> tuple[ClassInfo, ast.FunctionDef] | None:
    """``super().name`` as seen from a method defined on ``owner``."""
    for base_name in ctx.mro_names(owner):
        base = ctx.class_by_name.get(base_name)
        if base is None:
            continue
        fn = base.methods.get(name)
        if fn is not None:
            return base, fn
    return None


def _closure_attrs(
    ctx: LintContext,
    cls: ClassInfo,
    entry_owner: ClassInfo,
    entry: ast.FunctionDef,
    collect: "ast.FunctionDef -> set[str]" = referenced_attrs,  # type: ignore[valid-type]
) -> set[str]:
    """Attrs collected over ``entry`` plus reachable helpers/properties.

    Reachability covers ``self.m()`` calls (dispatched on the instance
    class ``cls``), ``super().m()`` chains (dispatched past the defining
    class — the LIP/BIP snapshot idiom), and reads of ``self.p`` where
    ``p`` is a property — a snapshot that reports ``self.optgen_hit_rate``
    covers the sampler that property consults.
    """
    props = _property_methods(ctx, cls)
    seen_fns: set[int] = set()
    attrs: set[str] = set()
    frontier: list[tuple[ClassInfo, ast.FunctionDef]] = [(entry_owner, entry)]
    while frontier:
        owner, fn = frontier.pop()
        if id(fn) in seen_fns:
            continue
        seen_fns.add(id(fn))
        attrs |= collect(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                target = node.func
                if isinstance(target.value, ast.Name) and target.value.id == "self":
                    resolved = ctx.resolve_method(cls, target.attr)
                    if resolved is not None:
                        frontier.append(resolved)
                elif _is_super_call_attr(target):
                    resolved = _resolve_super_method(ctx, owner, target.attr)
                    if resolved is not None:
                        frontier.append(resolved)
        for name in referenced_attrs(fn):
            if name in props:
                frontier.append((cls, props[name]))
    return attrs


def state_inventory(ctx: LintContext, cls: ClassInfo) -> StateInventory:
    """Infer ``cls``'s mutable-state inventory (MRO-resolved)."""
    inventory = StateInventory()
    for initializer in INITIALIZER_METHODS:
        resolved = ctx.resolve_method(cls, initializer)
        if resolved is None:
            continue
        owner, fn = resolved
        # Walk the full super() chain: subclasses allocate on top of bases.
        for owner_name in [cls.name, *ctx.mro_names(cls)]:
            owner_cls = ctx.class_by_name.get(owner_name)
            if owner_cls is None:
                continue
            init_fn = owner_cls.methods.get(initializer)
            if init_fn is None:
                continue
            for attr, line in assigned_attrs(init_fn).items():
                inventory.allocated.setdefault(attr, line)
    for hook in HOOK_METHODS:
        resolved = ctx.resolve_method(cls, hook)
        if resolved is None:
            continue
        owner, fn = resolved
        hook_mutated = _closure_attrs(ctx, cls, owner, fn, collect=mutated_attrs)
        for attr in hook_mutated:
            inventory.mutated_by.setdefault(attr, set()).add(hook)
    return inventory


def snapshot_covered_attrs(ctx: LintContext, cls: ClassInfo) -> set[str]:
    """Attrs ``snapshot_state()`` (and what it reaches) references."""
    resolved = ctx.resolve_method(cls, "snapshot_state")
    if resolved is None:
        return set()
    owner, fn = resolved
    return _closure_attrs(ctx, cls, owner, fn, collect=referenced_attrs)
