"""Warm-state-protocol pass: every registered policy handles sampling.

The sampling executor's learned-policy synthesis strategies depend on
the warm-state checkpoint protocol on
:class:`repro.policies.base.ReplacementPolicy`: ``checkpoint_tables``
captures a policy's cross-line predictor state and ``restore_tables``
reinstates it. A registered policy that silently inherits the base
defaults (``None`` / ``NotImplementedError``) would make sampled sweeps
fail at runtime under the ``"checkpoint"`` strategy — or worse, would
look supported while its tables quietly start cold.

This pass enforces the registry's contract statically: every policy
class registered in :mod:`repro.policies.registry` must either override
*both* protocol methods or be named in the registry's
``WARM_STATE_EXCLUDED`` tuple (policies whose only cross-line state the
recency synthesis already rebuilds). Overriding exactly one method is
always an error, and exclusions that are stale (the class now
implements the protocol) or unknown (no such registered class) are
warnings so the list cannot rot.

Like the salt-closure pass, everything is read from the parsed tree —
the registry is never imported — so the rule works identically on the
live package and on fixture trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .findings import Finding, Severity
from .model import POLICY_BASE, ClassInfo, LintContext, ModuleInfo
from .rules import Rule, register_rule

#: The exclusion-list variable looked up in the registry's AST.
EXCLUDED_VARIABLE = "WARM_STATE_EXCLUDED"

#: The two methods forming the warm-state checkpoint protocol.
PROTOCOL_METHODS = ("checkpoint_tables", "restore_tables")


@dataclass
class WarmStateReport:
    """What the pass computed, for tests and diagnostics."""

    #: Class names registered with ``register_policy`` (static view).
    registered: list[str] = field(default_factory=list)
    #: The raw WARM_STATE_EXCLUDED entries parsed from the registry.
    excluded: list[str] = field(default_factory=list)
    #: Registered classes overriding both protocol methods.
    implemented: list[str] = field(default_factory=list)


def _find_excluded_assignment(
    ctx: LintContext,
) -> tuple[ModuleInfo, ast.Assign] | None:
    """The module and assignment defining ``WARM_STATE_EXCLUDED``."""
    for module in ctx.modules:
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == EXCLUDED_VARIABLE
                for t in node.targets
            ):
                return module, node
    return None


def _parse_excluded(node: ast.Assign) -> list[str] | None:
    """The string entries of the exclusion tuple, or None if not literal."""
    value = node.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    names: list[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _registered_class_names(module: ModuleInfo) -> list[str]:
    """Class names passed to ``register_policy`` in the registry module.

    Recognizes both the table-driven idiom — a ``for`` loop over a
    literal list of ``(name, Factory)`` tuples — and direct
    ``register_policy("name", Factory)`` calls.
    """
    names: list[str] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.For) and isinstance(node.iter, (ast.List, ast.Tuple)):
            for element in node.iter.elts:
                if (
                    isinstance(element, ast.Tuple)
                    and len(element.elts) == 2
                    and isinstance(element.elts[1], ast.Name)
                ):
                    names.append(element.elts[1].id)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register_policy"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and isinstance(node.args[1], ast.Name)
        ):
            names.append(node.args[1].id)
    return names


def _overridden_methods(ctx: LintContext, cls: ClassInfo) -> list[str]:
    """Protocol methods ``cls`` overrides (owner is not the base class)."""
    overridden: list[str] = []
    for method in PROTOCOL_METHODS:
        resolved = ctx.resolve_method(cls, method)
        if resolved is not None and resolved[0].name != POLICY_BASE:
            overridden.append(method)
    return overridden


def warm_state_report(ctx: LintContext) -> WarmStateReport | None:
    """Compute the protocol-coverage view, or None when it does not apply."""
    located = _find_excluded_assignment(ctx)
    if located is None:
        return None
    module, assignment = located
    excluded = _parse_excluded(assignment)
    if excluded is None:
        return None  # reported separately as a malformed-list finding
    registered = _registered_class_names(module)
    implemented = [
        name
        for name in registered
        if (cls := ctx.class_by_name.get(name)) is not None
        and len(_overridden_methods(ctx, cls)) == len(PROTOCOL_METHODS)
    ]
    return WarmStateReport(
        registered=registered, excluded=excluded, implemented=implemented
    )


class WarmStateProtocolRule(Rule):
    """Registered policies implement the warm-state protocol or opt out."""

    name = "warm-state-protocol"
    description = (
        "every registered policy overrides checkpoint_tables/restore_tables "
        "or is named in WARM_STATE_EXCLUDED"
    )
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        located = _find_excluded_assignment(ctx)
        if located is None:
            return
        module, assignment = located
        excluded = _parse_excluded(assignment)
        if excluded is None:
            yield self.finding(
                module.path,
                assignment.lineno,
                f"{EXCLUDED_VARIABLE} is not a literal tuple of strings; "
                "warm-state protocol coverage cannot be verified statically",
                "keep the exclusion list a plain tuple of string literals",
            )
            return
        registered = _registered_class_names(module)
        seen_excluded: set[str] = set()
        for class_name in registered:
            cls = ctx.class_by_name.get(class_name)
            if cls is None:
                continue  # registry-consistency reports invisible classes
            overridden = _overridden_methods(ctx, cls)
            is_excluded = class_name in excluded
            if is_excluded:
                seen_excluded.add(class_name)
            if len(overridden) == 1:
                missing = next(
                    m for m in PROTOCOL_METHODS if m not in overridden
                )
                yield self.finding(
                    cls.module.path,
                    cls.node.lineno,
                    f"policy class {class_name} overrides {overridden[0]} "
                    f"but not {missing}; a half-implemented warm-state "
                    "protocol restores tables it never captured (or "
                    "captures tables it cannot restore)",
                    f"override both of {', '.join(PROTOCOL_METHODS)}",
                )
            elif not overridden and not is_excluded:
                yield self.finding(
                    cls.module.path,
                    cls.node.lineno,
                    f"registered policy class {class_name} neither "
                    "implements the warm-state checkpoint protocol "
                    f"({' and '.join(PROTOCOL_METHODS)}) nor appears in "
                    f"{EXCLUDED_VARIABLE}; sampled sweeps would fail (or "
                    "silently run cold) under the checkpoint strategy",
                    "implement the protocol, or add the class to "
                    f"{EXCLUDED_VARIABLE} if recency synthesis already "
                    "rebuilds all its cross-line state",
                )
            elif len(overridden) == len(PROTOCOL_METHODS) and is_excluded:
                yield Finding(
                    rule=self.name,
                    severity=Severity.WARNING,
                    path=module.path,
                    line=assignment.lineno,
                    message=(
                        f"{EXCLUDED_VARIABLE} entry {class_name!r} is stale: "
                        "the class implements the warm-state protocol"
                    ),
                    hint="drop the entry so the exclusion list stays honest",
                )
        for name in excluded:
            if name not in registered:
                yield Finding(
                    rule=self.name,
                    severity=Severity.WARNING,
                    path=module.path,
                    line=assignment.lineno,
                    message=(
                        f"{EXCLUDED_VARIABLE} entry {name!r} does not name "
                        "a registered policy class"
                    ),
                    hint="remove the entry or fix its spelling",
                )


register_rule(WarmStateProtocolRule.name, WarmStateProtocolRule)
