"""Whole-program import graph over a parsed :class:`LintContext`.

The salt-closure pass needs to know which modules are *semantically
reachable* from the simulation entry points: if editing a module's
source could change what a simulation computes, that module must be
covered by the sweep engine's simulator-version salt
(:data:`repro.harness.engine.SALT_SOURCE_PACKAGES`), or cached results
silently survive the change.

The graph is built statically from the AST:

* module names are derived from file paths by walking up through
  ``__init__.py``-bearing directories, so the model works on the
  installed ``repro`` package and on fixture trees alike;
* edges follow ``import a.b``, ``from a.b import c`` (resolving ``c`` to
  the submodule ``a.b.c`` when one exists in the graph, else to the
  package ``a.b``), and relative forms at any nesting depth — including
  imports inside functions, which are runtime dependencies even though
  they are deferred;
* imports guarded by ``if TYPE_CHECKING:`` are *excluded*: they never
  execute, so they cannot carry semantics.

Package ``__init__`` execution chains are deliberately not modelled:
importing ``a.b.c`` executes ``a/__init__.py``, but a re-exporting
``__init__`` cannot change what ``a.b.c`` computes, and following the
chain would drag entire packages into the closure for one submodule.
Modules outside the analyzed tree (numpy, stdlib) are opaque.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .model import LintContext, ModuleInfo


def module_name_for(path: str | Path) -> str | None:
    """Dotted module name of ``path``, walking up ``__init__.py`` dirs.

    Returns ``None`` for files that are not part of any package (no
    ``__init__.py`` next to them).
    """
    p = Path(path).resolve()
    if p.name == "__init__.py":
        parts: list[str] = []
        package_dir = p.parent
    else:
        parts = [p.stem]
        package_dir = p.parent
    if not (package_dir / "__init__.py").is_file():
        return None
    while (package_dir / "__init__.py").is_file():
        parts.insert(0, package_dir.name)
        package_dir = package_dir.parent
    return ".".join(parts)


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _runtime_import_nodes(tree: ast.Module) -> list[ast.Import | ast.ImportFrom]:
    """Every import statement that executes at runtime.

    Walks the whole module (function bodies included — deferred imports
    still run) but prunes ``if TYPE_CHECKING:`` bodies.
    """
    found: list[ast.Import | ast.ImportFrom] = []
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            stack.extend(node.orelse)  # the else branch does run
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            found.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return found


@dataclass
class ImportGraph:
    """Runtime import edges between the context's modules."""

    #: module name -> ModuleInfo for every module in the analyzed tree.
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: module name -> set of in-tree module names it imports at runtime.
    edges: dict[str, set[str]] = field(default_factory=dict)

    def reachable(self, entries: list[str]) -> set[str]:
        """Every in-tree module transitively imported from ``entries``.

        Entry names not present in the graph are ignored (a fixture tree
        need not contain the real entry points).
        """
        seen: set[str] = set()
        frontier = [e for e in entries if e in self.modules]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self.edges.get(name, ()))
        return seen


def _resolve_from_import(
    node: ast.ImportFrom, importer: str, known: set[str]
) -> list[str]:
    """Target module names of one ``from X import a, b`` statement."""
    if node.level:  # relative import: resolve against the importer
        package_parts = importer.split(".")[: -node.level]
        if not package_parts:
            return []
        base = ".".join(package_parts)
        if node.module:
            base = f"{base}.{node.module}"
    else:
        if node.module is None:
            return []
        base = node.module
    targets: list[str] = []
    for alias in node.names:
        submodule = f"{base}.{alias.name}"
        if submodule in known:
            # ``from pkg import mod`` — the name is itself a module.
            targets.append(submodule)
        elif base in known:
            # ``from pkg import attr`` — depends on pkg's __init__.
            targets.append(base)
    return targets


def build_import_graph(ctx: LintContext) -> ImportGraph:
    """The runtime import graph over every module in ``ctx``."""
    graph = ImportGraph()
    for module in ctx.modules:
        name = module_name_for(module.path)
        if name is not None:
            graph.modules[name] = module
    known = set(graph.modules)
    for name, module in graph.modules.items():
        deps: set[str] = set()
        for node in _runtime_import_nodes(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    # ``import a.b.c`` binds ``a`` but executes a.b.c;
                    # record the deepest in-tree prefix.
                    parts = alias.name.split(".")
                    for depth in range(len(parts), 0, -1):
                        candidate = ".".join(parts[:depth])
                        if candidate in known:
                            deps.add(candidate)
                            break
            else:
                deps.update(_resolve_from_import(node, name, known))
        deps.discard(name)
        graph.edges[name] = deps
    return graph
