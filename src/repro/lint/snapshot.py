"""Snapshot-completeness pass: every mutable policy attr is reported.

``snapshot_state()`` is the telemetry subsystem's window into a policy's
internal predictor state (PSEL duels, RRPV histograms, sampler hit
rates). The interval profiles are only trustworthy if the snapshot
actually covers the state that evolves during simulation: a policy that
grows a new table but not a new snapshot field silently drops that
dimension from every published profile.

The pass infers each concrete policy's mutable-state inventory from the
AST (:mod:`repro.lint.inventory`): attrs allocated in
``__init__``/``initialize`` and mutated from hook-reachable code. It
then requires ``snapshot_state()`` — including helpers and properties it
reaches — to reference every one of them. Referencing is enough:
snapshots report *aggregates* (a histogram over ``self._rrpv``, not the
raw array), so the check is "does the snapshot look at this state at
all", not "does it dump it".

Findings are warnings: an incomplete snapshot under-reports telemetry
but does not corrupt simulation results. Genuinely redundant state
(an attr fully derivable from another that *is* covered) belongs in the
lint baseline with a reason.
"""

from __future__ import annotations

from typing import Iterator

from .findings import Finding, Severity
from .inventory import snapshot_covered_attrs, state_inventory
from .model import LintContext
from .rules import Rule, register_rule


class SnapshotCompletenessRule(Rule):
    """Concrete policies snapshot all hook-mutated state."""

    name = "snapshot-completeness"
    description = "snapshot_state() covers every attr the hooks mutate"
    severity = Severity.WARNING

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ctx.policy_classes():
            inventory = state_inventory(ctx, cls)
            mutable = inventory.mutable
            if not mutable:
                continue
            resolved = ctx.resolve_method(cls, "snapshot_state")
            covered = snapshot_covered_attrs(ctx, cls)
            missing = sorted(set(mutable) - covered)
            if not missing:
                continue
            if resolved is not None and resolved[0] is cls:
                anchor = resolved[1].lineno
            else:
                anchor = cls.node.lineno
            described = ", ".join(
                f"{attr} (mutated by {'/'.join(sorted(inventory.mutated_by[attr]))})"
                for attr in missing
            )
            yield self.finding(
                cls.module.path,
                anchor,
                f"{cls.name}.snapshot_state() does not cover mutable state: "
                f"{described}",
                "report an aggregate of each attr in snapshot_state(), or "
                "baseline it with a reason if it is derivable from covered state",
            )


register_rule(SnapshotCompletenessRule.name, SnapshotCompletenessRule)
