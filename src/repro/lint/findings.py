"""Structured lint findings.

Every rule emits :class:`Finding` records rather than printing: the CLI,
``make lint`` and the test-suite all consume the same objects, so a rule
written once is automatically exercised everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is by increasing badness."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in reports
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``hint`` is a one-line suggested fix — every rule must provide one, so
    a finding is actionable without reading the rule's implementation.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    hint: str

    def render(self) -> str:
        """The canonical ``file:line: severity [rule] message`` form."""
        return (
            f"{self.path}:{self.line}: {self.severity} [{self.rule}] "
            f"{self.message}\n    hint: {self.hint}"
        )


def worst_severity(findings: list[Finding]) -> Severity | None:
    """The highest severity present, or None for an empty list."""
    if not findings:
        return None
    return max(f.severity for f in findings)
