"""Structured lint findings.

Every rule emits :class:`Finding` records rather than printing: the CLI,
``make lint`` and the test-suite all consume the same objects, so a rule
written once is automatically exercised everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is by increasing badness.

    ``INFO`` is an alias of ``NOTE`` (docs and the CLI say "info"; the
    enum predates the name). Exit-code policy: only ``ERROR`` findings
    fail a lint run; ``--strict`` promotes ``WARNING`` to failing too;
    ``NOTE``/``INFO`` findings are always informational.
    """

    NOTE = 0
    INFO = 0  # alias
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in reports
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        """The severity named ``name`` ("error"/"warning"/"note"/"info")."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``hint`` is a one-line suggested fix — every rule must provide one, so
    a finding is actionable without reading the rule's implementation.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    hint: str

    def render(self) -> str:
        """The canonical ``file:line: severity [rule] message`` form."""
        return (
            f"{self.path}:{self.line}: {self.severity} [{self.rule}] "
            f"{self.message}\n    hint: {self.hint}"
        )

    def to_json_dict(self) -> dict[str, object]:
        """A JSON-serializable document of this finding."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_json_dict(cls, doc: dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_json_dict` output."""
        return cls(
            rule=str(doc["rule"]),
            severity=Severity.parse(str(doc["severity"])),
            path=str(doc["path"]),
            line=int(doc["line"]),  # type: ignore[arg-type]
            message=str(doc["message"]),
            hint=str(doc["hint"]),
        )


def worst_severity(findings: list[Finding]) -> Severity | None:
    """The highest severity present, or None for an empty list."""
    if not findings:
        return None
    return max(f.severity for f in findings)
