"""The analyzer's view of source code: parsed modules, classes, helpers.

The static rules in :mod:`repro.lint.contract` operate on a
:class:`LintContext` — every file parsed once, classes indexed by name,
inheritance resolved *by simple name* within the context (policies form a
closed class hierarchy inside one package, so nominal resolution is
exact there; unknown bases are treated as external and opaque).

The helpers here encode the conventions the contract rules rely on:

* hook methods receive the access as a parameter named ``access``
  (:class:`~repro.policies.base.PolicyAccess`), so ``access.pc`` /
  ``access.is_writeback`` are recognizable attribute reads;
* PC-derived values are tracked by a single-pass, per-function taint
  walk seeded from ``access.pc`` and parameters named ``pc``;
* hot paths are marked with a ``# hot`` comment on (or directly above)
  the ``def`` line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: The abstract base every replacement policy derives from.
POLICY_BASE = "ReplacementPolicy"

#: The ChampSim-style hook methods of the policy contract.
HOOK_METHODS = ("find_victim", "on_hit", "on_fill", "on_eviction")

#: Hooks a concrete policy must provide (on_eviction has a default).
REQUIRED_HOOKS = ("find_victim", "on_hit", "on_fill")


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class ClassInfo:
    """One class definition plus the bits rules care about."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    base_names: list[str]
    methods: dict[str, ast.FunctionDef]
    class_attrs: dict[str, ast.expr]

    @property
    def is_abstract(self) -> bool:
        """Whether the class declares any abstract method of its own."""
        return any(
            _has_abstract_decorator(fn) for fn in self.methods.values()
        )


def _base_name(node: ast.expr) -> str | None:
    """The simple name of a base-class expression (``base.Foo`` -> Foo)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _has_abstract_decorator(fn: ast.FunctionDef) -> bool:
    for deco in fn.decorator_list:
        name = _base_name(deco)
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _collect_class(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    methods: dict[str, ast.FunctionDef] = {}
    class_attrs: dict[str, ast.expr] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef):
            methods[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    class_attrs[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                class_attrs[stmt.target.id] = stmt.value
    bases = [b for b in (_base_name(base) for base in node.bases) if b]
    return ClassInfo(
        name=node.name,
        module=module,
        node=node,
        base_names=bases,
        methods=methods,
        class_attrs=class_attrs,
    )


class LintContext:
    """Everything the rules see: parsed modules and a class index."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self.classes: list[ClassInfo] = []
        self.class_by_name: dict[str, ClassInfo] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = _collect_class(node, module)
                    self.classes.append(info)
                    self.class_by_name[info.name] = info

    # -- inheritance (nominal, within the context) ----------------------------

    def mro_names(self, cls: ClassInfo) -> list[str]:
        """Base-class names reachable from ``cls``, nearest first."""
        seen: list[str] = []
        stack = list(cls.base_names)
        while stack:
            base = stack.pop(0)
            if base in seen:
                continue
            seen.append(base)
            parent = self.class_by_name.get(base)
            if parent is not None:
                stack.extend(parent.base_names)
        return seen

    def is_policy_class(self, cls: ClassInfo) -> bool:
        """Whether ``cls`` (transitively) derives from ReplacementPolicy."""
        return POLICY_BASE in self.mro_names(cls)

    def policy_classes(self, concrete_only: bool = True) -> list[ClassInfo]:
        """All policy classes in the context (optionally concrete only)."""
        found = [c for c in self.classes if self.is_policy_class(c)]
        if concrete_only:
            found = [c for c in found if not c.is_abstract]
        return found

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> tuple[ClassInfo, ast.FunctionDef] | None:
        """The defining (class, def) of ``name`` for ``cls``, or None.

        Abstract defs do not count as implementations.
        """
        for owner_name in [cls.name, *self.mro_names(cls)]:
            owner = self.class_by_name.get(owner_name)
            if owner is None:
                continue
            fn = owner.methods.get(name)
            if fn is not None:
                if _has_abstract_decorator(fn):
                    return None
                return owner, fn
        return None

    def resolve_class_attr(self, cls: ClassInfo, name: str) -> ast.expr | None:
        """A class-level attribute assignment, following bases."""
        for owner_name in [cls.name, *self.mro_names(cls)]:
            owner = self.class_by_name.get(owner_name)
            if owner is not None and name in owner.class_attrs:
                return owner.class_attrs[name]
        return None

    def reachable_methods(
        self, cls: ClassInfo, entry: ast.FunctionDef
    ) -> list[tuple[ClassInfo, ast.FunctionDef]]:
        """``entry`` plus every same-class helper it (transitively) calls.

        Calls are recognized as ``self.<name>(...)`` and resolved through
        the class's bases; external calls are opaque.
        """
        reached: dict[str, tuple[ClassInfo, ast.FunctionDef]] = {
            entry.name: (cls, entry)
        }
        frontier = [entry]
        while frontier:
            fn = frontier.pop()
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                target = node.func
                if not (isinstance(target.value, ast.Name) and target.value.id == "self"):
                    continue
                if target.attr in reached:
                    continue
                resolved = self.resolve_method(cls, target.attr)
                if resolved is not None:
                    reached[target.attr] = resolved
                    frontier.append(resolved[1])
        return list(reached.values())


# -- expression predicates -----------------------------------------------------


def is_access_attr(node: ast.AST, attr: str) -> bool:
    """Whether ``node`` is the attribute read ``access.<attr>``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "access"
    )


def access_pc_reads(fn: ast.FunctionDef) -> list[ast.Attribute]:
    """Every ``access.pc`` read inside one function."""
    return [
        node
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute) and is_access_attr(node, "pc")
    ]


def has_writeback_guard(fn: ast.FunctionDef) -> bool:
    """Whether the function inspects ``access.is_writeback`` / ``access.kind``."""
    return any(
        is_access_attr(node, "is_writeback") or is_access_attr(node, "kind")
        for node in ast.walk(fn)
    )


def subscript_root_attr(node: ast.Subscript) -> str | None:
    """The ``self.<name>`` at the root of a (possibly nested) subscript."""
    value = node.value
    while isinstance(value, ast.Subscript):
        value = value.value
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return value.attr
    return None


def pc_tainted_names(fn: ast.FunctionDef) -> set[str]:
    """Local names holding PC-derived values, by one forward pass.

    Seeds: parameters named ``pc`` and any expression reading
    ``access.pc``; taint flows through assignments whose right-hand side
    mentions a tainted name (calls included: hashing a PC yields a
    PC-derived index).
    """
    tainted: set[str] = {
        arg.arg for arg in fn.args.args if arg.arg == "pc"
    }

    def expr_tainted(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
            if is_access_attr(sub, "pc"):
                return True
        return False

    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and expr_tainted(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
        elif isinstance(stmt, ast.AugAssign) and expr_tainted(stmt.value):
            if isinstance(stmt.target, ast.Name):
                tainted.add(stmt.target.id)
    return tainted


def pc_indexed_tables(cls: ClassInfo) -> set[str]:
    """Names of ``self.<table>`` attributes indexed by PC-derived values.

    A table subscripted anywhere in the class by an expression tainted by
    ``access.pc`` (or a parameter named ``pc``) is a *PC table* — e.g.
    SHiP's ``_shct`` or Hawkeye's ``_counters``. Policies holding such
    tables must decide explicitly what PC-less writebacks do to them.
    """
    tables: set[str] = set()
    for fn in cls.methods.values():
        tainted = pc_tainted_names(fn)
        if not tainted and not access_pc_reads(fn):
            continue

        def expr_tainted(node: ast.AST, tainted_names: set[str] = tainted) -> bool:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in tainted_names:
                    return True
                if is_access_attr(sub, "pc"):
                    return True
            return False

        for node in ast.walk(fn):
            if isinstance(node, ast.Subscript) and expr_tainted(node.slice):
                root = subscript_root_attr(node)
                if root is not None:
                    tables.add(root)
    return tables


def references_attr(fn: ast.FunctionDef, attrs: set[str]) -> bool:
    """Whether the function touches any ``self.<attr>`` in ``attrs``."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in attrs
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def build_parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    """child -> parent links for ancestor walks."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def local_table_aliases(fn: ast.FunctionDef) -> set[str]:
    """Local names aliasing mutable per-set state rows.

    Recognizes the idiom ``rrpv = self._rrpv[set_index]`` — mutating the
    alias mutates policy state, so the saturating-counter rule must see
    through it.
    """
    aliases: set[str] = set()
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Subscript):
            if subscript_root_attr(stmt.value) is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
    return aliases


def hot_functions(module: ModuleInfo) -> list[ast.FunctionDef]:
    """Functions marked with a ``# hot`` comment on/above their def line."""
    marked: list[ast.FunctionDef] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef):
            on_def = "# hot" in module.line(node.lineno)
            above = "# hot" in module.line(node.lineno - 1).strip()
            if on_def or above:
                marked.append(node)
    return marked


def parse_module(path: str | Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    p = Path(path)
    source = p.read_text()
    return ModuleInfo(path=str(p), source=source, tree=ast.parse(source, filename=str(p)))
