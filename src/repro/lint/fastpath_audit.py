"""Fastpath-eligibility audit: the fast engine's guards match reality.

``repro.mem.fastpath`` is a bit-identity rewrite of the reference hot
loop for a restricted machine shape, and ``fastpath_eligible()`` is the
*only* thing standing between an unmodeled feature and silently wrong
numbers served at 2-3x speed. The guards encode assumptions about the
rest of the codebase; this pass re-derives those assumptions from the
AST and fails when they drift:

The same contract binds the batched multi-cell engine
(``repro.mem.batch`` / ``batch_eligible()``): it shares one decoded
access stream across every policy of a trace, so an unguarded feature
would corrupt a whole sweep row at once. Both engines are audited with
identical obligations.

1. **Feature knobs.** Every optional ``CacheHierarchy.__init__``
   parameter is a machine feature the fast path may not model; the
   eligibility check must inspect each one. Adding, say, an ``l3_victim_cache``
   parameter without touching ``fastpath_eligible`` is a one-line change
   that would corrupt every sweep that sets it.
2. **Exact-type pinning.** Upper-level policies must be pinned with
   ``type(...) is`` — an ``isinstance`` check would admit an LRU
   *subclass* whose extra state the flat checkout silently drops.
3. **Checkout completeness.** Every mutable attr of each pinned policy
   class (per :mod:`repro.lint.inventory`) must be referenced somewhere
   in the fastpath module: state the checkout/restore never mentions is
   state that diverges from the reference engine.
4. **Trace-kind bound.** The eligibility bound on ``trace.kinds`` must
   agree with the :class:`AccessKind` numbering: the members at or below
   the bound must be exactly the kinds the fast loop dispatches
   (LOAD/STORE/IFETCH). Renumbering the enum — inserting a kind below
   the bound — would route unmodeled records through the L1 dispatch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding, Severity
from .inventory import assigned_attrs, state_inventory
from .model import ClassInfo, LintContext, ModuleInfo
from .rules import Rule, register_rule

#: The AccessKind members the fast loop's dispatch actually models
#: (``kind <= bound`` routes to L1D for LOAD/STORE, L1I for IFETCH).
MODELED_KINDS = frozenset({"LOAD", "STORE", "IFETCH"})

#: The hierarchy class whose optional features gate eligibility.
HIERARCHY_CLASS = "CacheHierarchy"

#: The eligibility predicate's required name (single-run fast engine).
ELIGIBILITY_FUNCTION = "fastpath_eligible"

#: Audited engines: (module filename, required eligibility predicate).
#: Every entry carries the full guard-obligation set below.
AUDITED_ENGINES = (
    ("fastpath.py", ELIGIBILITY_FUNCTION),
    ("batch.py", "batch_eligible"),
)


def _find_module(ctx: LintContext, filename: str) -> ModuleInfo | None:
    for module in ctx.modules:
        parts = module.path.replace("\\", "/").split("/")
        if parts and parts[-1] == filename and "mem" in parts:
            return module
    return None


def _top_level_function(
    module: ModuleInfo, name: str
) -> ast.FunctionDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _attr_reads_on(fn: ast.FunctionDef, param: str) -> set[str]:
    """Attribute names read directly off parameter ``param`` in ``fn``."""
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
    }


def _optional_init_params(cls: ClassInfo) -> list[str]:
    """Defaulted ``__init__`` parameters stored as same-named attrs."""
    init = cls.methods.get("__init__")
    if init is None:
        return []
    stored = set(assigned_attrs(init))
    names: list[str] = []
    args = init.args
    positional = args.posonlyargs + args.args
    defaulted = positional[len(positional) - len(args.defaults):]
    for arg in defaulted:
        if arg.arg in stored:
            names.append(arg.arg)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and arg.arg in stored:
            names.append(arg.arg)
    return names


def _type_pinned_classes(root: ast.AST) -> set[str]:
    """Class names compared via ``type(x) is/is not Name`` under ``root``."""
    pinned: set[str] = set()
    for node in ast.walk(root):
        if not isinstance(node, ast.Compare):
            continue
        if not all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        has_type_call = any(
            isinstance(o, ast.Call)
            and isinstance(o.func, ast.Name)
            and o.func.id == "type"
            for o in operands
        )
        if not has_type_call:
            continue
        for operand in operands:
            if isinstance(operand, ast.Name):
                pinned.add(operand.id)
            elif isinstance(operand, ast.Attribute):
                pinned.add(operand.attr)
    return pinned


def _mentions_kinds(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "kinds"
        for sub in ast.walk(node)
    )


def _kinds_bound(fn: ast.FunctionDef) -> int | None:
    """The inclusive upper bound on modeled trace kinds, if guarded.

    Recognizes ``<expr over kinds> > N`` / ``>= N`` and the mirrored
    ``N < <expr>`` / ``N <= <expr>`` forms; returns the largest kind
    value the guard lets through.
    """
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
            continue
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        if _mentions_kinds(left) and isinstance(right, ast.Constant) and isinstance(
            right.value, int
        ):
            if isinstance(op, ast.Gt):
                return right.value
            if isinstance(op, ast.GtE):
                return right.value - 1
        if _mentions_kinds(right) and isinstance(left, ast.Constant) and isinstance(
            left.value, int
        ):
            if isinstance(op, ast.Lt):
                return left.value
            if isinstance(op, ast.LtE):
                return left.value - 1
    return None


def _access_kind_values(ctx: LintContext) -> dict[str, int] | None:
    """AccessKind member name -> int value, from the parsed enum."""
    cls = ctx.class_by_name.get("AccessKind")
    if cls is None:
        return None
    values: dict[str, int] = {}
    for name, value in cls.class_attrs.items():
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            values[name] = value.value
    return values or None


class FastpathEligibilityRule(Rule):
    """The fast engine's eligibility guards cover its actual assumptions."""

    name = "fastpath-eligibility"
    description = "engine eligibility guards match hierarchy features, policy state and AccessKind"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for filename, predicate in AUDITED_ENGINES:
            module = _find_module(ctx, filename)
            if module is None:
                continue
            fn = _top_level_function(module, predicate)
            if fn is None:
                yield self.finding(
                    module.path,
                    1,
                    f"engine module {filename} defines no top-level "
                    f"{predicate}()",
                    "every optimized engine must publish an eligibility "
                    "predicate its callers consult before selecting it",
                )
                continue
            yield from self._check_hierarchy_features(ctx, module, fn)
            yield from self._check_policy_pinning(ctx, module, fn)
            yield from self._check_kind_bound(ctx, module, fn)

    # -- 1: hierarchy feature knobs -------------------------------------------

    def _check_hierarchy_features(
        self, ctx: LintContext, module: ModuleInfo, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        hierarchy_cls = ctx.class_by_name.get(HIERARCHY_CLASS)
        if hierarchy_cls is None or not fn.args.args:
            return
        hierarchy_param = fn.args.args[0].arg
        inspected = _attr_reads_on(fn, hierarchy_param)
        for feature in _optional_init_params(hierarchy_cls):
            if feature not in inspected:
                yield self.finding(
                    module.path,
                    fn.lineno,
                    f"{fn.name}() never inspects optional "
                    f"{HIERARCHY_CLASS} feature {feature!r}; a machine "
                    "configured with it would take the fast path unmodeled",
                    f"check {hierarchy_param}.{feature} and fall back to the "
                    "reference engine when it is set",
                )

    # -- 2 + 3: exact-type pinning and checkout completeness ------------------

    def _check_policy_pinning(
        self, ctx: LintContext, module: ModuleInfo, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        eligibility_pins = {
            name
            for name in _type_pinned_classes(fn)
            if (cls := ctx.class_by_name.get(name)) is not None
            and ctx.is_policy_class(cls)
        }
        if not eligibility_pins:
            yield self.finding(
                module.path,
                fn.lineno,
                f"{fn.name}() does not pin upper-level policies "
                "with an exact `type(...) is` comparison",
                "pin the checked-out policy classes exactly; isinstance() "
                "admits subclasses whose extra state the checkout drops",
            )
            return
        module_attr_reads = {
            node.attr
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Attribute)
        }
        for name in sorted(_type_pinned_classes(module.tree)):
            cls = ctx.class_by_name.get(name)
            if cls is None or not ctx.is_policy_class(cls):
                continue
            inventory = state_inventory(ctx, cls)
            for attr in sorted(inventory.mutable):
                if attr not in module_attr_reads:
                    yield self.finding(
                        module.path,
                        fn.lineno,
                        f"fast path pins policy {name} but never references "
                        f"its mutable state {attr!r}; checkout/restore would "
                        "silently drop it",
                        f"model {attr} in the flat checkout (and restore it "
                        "on checkin), or stop pinning the class",
                    )

    # -- 4: the trace-kind bound vs the AccessKind numbering ------------------

    def _check_kind_bound(
        self, ctx: LintContext, module: ModuleInfo, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        bound = _kinds_bound(fn)
        if bound is None:
            yield self.finding(
                module.path,
                fn.lineno,
                f"{fn.name}() does not bound trace.kinds; "
                "records beyond the modeled kinds would reach the fast loop",
                "compare trace.kinds.max() against the highest modeled "
                "AccessKind value",
            )
            return
        kind_values = _access_kind_values(ctx)
        if kind_values is None:
            return  # enum not in the analyzed tree: nothing to compare
        admitted = {name for name, value in kind_values.items() if value <= bound}
        if admitted != MODELED_KINDS:
            extra = sorted(admitted - MODELED_KINDS)
            lost = sorted(MODELED_KINDS - admitted)
            details: list[str] = []
            if extra:
                details.append(f"admits unmodeled kind(s) {', '.join(extra)}")
            if lost:
                details.append(f"excludes modeled kind(s) {', '.join(lost)}")
            yield self.finding(
                module.path,
                fn.lineno,
                f"eligibility bound kinds<={bound} disagrees with the "
                f"AccessKind numbering: {'; '.join(details)}",
                "keep the guard equal to the highest modeled AccessKind "
                "value (LOAD/STORE/IFETCH) when renumbering the enum",
            )


register_rule(FastpathEligibilityRule.name, FastpathEligibilityRule)
