"""Checked-in lint baseline: suppressions with owners, reasons and expiry.

A baseline lets ``repro lint --strict`` gate CI while known, accepted
findings are paid down incrementally. Every entry must carry an expiry
date so a suppression can never become permanent by accident: when the
date passes, the entry itself turns into an error-severity finding and
the gate fails until the underlying finding is fixed (or the expiry is
consciously renewed in review).

File format — one entry per line, ``|``-separated fields::

    # comments and blank lines are ignored
    <rule> | <path suffix> | <message substring> | expires=YYYY-MM-DD | <reason>

A finding is suppressed by an entry when the rule matches exactly, the
finding's path ends with the path suffix, and the message substring
occurs in the finding's message. Matching on message text (not line
numbers) keeps the baseline stable under unrelated edits.

Entries that match nothing produce a note-severity ``baseline-unused``
finding — stale suppressions are clutter, but deleting one must never
break the build on its own.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError
from .findings import Finding, Severity

#: Default baseline filename, looked up in the working directory.
DEFAULT_BASELINE_NAME = "lint-baseline.txt"


class BaselineError(ReproError):
    """The baseline file does not parse."""


@dataclass(frozen=True)
class BaselineEntry:
    """One suppression: what it matches, why, and until when."""

    rule: str
    path_suffix: str
    message_substring: str
    expires: datetime.date
    reason: str
    lineno: int  # line in the baseline file, for error reporting

    def matches(self, finding: Finding) -> bool:
        """Whether this entry suppresses ``finding`` (ignoring expiry)."""
        return (
            finding.rule == self.rule
            and finding.path.endswith(self.path_suffix)
            and self.message_substring in finding.message
        )

    def expired(self, today: datetime.date) -> bool:
        return today > self.expires


def parse_baseline(path: str | Path) -> list[BaselineEntry]:
    """Parse a baseline file; raises :class:`BaselineError` on bad syntax."""
    entries: list[BaselineEntry] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = [f.strip() for f in line.split("|")]
        if len(fields) != 5:
            raise BaselineError(
                f"{path}:{lineno}: baseline entry needs 5 '|'-separated "
                f"fields (rule | path | message | expires=DATE | reason), "
                f"got {len(fields)}"
            )
        rule, path_suffix, message, expires_field, reason = fields
        if not expires_field.startswith("expires="):
            raise BaselineError(
                f"{path}:{lineno}: fourth field must be expires=YYYY-MM-DD, "
                f"got {expires_field!r}"
            )
        try:
            expires = datetime.date.fromisoformat(expires_field[len("expires="):])
        except ValueError as exc:
            raise BaselineError(f"{path}:{lineno}: bad expiry date: {exc}") from None
        if not (rule and path_suffix and message and reason):
            raise BaselineError(
                f"{path}:{lineno}: rule, path, message and reason must all "
                "be non-empty (a suppression needs a justification)"
            )
        entries.append(
            BaselineEntry(
                rule=rule,
                path_suffix=path_suffix,
                message_substring=message,
                expires=expires,
                reason=reason,
                lineno=lineno,
            )
        )
    return entries


def apply_baseline(
    findings: list[Finding],
    entries: list[BaselineEntry],
    baseline_path: str | Path,
    today: datetime.date | None = None,
) -> tuple[list[Finding], int]:
    """Filter ``findings`` through the baseline.

    Returns ``(kept, suppressed_count)`` where ``kept`` is the surviving
    findings plus the baseline's own diagnostics: an error-severity
    ``baseline-expired`` finding per expired entry that still matches
    something, and a note-severity ``baseline-unused`` finding per entry
    that matches nothing.
    """
    if today is None:
        today = datetime.date.today()
    path_str = str(baseline_path)
    kept: list[Finding] = []
    suppressed = 0
    matched: dict[int, int] = {entry.lineno: 0 for entry in entries}
    for finding in findings:
        live_match = None
        for entry in entries:
            if entry.matches(finding):
                matched[entry.lineno] += 1
                if not entry.expired(today):
                    live_match = entry
                    break
        if live_match is not None:
            suppressed += 1
        else:
            kept.append(finding)
    for entry in entries:
        if entry.expired(today) and matched[entry.lineno]:
            kept.append(
                Finding(
                    rule="baseline-expired",
                    severity=Severity.ERROR,
                    path=path_str,
                    line=entry.lineno,
                    message=(
                        f"suppression of [{entry.rule}] "
                        f"{entry.path_suffix!r} expired on {entry.expires}: "
                        f"{entry.reason}"
                    ),
                    hint="fix the underlying finding or renew the expiry in review",
                )
            )
        elif not matched[entry.lineno]:
            kept.append(
                Finding(
                    rule="baseline-unused",
                    severity=Severity.NOTE,
                    path=path_str,
                    line=entry.lineno,
                    message=(
                        f"suppression of [{entry.rule}] "
                        f"{entry.path_suffix!r} no longer matches any finding"
                    ),
                    hint="delete the stale baseline entry",
                )
            )
    return kept, suppressed
