"""The built-in contract rules.

Each rule encodes one clause of the ChampSim-style policy contract in
:mod:`repro.policies.base`, or one simulator-wide hygiene requirement.
docs/linting.md explains the rationale of each rule against the paper's
methodology; the short version is in each class docstring.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding, Severity
from .model import (
    REQUIRED_HOOKS,
    LintContext,
    access_pc_reads,
    build_parent_map,
    has_writeback_guard,
    hot_functions,
    local_table_aliases,
    pc_indexed_tables,
    references_attr,
    subscript_root_attr,
)
from .rules import Rule, register_rule

#: Path fragments marking simulation code (determinism-critical).
SIMULATION_PATH_PARTS = ("policies", "mem", "core")


def _is_simulation_module(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(p in parts for p in SIMULATION_PATH_PARTS)


def _walk_skipping_nested_defs(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function's own body, not the bodies of nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class PolicyHooksRule(Rule):
    """Every concrete policy must implement the full hook contract.

    A port that forgets ``on_fill`` (or leaves it abstract) would raise at
    first use in the best case — and silently inherit the wrong behaviour
    from a sibling base class in the worst. The rule also requires a
    non-default ``name``, since the registry and every report key on it.
    """

    name = "policy-hooks"
    description = "concrete policies implement find_victim/on_hit/on_fill and set name"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ctx.policy_classes():
            for hook in REQUIRED_HOOKS:
                if ctx.resolve_method(cls, hook) is None:
                    yield self.finding(
                        cls.module.path,
                        cls.node.lineno,
                        f"policy class {cls.name} does not implement {hook}()",
                        f"define {hook}() (see ReplacementPolicy.{hook} docstring)",
                    )
            name_attr = ctx.resolve_class_attr(cls, "name")
            name_value = (
                name_attr.value
                if isinstance(name_attr, ast.Constant)
                else None
            )
            if name_value in (None, "", "base"):
                yield self.finding(
                    cls.module.path,
                    cls.node.lineno,
                    f"policy class {cls.name} does not set a registry `name`",
                    'add a class attribute like `name = "mypolicy"`',
                )


class VictimReturnRule(Rule):
    """``find_victim`` returns a way index or ``BYPASS`` — nothing else.

    The cache indexes its tag array with the return value; ``None`` or a
    stray negative constant corrupts the set silently (Python negative
    indexing!). ``BYPASS`` is only honoured when the class declares
    ``supports_bypass = True``, so the hardware-budget accounting and the
    hierarchy's writeback handling know bypassing is in play.
    """

    name = "victim-return"
    description = "find_victim returns only a way index or BYPASS (declared via supports_bypass)"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ctx.policy_classes():
            fn = cls.methods.get("find_victim")
            if fn is None:
                continue
            returns_bypass = False
            for node in _walk_skipping_nested_defs(fn):
                if not isinstance(node, ast.Return):
                    continue
                value = node.value
                if value is None or (
                    isinstance(value, ast.Constant) and value.value is None
                ):
                    yield self.finding(
                        cls.module.path,
                        node.lineno,
                        f"{cls.name}.find_victim returns None",
                        "return a way index, or BYPASS if supports_bypass",
                    )
                    continue
                if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                    operand = value.operand
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, int
                    ):
                        yield self.finding(
                            cls.module.path,
                            node.lineno,
                            f"{cls.name}.find_victim returns the literal "
                            f"-{operand.value}",
                            "use the BYPASS sentinel from repro.policies.base",
                        )
                        continue
                if isinstance(value, ast.Name) and value.id == "BYPASS":
                    returns_bypass = True
                if isinstance(value, ast.Attribute) and value.attr == "BYPASS":
                    returns_bypass = True
            if returns_bypass:
                declared = ctx.resolve_class_attr(cls, "supports_bypass")
                ok = isinstance(declared, ast.Constant) and declared.value is True
                if not ok:
                    yield self.finding(
                        cls.module.path,
                        fn.lineno,
                        f"{cls.name}.find_victim returns BYPASS but the class "
                        "does not declare supports_bypass = True",
                        "set `supports_bypass = True` on the class",
                    )


class PCWritebackGuardRule(Rule):
    """Hooks that read ``access.pc`` must consider writebacks first.

    Writebacks arrive with ``pc == 0`` (base-class contract, mirroring
    real hardware). A hook that hashes or indexes with ``access.pc``
    without ever testing ``access.is_writeback`` / ``access.kind`` will
    train its predictor on a meaningless PC — exactly the contract drift
    that corrupts the Figure 3 speed-ups for SHiP/Hawkeye/MPPPB. The
    check is transitive over same-class helpers: a guard anywhere in the
    reachable code of the hook satisfies it.
    """

    name = "pc-writeback-guard"
    description = "access.pc used in a hook requires an access.is_writeback/kind guard"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        seen: set[tuple[str, int]] = set()
        for cls in ctx.policy_classes():
            for hook in ("find_victim", "on_hit", "on_fill"):
                fn = cls.methods.get(hook)
                if fn is None:
                    continue
                reachable = ctx.reachable_methods(cls, fn)
                pc_sites = [
                    (owner, node)
                    for owner, reached in reachable
                    for node in access_pc_reads(reached)
                ]
                if not pc_sites:
                    continue
                if any(has_writeback_guard(reached) for _, reached in reachable):
                    continue
                owner, node = pc_sites[0]
                key = (owner.module.path, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    owner.module.path,
                    node.lineno,
                    f"{cls.name}.{hook} reads access.pc without guarding "
                    "against writebacks (pc == 0)",
                    "test access.is_writeback (or access.kind) before using the PC",
                )


class PCTableHygieneRule(Rule):
    """PC-predicting policies must handle writebacks in on_hit *and* on_fill.

    A class that maintains PC-indexed tables (detected by taint from
    ``access.pc`` / ``pc`` parameters into subscript indices) has decided
    PCs are signal; a touch hook that then updates those tables without a
    writeback guard trains on the stored signature of a line during a
    PC-less writeback touch — the SHiP reference explicitly excludes
    writebacks from SHCT training for this reason.
    """

    name = "pc-table-hygiene"
    description = "policies with PC-indexed tables guard on_hit/on_fill against writebacks"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ctx.policy_classes():
            tables = pc_indexed_tables(cls)
            if not tables:
                continue
            for hook in ("on_hit", "on_fill"):
                resolved = ctx.resolve_method(cls, hook)
                if resolved is None:
                    continue  # policy-hooks reports the missing hook
                owner, fn = resolved
                if owner is not cls:
                    # Inherited hook: reported on the defining class.
                    continue
                reachable = ctx.reachable_methods(cls, fn)
                touches = any(
                    references_attr(reached, tables) for _, reached in reachable
                )
                if not touches:
                    continue
                if any(has_writeback_guard(reached) for _, reached in reachable):
                    continue
                yield self.finding(
                    cls.module.path,
                    fn.lineno,
                    f"{cls.name}.{hook} updates PC-indexed state "
                    f"({', '.join(sorted(tables))}) without a writeback guard",
                    "skip (or explicitly handle) writeback touches before "
                    "reading/updating PC tables",
                )


class SaturatingCounterRule(Rule):
    """Per-entry counters move only under an explicit bound check.

    Every predictor in the paper's policy set uses *saturating* counters
    (2-bit SHCT, 3-bit Hawkeye, bounded perceptron weights). An unguarded
    ``table[i] += 1`` silently overflows into arbitrary Python ints — the
    policy still runs, but its behaviour diverges from the hardware being
    modelled. The rule accepts any ``+= 1`` / ``-= 1`` on subscripted
    policy state that has a comparison somewhere in an enclosing
    ``if``/``while`` — the idiomatic saturation guard.
    """

    name = "saturating-counters"
    description = "subscripted counter updates are guarded by a bound comparison"
    severity = Severity.WARNING

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ctx.policy_classes(concrete_only=False):
            for fn in cls.methods.values():
                aliases = local_table_aliases(fn)
                parents = build_parent_map(fn)
                for node in ast.walk(fn):
                    if not isinstance(node, ast.AugAssign):
                        continue
                    if not isinstance(node.op, (ast.Add, ast.Sub)):
                        continue
                    target = node.target
                    if not isinstance(target, ast.Subscript):
                        continue
                    root = subscript_root_attr(target)
                    if root is None:
                        value = target.value
                        while isinstance(value, ast.Subscript):
                            value = value.value
                        if not (isinstance(value, ast.Name) and value.id in aliases):
                            continue
                    if self._guarded(node, parents, fn):
                        continue
                    yield self.finding(
                        cls.module.path,
                        node.lineno,
                        f"{cls.name}.{fn.name} updates a counter without a "
                        "saturation bound in any enclosing if/while",
                        "guard with a comparison against the counter's "
                        "MIN/MAX before updating",
                    )

    @staticmethod
    def _guarded(
        node: ast.AST, parents: dict[ast.AST, ast.AST], fn: ast.FunctionDef
    ) -> bool:
        current: ast.AST | None = parents.get(node)
        while current is not None and current is not fn:
            if isinstance(current, (ast.If, ast.While)):
                if any(isinstance(n, ast.Compare) for n in ast.walk(current)):
                    return True
            current = parents.get(current)
        return False


class DeterminismRule(Rule):
    """Simulation code must be bit-reproducible run to run.

    The multi-seed harness and the paper's error bars assume that a
    (trace, policy, seed) triple always produces the same numbers.
    Wall-clock reads, the global ``random`` module, unseeded numpy
    generators and the per-process-salted builtin ``hash()`` all break
    that silently. Applies to :mod:`repro.policies`, :mod:`repro.mem`
    and :mod:`repro.core` (the harness/report layer may time things).
    """

    name = "determinism"
    description = "no random/time imports, unseeded RNGs, or builtin hash() in simulation code"
    severity = Severity.ERROR

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules:
            if not _is_simulation_module(module.path):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.split(".")[0] in ("random", "time"):
                            yield self.finding(
                                module.path,
                                node.lineno,
                                f"simulation module imports {alias.name!r}",
                                "derive randomness from a seeded numpy "
                                "Generator; never read wall-clock time",
                            )
                elif isinstance(node, ast.ImportFrom):
                    if node.module and node.module.split(".")[0] in ("random", "time"):
                        yield self.finding(
                            module.path,
                            node.lineno,
                            f"simulation module imports from {node.module!r}",
                            "derive randomness from a seeded numpy "
                            "Generator; never read wall-clock time",
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Name)
                        and func.id == "hash"
                        and not any(
                            isinstance(k, ast.keyword) for k in node.keywords
                        )
                    ):
                        yield self.finding(
                            module.path,
                            node.lineno,
                            "builtin hash() is salted per process (PYTHONHASHSEED)",
                            "use an explicit fold/mask hash of the integer value",
                        )
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id
                        if isinstance(func, ast.Name)
                        else None
                    )
                    if name == "default_rng" and not node.args and not node.keywords:
                        yield self.finding(
                            module.path,
                            node.lineno,
                            "default_rng() without a seed is nondeterministic",
                            "pass an explicit integer seed",
                        )


class HotAllocRule(Rule):
    """Functions marked ``# hot`` must not allocate containers per call.

    The access loop runs millions of times per simulated workload;
    a list/dict/set display or comprehension inside it shows up directly
    in wall-clock (the simulator's throughput target in ROADMAP.md).
    Mark a function hot with a ``# hot`` comment on its ``def`` line.
    """

    name = "hot-alloc"
    description = "# hot functions avoid per-call list/dict/set allocation"
    severity = Severity.WARNING

    _ALLOC_CALLS = {"list", "dict", "set", "sorted", "frozenset"}

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules:
            for fn in hot_functions(module):
                for node in ast.walk(fn):
                    bad: str | None = None
                    if isinstance(
                        node,
                        (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                    ):
                        bad = "a comprehension"
                    elif isinstance(node, (ast.List, ast.Dict, ast.Set)):
                        bad = "a container literal"
                    elif (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in self._ALLOC_CALLS
                    ):
                        bad = f"a {node.func.id}() call"
                    if bad is not None:
                        yield self.finding(
                            module.path,
                            node.lineno,
                            f"hot function {fn.name} allocates {bad} per call",
                            "hoist the allocation out of the hot path or "
                            "reuse a preallocated structure",
                        )


for _rule in (
    PolicyHooksRule,
    VictimReturnRule,
    PCWritebackGuardRule,
    PCTableHygieneRule,
    SaturatingCounterRule,
    DeterminismRule,
    HotAllocRule,
):
    register_rule(_rule.name, _rule)
