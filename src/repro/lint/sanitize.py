"""Runtime invariant sanitizer for the cache hierarchy (``--sanitize``).

The static rules in :mod:`repro.lint.contract` catch contract drift that
is visible in source; this module catches the drift that only shows up
while simulating. When attached (opt-in — the checks cost a few percent
of throughput, so the default hot path carries exactly one ``is None``
test per operation), every cache verifies after each mutation:

* **victim legality** — ``find_victim`` returned a way inside
  ``[0, num_ways)`` pointing at a valid line, or ``BYPASS`` only if the
  policy declares ``supports_bypass``;
* **eviction pairing** — ``on_eviction`` fired exactly once per evicted
  victim, with the right ``(set, way, block)``, and never spuriously;
* **tag uniqueness / occupancy** — no duplicate tags within a set, no
  set wider than its geometry;
* **dirty-bit consistency** — a dirty way is always a valid way;
* **inclusion** (inclusive mode) — upper-level residents are periodically
  swept against LLC residency.

Violations raise :class:`SanitizerError` (a
:class:`~repro.errors.SimulationError`): they mean the simulator or a
policy broke its contract, so the run's numbers are not citable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..policies.base import BYPASS

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..mem.cache import Cache
    from ..mem.hierarchy import CacheHierarchy

#: Invalid-way marker in the cache tag arrays.
_INVALID = -1


class SanitizerError(SimulationError):
    """A runtime invariant of the cache model was violated."""


class InvariantSanitizer:
    """Per-cache invariant checks, driven by :class:`~repro.mem.cache.Cache`.

    Bound to exactly one cache via :meth:`bind` (normally through
    ``Cache.attach_sanitizer``), which also wraps the policy's
    ``on_eviction`` so notification pairing is observable.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.evictions_verified = 0
        self._cache: "Cache | None" = None
        self._pending: tuple[int, int, int] | None = None

    def bind(self, cache: "Cache") -> None:
        """Attach to ``cache`` and instrument its policy's ``on_eviction``."""
        if self._cache is not None:
            raise SanitizerError(
                f"sanitizer already bound to {self._cache.name}; "
                "use one sanitizer per cache"
            )
        self._cache = cache
        original = cache.policy.on_eviction

        def notified(set_index: int, way: int, victim_block: int) -> None:
            self._eviction_notified(set_index, way, victim_block)
            original(set_index, way, victim_block)

        # Instance attribute shadows the bound method for this policy only.
        cache.policy.on_eviction = notified  # type: ignore[method-assign]

    @property
    def cache_name(self) -> str:
        return self._cache.name if self._cache is not None else "<unbound>"

    def _fail(self, message: str) -> None:
        raise SanitizerError(f"[sanitize:{self.cache_name}] {message}")

    # -- checks called from Cache ------------------------------------------------

    def check_victim(self, set_index: int, way: int, tags: list[int]) -> None:
        """A ``find_victim`` answer must be a valid way or a legal BYPASS."""
        self.checks += 1
        cache = self._cache
        assert cache is not None
        if way == BYPASS:
            if not cache.policy.supports_bypass:
                self._fail(
                    f"policy {cache.policy.name!r} returned BYPASS for set "
                    f"{set_index} but does not declare supports_bypass"
                )
            return
        if not isinstance(way, int) or not 0 <= way < cache.num_ways:
            self._fail(
                f"find_victim returned way {way!r} for set {set_index}; "
                f"expected 0 <= way < {cache.num_ways} or BYPASS"
            )
        if tags[way] == _INVALID:
            self._fail(
                f"find_victim chose invalid way {way} in a full set "
                f"{set_index} (stale policy state?)"
            )

    def expect_eviction(self, set_index: int, way: int, victim_block: int) -> None:
        """Arm the pairing check: the next ``on_eviction`` must match."""
        if self._pending is not None:
            self._fail(
                f"eviction of block {victim_block:#x} started while the "
                f"notification for {self._pending} is still outstanding"
            )
        self._pending = (set_index, way, victim_block)

    def _eviction_notified(self, set_index: int, way: int, victim_block: int) -> None:
        self.checks += 1
        event = (set_index, way, victim_block)
        if self._pending is None:
            self._fail(
                f"on_eviction fired for {event} with no eviction in progress "
                "(duplicate or spurious notification)"
            )
        if self._pending != event:
            self._fail(
                f"on_eviction fired for {event} but the cache evicted "
                f"{self._pending}"
            )
        self._pending = None
        self.evictions_verified += 1

    def assert_notified(self, set_index: int) -> None:
        """After an eviction, the notification must have been consumed."""
        self.checks += 1
        if self._pending is not None:
            self._fail(
                f"victim {self._pending} left set {set_index} but "
                "on_eviction never fired"
            )

    def check_set(self, set_index: int, tags: list[int], dirty: list[bool]) -> None:
        """Occupancy bound, tag uniqueness and dirty => valid for one set."""
        self.checks += 1
        cache = self._cache
        assert cache is not None
        if len(tags) != cache.num_ways:
            self._fail(
                f"set {set_index} has {len(tags)} ways; geometry says "
                f"{cache.num_ways}"
            )
        valid = [t for t in tags if t != _INVALID]
        if len(set(valid)) != len(valid):
            dupes = sorted({t for t in valid if valid.count(t) > 1})
            self._fail(
                f"duplicate tag(s) {[hex(d) for d in dupes]} in set {set_index}"
            )
        for way, is_dirty in enumerate(dirty):
            if is_dirty and tags[way] == _INVALID:
                self._fail(
                    f"way {way} of set {set_index} is dirty but invalid "
                    "(lost writeback data)"
                )


class HierarchySanitizer:
    """Cross-level checks, driven by :class:`~repro.mem.hierarchy.CacheHierarchy`.

    The inclusion sweep is O(cache size), so it runs every
    :data:`SWEEP_INTERVAL` demand accesses and only in inclusive mode —
    NINE hierarchies have no inclusion invariant to check.
    """

    SWEEP_INTERVAL = 1024

    def __init__(self) -> None:
        self.accesses = 0
        self.sweeps = 0

    def on_access(self, hierarchy: "CacheHierarchy") -> None:
        """Called once per demand access by the hierarchy."""
        self.accesses += 1
        if hierarchy.inclusive and self.accesses % self.SWEEP_INTERVAL == 0:
            self.check_inclusion(hierarchy)

    def check_inclusion(self, hierarchy: "CacheHierarchy") -> None:
        """Every upper-level resident block must be LLC-resident."""
        self.sweeps += 1
        llc_resident = set(hierarchy.llc.resident_blocks())
        for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2):
            for block in cache.resident_blocks():
                if block not in llc_resident:
                    raise SanitizerError(
                        f"[sanitize:hierarchy] inclusive mode: block "
                        f"{block:#x} resident in {cache.name} but not in "
                        f"{hierarchy.llc.name}"
                    )


class AttachedSanitizers:
    """Handle over every sanitizer attached to one hierarchy."""

    def __init__(
        self, caches: dict[str, InvariantSanitizer], hierarchy: HierarchySanitizer
    ) -> None:
        self.caches = caches
        self.hierarchy = hierarchy

    @property
    def total_checks(self) -> int:
        """Invariant checks executed across all levels."""
        return sum(s.checks for s in self.caches.values()) + self.hierarchy.accesses

    @property
    def evictions_verified(self) -> int:
        """Eviction notifications verified for pairing."""
        return sum(s.evictions_verified for s in self.caches.values())


def attach_sanitizers(hierarchy: "CacheHierarchy") -> AttachedSanitizers:
    """Arm invariant checking on every level of ``hierarchy``.

    Safe to call once per hierarchy, before simulation; all subsequent
    accesses are checked until the hierarchy is discarded.
    """
    caches: dict[str, InvariantSanitizer] = {}
    for name, cache in hierarchy.caches.items():
        sanitizer = InvariantSanitizer()
        cache.attach_sanitizer(sanitizer)
        caches[name] = sanitizer
    hsan = HierarchySanitizer()
    hierarchy.attach_sanitizer(hsan)
    return AttachedSanitizers(caches, hsan)
