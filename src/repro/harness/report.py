"""Full-report generation: every experiment into one markdown document.

``generate_report()`` runs a set of experiment functions and renders
their tables (plus optional charts) into a single markdown file — the
"regenerate the paper's evaluation section" button. The CLI exposes it
as ``python -m repro report``. ``render_profile()`` turns a telemetry
profile (:mod:`repro.telemetry`) into the text/markdown summary behind
``python -m repro profile`` and the CI job summaries.
``render_failure_report()`` does the same for the resilience layer's
:class:`~repro.resilience.report.FailureReport` (``repro sweep`` /
``repro chaos``).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Mapping

from ..analysis.tables import format_table
from ..resilience.report import FailureReport
from ..telemetry.profile import MISS_CLASSES, TelemetryProfile
from .experiments import ExperimentReport


def render_failure_report(report: FailureReport, markdown: bool = False) -> str:
    """Render what the resilience layer absorbed during one sweep."""
    return report.render(markdown=markdown)

#: Experiments rendered with a baseline-1.0 chart (speed-up figures).
_BASELINE_CHARTS = {"fig3"}

#: Cache levels shown in the per-interval MPKI columns.
_PROFILE_LEVELS = ("L1D", "L2C", "LLC")


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)


def _downsample(count: int, keep: int) -> list[int]:
    """Evenly spaced indices into ``range(count)``, always keeping the ends."""
    if count <= keep:
        return list(range(count))
    step = (count - 1) / (keep - 1)
    return sorted({round(i * step) for i in range(keep)})


def _snapshot_summary(state: Mapping[str, object]) -> list[str]:
    """Compact ``key=value`` strings for one policy snapshot."""
    parts = []
    for key in sorted(state):
        value = state[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.3f}")
        elif isinstance(value, list):
            if len(value) <= 8:
                parts.append(f"{key}={value}")
            else:
                parts.append(f"{key}=<{len(value)} entries>")
        else:
            parts.append(f"{key}={value}")
    return parts


def render_profile(
    profile: TelemetryProfile, markdown: bool = False, max_intervals: int = 20
) -> str:
    """Render a telemetry profile as plain text (or a markdown summary).

    The interval table is downsampled to ``max_intervals`` evenly spaced
    rows; the totals, miss classification, eviction pressure and final
    policy snapshot always reflect the whole profile.
    """
    instructions = profile.instructions
    cycles = sum(s.cycles for s in profile.intervals)
    header = [
        f"workload: {profile.workload}",
        f"policy: {profile.policy}",
        f"intervals: {len(profile.intervals)} x {profile.interval_instructions} instructions",
        f"measured: {instructions} instructions, IPC "
        f"{instructions / cycles if cycles else 0.0:.3f}, "
        f"LLC MPKI {1000.0 * profile.total_demand_misses('LLC') / instructions if instructions else 0.0:.2f}",
    ]

    headers = ["instr", "IPC", *[f"{lvl} MPKI" for lvl in _PROFILE_LEVELS],
               "DRAM rd", "DRAM wr"]
    rows = []
    for i in _downsample(len(profile.intervals), max_intervals):
        s = profile.intervals[i]
        rows.append([
            str(s.end_instructions),
            f"{s.ipc:.3f}",
            *[f"{s.mpki(lvl):.2f}" for lvl in _PROFILE_LEVELS],
            str(s.dram_reads),
            str(s.dram_writes),
        ])

    tail: list[str] = []
    if profile.miss_classes:
        total = sum(profile.miss_classes.get(c, 0) for c in MISS_CLASSES)
        split = ", ".join(
            f"{c} {profile.miss_classes.get(c, 0)}"
            f" ({100.0 * profile.miss_classes.get(c, 0) / total:.1f}%)"
            if total else f"{c} 0"
            for c in MISS_CLASSES
        )
        tail.append(f"LLC miss classes: {split}")
    if profile.llc_evictions_per_set:
        hottest = ", ".join(
            f"set {idx}: {count}" for idx, count in profile.hottest_sets(3)
        )
        tail.append(
            f"LLC eviction skew: {profile.eviction_skew:.2f} "
            f"(max/mean; hottest {hottest})"
        )
    if profile.policy_snapshots:
        final = profile.policy_snapshots[-1]
        summary = _snapshot_summary(final.state)
        if summary:
            tail.append(
                f"policy state @ {final.end_instructions}: " + ", ".join(summary)
            )

    if markdown:
        parts = [f"### Telemetry: {profile.workload} x {profile.policy}", ""]
        parts.append("\n".join(f"- {line}" for line in header[2:]))
        parts.append("")
        parts.append(_markdown_table(headers, rows))
        if tail:
            parts.append("")
            parts.append("\n".join(f"- {line}" for line in tail))
        return "\n".join(parts)

    parts = header[:]
    parts.append("")
    parts.append(format_table(headers, rows, title="per-interval series"))
    parts.extend(tail)
    return "\n".join(parts)


def generate_report(
    experiments: Mapping[str, Callable[[], ExperimentReport]],
    path: str | Path,
    title: str = "Reproduction report",
    charts: bool = True,
    progress: Callable[[str], None] | None = None,
) -> Path:
    """Run ``experiments`` in order and write one markdown report.

    Each experiment contributes a section with its rendered table in a
    code fence (and a bar chart where meaningful). Failures of a single
    experiment are recorded in place rather than aborting the rest, so a
    long report survives one broken driver.
    """
    import repro

    path = Path(path)
    lines: list[str] = [
        f"# {title}",
        "",
        f"Generated by repro {repro.__version__}.",
        "",
    ]
    for name, runner in experiments.items():
        if progress is not None:
            progress(name)
        started = time.perf_counter()
        lines.append(f"## {name}")
        lines.append("")
        try:
            report = runner()
        except Exception as error:  # deliberate: isolate per-experiment failures
            lines.append(f"**FAILED**: `{type(error).__name__}: {error}`")
            lines.append("")
            continue
        elapsed = time.perf_counter() - started
        lines.append("```")
        lines.append(report.render())
        lines.append("```")
        if charts and report.rows and report._numeric_span() > 0:
            baseline = 1.0 if name in _BASELINE_CHARTS else None
            try:
                chart = report.chart(baseline=baseline)
            except ValueError:
                chart = None
            if chart:
                lines.append("")
                lines.append("```")
                lines.append(chart)
                lines.append("```")
        lines.append("")
        lines.append(f"_({elapsed:.1f} s)_")
        lines.append("")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
