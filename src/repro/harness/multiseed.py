"""Multi-seed experiment replication.

Synthetic graphs and workloads are seeded; a single seed gives one
deterministic number, but a claim like "policies do not help GAP" should
survive input resampling. :func:`replicate` reruns a
workload-builder/simulation pipeline across seeds and reports mean,
standard deviation and min/max per metric — the error bars the paper's
figures imply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.config import MachineConfig, cascade_lake
from ..core.results import SimulationResult
from ..core.simulator import simulate
from ..trace.trace import Trace


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one metric across seeds."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    samples: tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.3f} ± {self.std:.3f} [{self.minimum:.3f}, {self.maximum:.3f}]"


def summarize(name: str, samples: Sequence[float]) -> MetricSummary:
    """Plain mean/σ summary (population σ, as figures usually report)."""
    if not samples:
        raise ValueError(f"metric {name!r} has no samples")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / n
    return MetricSummary(
        name=name,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(samples),
        maximum=max(samples),
        samples=tuple(samples),
    )


@dataclass(frozen=True)
class ReplicatedRun:
    """Cross-seed summaries of one (workload-builder, policy) pipeline."""

    policy: str
    ipc: MetricSummary
    llc_mpki: MetricSummary
    llc_hit_rate: MetricSummary
    results: tuple[SimulationResult, ...]


def replicate(
    build_trace: Callable[[int], Trace],
    policy: str,
    seeds: Sequence[int] = (1, 2, 3),
    config: MachineConfig | None = None,
    warmup_fraction: float = 0.2,
) -> ReplicatedRun:
    """Run ``build_trace(seed)`` -> simulate for every seed and summarize.

    ``build_trace`` regenerates the workload for a seed (typically a new
    graph instance); the machine and policy stay fixed, so the spread
    reflects input variation only.
    """
    if not seeds:
        raise ValueError("replicate needs at least one seed")
    config = config or cascade_lake()
    results = [
        simulate(
            build_trace(seed),
            config=config,
            llc_policy=policy,
            warmup_fraction=warmup_fraction,
        )
        for seed in seeds
    ]
    return ReplicatedRun(
        policy=policy,
        ipc=summarize("ipc", [r.ipc for r in results]),
        llc_mpki=summarize("llc_mpki", [r.llc_mpki for r in results]),
        llc_hit_rate=summarize(
            "llc_hit_rate", [r.levels["LLC"].demand_hit_rate for r in results]
        ),
        results=tuple(results),
    )


def replicated_speedup(
    build_trace: Callable[[int], Trace],
    policy: str,
    seeds: Sequence[int] = (1, 2, 3),
    config: MachineConfig | None = None,
    baseline: str = "lru",
) -> MetricSummary:
    """Per-seed speed-up of ``policy`` over ``baseline`` — paired by seed,
    so graph-instance variance cancels out of the ratio."""
    config = config or cascade_lake()
    ratios: list[float] = []
    for seed in seeds:
        trace = build_trace(seed)
        base = simulate(trace, config=config, llc_policy=baseline)
        test = simulate(trace, config=config, llc_policy=policy)
        ratios.append(test.speedup_over(base))
    return summarize(f"speedup({policy}/{baseline})", ratios)
