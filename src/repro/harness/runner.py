"""Run matrices: (workload x policy) sweeps with result aggregation.

The benchmarks and examples all funnel through :class:`RunMatrix`: give
it traces and policy names, it simulates every cell through the sweep
engine (:mod:`repro.harness.engine`) — parallel across ``jobs`` worker
processes and backed by a content-addressed on-disk result cache when
one is configured — and exposes the aggregations the paper reports:
per-cell IPC/MPKI, per-workload speed-ups over a baseline, and
per-suite geometric means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..analysis.stats import geometric_mean
from ..core.config import MachineConfig
from ..core.results import SimulationResult
from ..core.simulator import DEFAULT_WARMUP_FRACTION
from ..errors import SimulationError
from ..policies.registry import BASELINE_POLICY
from ..trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only (engine imports us)
    from pathlib import Path

    from ..resilience.durability import ShutdownCoordinator
    from ..resilience.policy import RetryPolicy
    from ..resilience.report import FailureReport
    from ..sampling.spec import SamplingSpec
    from ..telemetry.collector import TelemetryConfig
    from .engine import SweepEngine, SweepStats


@dataclass
class RunMatrix:
    """Results of a (workload x policy) sweep.

    ``results[workload][policy]`` holds the simulation result of that
    cell; workloads and policies keep insertion order for stable output.
    """

    config: MachineConfig
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)
    #: Filled by the sweep engine: how many cells were cache hits vs
    #: simulated (None when the matrix was assembled by hand).
    sweep_stats: "SweepStats | None" = None
    #: Filled by the sweep engine when a retry policy was armed: every
    #: failure the resilience layer absorbed (None otherwise).
    failure_report: "FailureReport | None" = None
    #: Filled by the sweep engine when a run journal was armed: the
    #: journalled run id (``repro sweep --resume <run_id>``) and the
    #: journal file itself (None when journalling was off).
    run_id: "str | None" = None
    journal_path: "Path | None" = None

    @property
    def workloads(self) -> list[str]:
        """Workload names in run order."""
        return list(self.results)

    @property
    def policies(self) -> list[str]:
        """Policy names in run order (from the first workload)."""
        if not self.results:
            return []
        return list(next(iter(self.results.values())))

    def get(self, workload: str, policy: str) -> SimulationResult:
        """The result of one cell; raises with context if missing."""
        try:
            return self.results[workload][policy]
        except KeyError as exc:
            raise SimulationError(
                f"no result for workload={workload!r} policy={policy!r}"
            ) from exc

    def speedup(self, workload: str, policy: str, baseline: str = BASELINE_POLICY) -> float:
        """IPC of (workload, policy) relative to the baseline policy."""
        return self.get(workload, policy).speedup_over(self.get(workload, baseline))

    def speedups(self, policy: str, baseline: str = BASELINE_POLICY) -> dict[str, float]:
        """Per-workload speed-ups of one policy."""
        return {
            w: self.speedup(w, policy, baseline) for w in self.workloads
        }

    def geomean_speedup(self, policy: str, baseline: str = BASELINE_POLICY) -> float:
        """The paper's suite aggregate: geomean of per-workload speed-ups."""
        return geometric_mean(self.speedups(policy, baseline).values())

    def mpki_table(self, level: str = "LLC") -> dict[str, dict[str, float]]:
        """MPKI of every cell at one cache level."""
        return {
            w: {p: self.results[w][p].mpki(level) for p in self.results[w]}
            for w in self.workloads
        }


def run_matrix(
    traces: dict[str, Trace] | list[Trace],
    policies: list[str],
    config: MachineConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    progress: Callable[[str, str], None] | None = None,
    sanitize: bool = False,
    jobs: int | None = None,
    engine: "SweepEngine | None" = None,
    telemetry: "TelemetryConfig | None" = None,
    retry: "RetryPolicy | None" = None,
    cell_engine: str = "fast",
    sampling: "SamplingSpec | None" = None,
    memory_budget_mb: float | None = None,
    shutdown: "ShutdownCoordinator | None" = None,
    drain_timeout: float = 30.0,
    journal_context: dict | None = None,
    failure_report_path: "str | Path | None" = None,
) -> RunMatrix:
    """Simulate every (trace, policy) pair through the sweep engine.

    Cells run in parallel across ``jobs`` worker processes (default: the
    ``REPRO_JOBS`` environment variable, else serial) and are served
    from the engine's content-addressed result cache when one is
    configured (``REPRO_CACHE_DIR`` or an explicit ``engine``) — a
    repeated sweep re-simulates nothing. ``progress`` (if given) is
    called with (workload, policy) as each cell is dispatched —
    benchmarks use it to narrate long sweeps. ``sanitize`` arms the
    runtime invariant sanitizer on every cell (CI runs the synthetic
    sweeps this way; see docs/linting.md). ``telemetry`` arms
    interval-resolved observability on every cell (see
    docs/telemetry.md); each cell's profile lands in its
    ``result.info["telemetry"]``. ``retry`` arms the resilience layer
    (bounded retry with deterministic backoff, per-cell wall-clock
    timeouts, worker-pool recovery — see docs/resilience.md); the
    absorbed failures ride back on ``matrix.failure_report``. Cell
    failures that survive the retry budget propagate; use
    :meth:`repro.harness.engine.SweepEngine.run` directly for per-cell
    failure isolation and engine statistics.

    ``cell_engine`` picks the simulation engine for uncached cells —
    ``"fast"`` (default), ``"reference"``, or ``"batched"`` which runs
    all eligible policies of a workload over one shared access-stream
    plan (see docs/performance.md); all three are bit-identical.
    (``engine`` names the *sweep* engine instance, hence the separate
    keyword.)

    ``sampling`` runs every cell under representative-interval sampling
    (:mod:`repro.sampling`, docs/sampling.md): only weighted
    representative intervals simulate and each cell's result is a
    recombined estimate, cached under a key that includes the spec.

    The durability knobs thread straight through to the engine (see
    docs/resilience.md): ``memory_budget_mb`` arms the per-worker RSS
    watchdog, ``shutdown``/``drain_timeout`` wire in a
    :class:`~repro.resilience.durability.ShutdownCoordinator` for
    graceful SIGTERM/SIGINT handling, ``journal_context`` is stored in
    the run journal's header (``repro sweep --resume`` rebuilds its
    arguments from it), and ``failure_report_path`` overrides where a
    persisted failure report lands. When the engine journals the run,
    ``matrix.run_id`` / ``matrix.journal_path`` identify it.
    """
    from .engine import SweepEngine

    if engine is None:
        engine = SweepEngine.from_env(jobs=jobs)
    outcome = engine.run(
        traces,
        policies,
        config=config,
        warmup_fraction=warmup_fraction,
        progress=progress,
        sanitize=sanitize,
        telemetry=telemetry,
        retry=retry,
        engine=cell_engine,
        sampling=sampling,
        memory_budget_mb=memory_budget_mb,
        shutdown=shutdown,
        drain_timeout=drain_timeout,
        journal_context=journal_context,
        failure_report_path=failure_report_path,
    )
    outcome.matrix.sweep_stats = outcome.stats
    outcome.matrix.failure_report = outcome.failure_report
    outcome.matrix.run_id = outcome.run_id
    outcome.matrix.journal_path = outcome.journal_path
    return outcome.matrix
