"""Differential-equivalence harness for the execution engines.

:func:`verify_fastpath` proves — by running them — that an optimized
execution path and the reference hot loop produce **bit-identical**
:class:`~repro.core.results.SimulationResult` values: every counter,
every float, and the full telemetry profile when armed. Comparison is
over the canonical JSON serialization (the same representation the
sweep-engine cache stores), so anything the result round-trip can
express is covered. Two candidates are supported: the single-run fast
engine (:mod:`repro.mem.fastpath`, ``engine="fast"``) and the batched
multi-cell engine (:mod:`repro.mem.batch`, ``engine="batched"``, which
additionally exercises plan *sharing* — every policy of a trace replays
the same decoded access stream, exactly as a batched sweep would).

The default case matrix crosses every registered replacement policy with
GAP-kernel and SPEC-proxy traces plus an IFETCH-heavy synthetic mix (the
suite generators emit only loads/stores, and the L1I path deserves the
same scrutiny), each with telemetry off and armed. The default machine is
the tiny test geometry: its caches are miss-dominated, which maximally
exercises the fill/writeback/victim cascade where the two engines could
diverge.

Exposed on the CLI as ``repro verify-fastpath`` and exercised in CI so
any engine divergence fails the build before a benchmark number built on
the fast engine can be trusted.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.config import MachineConfig, small_test_machine
from ..core.results import SimulationResult
from ..core.simulator import build_hierarchy, simulate
from ..gap.suite import gap_suite
from ..mem.fastpath import fastpath_eligible
from ..policies.registry import available_policies
from ..spec.suite import build_spec_workload
from ..telemetry.collector import TelemetryConfig
from ..trace import synthetic
from ..trace.record import AccessKind
from ..trace.trace import Trace


@dataclass(frozen=True)
class EquivalenceCase:
    """Outcome of one fast-vs-reference comparison."""

    workload: str
    policy: str
    telemetry: bool
    warmup_fraction: float
    #: Whether the fast engine actually ran (an ineligible combination
    #: falls back to the reference loop, making the comparison vacuous).
    fast_used: bool
    matched: bool
    #: Top-level result fields that differed (empty when matched).
    mismatched_fields: tuple[str, ...] = ()

    def describe(self) -> str:
        """One human-readable line for reports."""
        mode = "telemetry" if self.telemetry else "plain"
        status = "ok" if self.matched else (
            "MISMATCH: " + ", ".join(self.mismatched_fields)
        )
        return (
            f"{self.workload} x {self.policy} [{mode}, "
            f"warmup={self.warmup_fraction:g}] {status}"
        )


@dataclass
class EquivalenceReport:
    """All cases of one :func:`verify_fastpath` run."""

    cases: list[EquivalenceCase]

    @property
    def passed(self) -> bool:
        """Whether every case produced bit-identical results."""
        return all(case.matched for case in self.cases)

    @property
    def failures(self) -> list[EquivalenceCase]:
        """The mismatched cases, if any."""
        return [case for case in self.cases if not case.matched]

    @property
    def fast_coverage(self) -> int:
        """How many cases actually exercised the fast engine."""
        return sum(1 for case in self.cases if case.fast_used)

    def render(self) -> str:
        """Human-readable summary (failure details first, then totals)."""
        lines = [f"  {case.describe()}" for case in self.failures]
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"verify-fastpath: {verdict} — {len(self.cases)} cases "
            f"({self.fast_coverage} on the optimized engine, "
            f"{len(self.failures)} mismatches)"
        )
        return "\n".join(lines)


def _canonical(result: SimulationResult) -> str:
    """The byte string two engines must agree on."""
    return json.dumps(result.to_json_dict(), sort_keys=True)


def ifetch_mix(num_accesses: int = 12_000, seed: int = 23) -> Trace:
    """A synthetic trace where every fourth record is an IFETCH.

    The GAP/SPEC generators emit only loads and stores, so this is what
    gives the equivalence matrix (and the L1I fast path) instruction
    -fetch coverage. Fetch addresses come from the PC stream, giving the
    L1I a realistic small hot footprint.
    """
    base = synthetic.zipf_reuse(num_accesses, num_blocks=2048, seed=seed)
    addrs = base.addrs.copy()
    kinds = base.kinds.copy()
    fetch = np.arange(len(base)) % 4 == 3
    kinds[fetch] = AccessKind.IFETCH
    addrs[fetch] = base.pcs[fetch]
    return Trace.from_arrays(
        addrs, base.pcs, kinds, base.gaps, name="synthetic.ifetch_mix"
    )


def default_verification_traces(num_accesses: int = 12_000) -> dict[str, Trace]:
    """The default trace set: GAP x SPEC x the IFETCH mix."""
    traces = dict(
        gap_suite(
            scale=12, degree=8, kernels=("bfs", "pr"), max_accesses=num_accesses
        )
    )
    for suite, name in (("spec06", "mcf"), ("spec17", "lbm_r")):
        trace = build_spec_workload(suite, name, num_accesses=num_accesses)
        traces[trace.name] = trace
    mix = ifetch_mix(num_accesses)
    traces[mix.name] = mix
    return traces


def verify_fastpath(
    config: MachineConfig | None = None,
    policies: Sequence[str] | None = None,
    traces: Mapping[str, Trace] | None = None,
    warmup_fractions: Sequence[float] = (0.2,),
    include_telemetry: bool = True,
    progress: bool = False,
    engine: str = "fast",
) -> EquivalenceReport:
    """Compare a candidate engine against the reference across the matrix.

    Parameters mirror the CLI flags; with the defaults this runs every
    registered policy over five traces, telemetry off and on — a few
    hundred simulations, sized to finish in CI smoke time.

    ``engine`` selects the candidate: ``"fast"`` compares the single-run
    fast path, ``"batched"`` runs every policy of a trace through one
    shared :class:`~repro.mem.batch.BatchPlan` (via
    :func:`~repro.mem.batch.simulate_batched`) so the comparison covers
    the plan reuse a batched sweep performs, not just isolated cells.
    Ineligible policies fall back exactly as the real engines do;
    their cases are counted but marked outside ``fast_coverage``.
    """
    if engine not in ("fast", "batched"):
        raise ValueError(
            f"unknown candidate engine {engine!r}; expected 'fast' or 'batched'"
        )
    if config is None:
        config = small_test_machine()
    if policies is None:
        policies = available_policies()
    if traces is None:
        traces = default_verification_traces()
    telemetry_modes: tuple[TelemetryConfig | None, ...] = (None,)
    if include_telemetry:
        telemetry_modes = (None, TelemetryConfig(interval_instructions=5_000))

    if engine == "batched":
        from ..mem.batch import batch_eligible, simulate_batched

        def eligible(policy: str) -> bool:
            return batch_eligible(build_hierarchy(config, policy), trace)
    else:
        def eligible(policy: str) -> bool:
            return fastpath_eligible(build_hierarchy(config, policy), trace)

    cases = []
    for workload, trace in traces.items():
        for warmup in warmup_fractions:
            for tele in telemetry_modes:
                if engine == "batched":
                    candidates = simulate_batched(
                        trace,
                        list(policies),
                        config=config,
                        warmup_fraction=warmup,
                        telemetry=tele,
                    )
                else:
                    candidates = {
                        policy: simulate(
                            trace,
                            config=config,
                            llc_policy=policy,
                            warmup_fraction=warmup,
                            telemetry=tele,
                            engine="fast",
                        )
                        for policy in policies
                    }
                for policy in policies:
                    reference = simulate(
                        trace,
                        config=config,
                        llc_policy=policy,
                        warmup_fraction=warmup,
                        telemetry=tele,
                        engine="reference",
                    )
                    candidate = candidates[policy]
                    matched = _canonical(candidate) == _canonical(reference)
                    mismatched: tuple[str, ...] = ()
                    if not matched:
                        fast_dict = candidate.to_json_dict()
                        ref_dict = reference.to_json_dict()
                        mismatched = tuple(
                            key
                            for key in sorted(set(fast_dict) | set(ref_dict))
                            if fast_dict.get(key) != ref_dict.get(key)
                        )
                    case = EquivalenceCase(
                        workload=workload,
                        policy=policy,
                        telemetry=tele is not None,
                        warmup_fraction=warmup,
                        fast_used=eligible(policy),
                        matched=matched,
                        mismatched_fields=mismatched,
                    )
                    cases.append(case)
                    if progress:
                        import sys

                        print(f"  {case.describe()}", file=sys.stderr)
    return EquivalenceReport(cases=cases)
