"""Parallel, cached sweep execution for (workload x policy) matrices.

Every paper artifact funnels through a (workload x policy) sweep whose
cells are independent, deterministic simulations — embarrassingly
parallel and perfectly cacheable. :class:`SweepEngine` exploits both:

* **Parallelism** — cells fan out over a ``ProcessPoolExecutor``
  (``jobs`` workers); results are reassembled in deterministic
  (workload, policy) order, so a parallel sweep is bit-identical to a
  serial one.
* **Caching** — a content-addressed on-disk :class:`ResultCache` keyed
  on the trace content digest, policy name, machine configuration,
  warm-up fraction and a *simulator-version salt* (a hash of the
  simulation core's own source). Any change to ``repro/core``,
  ``repro/mem`` or ``repro/policies`` changes the salt and invalidates
  every stale entry; ``repro cache prune`` garbage-collects them.
* **Checkpoint/resume** — each finished cell is persisted atomically the
  moment it completes, so an interrupted sweep resumes from its last
  finished cell on the next invocation (the cache *is* the checkpoint).
* **Failure isolation** — with ``isolate_failures=True`` a crashing cell
  records a structured :class:`CellError` and the rest of the matrix
  completes; failed cells are never cached, so a re-run retries them.

:func:`repro.harness.runner.run_matrix` routes through a default engine
configured from the environment (``REPRO_JOBS``, ``REPRO_CACHE_DIR``),
so existing callers get both behaviours transparently.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import traceback as traceback_module
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..core.config import MachineConfig, cascade_lake
from ..core.results import RESULT_SCHEMA_VERSION, SimulationResult
from ..core.simulator import DEFAULT_WARMUP_FRACTION, simulate
from ..errors import (
    CacheIntegrityError,
    ConfigurationError,
    MemoryBudgetError,
    SimulationError,
    SweepInterrupted,
)
from ..resilience.durability import (
    CELL_FAILED,
    CELL_OK,
    CELL_POISONED,
    ENV_JOURNAL_DIR,
    RunJournal,
    ShutdownCoordinator,
    memory_guard,
    sweep_spec_doc,
    write_failure_report,
)
from ..resilience.executor import ResilientExecutor
from ..resilience.policy import FailureKind, RetryPolicy
from ..resilience.report import FailureReport
from ..sampling.spec import SamplingSpec
from ..telemetry.collector import TelemetryConfig
from ..trace.trace import Trace
from .runner import RunMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..resilience.chaos import ChaosPlan

#: Version of one on-disk cache entry's envelope (the ``result`` payload
#: inside carries its own schema version from :mod:`repro.core.results`).
#: v2 added the content ``checksum`` field; v1 entries are treated as
#: cache misses (deleted and re-simulated), never as errors.
CACHE_ENTRY_VERSION = 2

#: Directory under the cache root where corrupt entries are moved. A
#: quarantined entry is evidence (of bad disks, bad RAM, or a writer
#: bug), so it is preserved for inspection instead of deleted; the read
#: path treats it as a miss.
QUARANTINE_DIR = "quarantine"

#: Packages (and single ``.py`` modules, path-relative to the package
#: root) whose source text defines simulation semantics: any edit to
#: them must invalidate cached results. The list must cover the runtime
#: import closure of the simulation entry points — the ``salt-closure``
#: lint pass verifies that statically. Telemetry is included because its
#: profile rides inside ``result.info`` of telemetry-armed cells;
#: ``trace`` because record decoding and kind numbering are semantics;
#: ``errors.py`` and ``lint/sanitize.py`` because the simulator imports
#: them at runtime. ``sampling`` is included because a sampled cell's
#: result depends on plan selection and warm-state synthesis, and
#: ``analysis`` because the sampling features build on
#: :mod:`repro.analysis.phases` window profiling.
SALT_SOURCE_PACKAGES = (
    "analysis",
    "core",
    "mem",
    "policies",
    "sampling",
    "telemetry",
    "trace",
    "errors.py",
    "lint/sanitize.py",
)

#: Environment variables the default engine is configured from.
ENV_JOBS = "REPRO_JOBS"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


def _salt_root() -> Path:
    """The package directory the salt sources are resolved against."""
    import repro

    return Path(repro.__file__).resolve().parent


def salt_source_files(root: Path | None = None) -> list[Path]:
    """Every source file the simulator-version salt is computed over.

    Resolves :data:`SALT_SOURCE_PACKAGES` against the package root:
    plain entries are packages (all ``.py`` files underneath, sorted),
    ``.py`` entries are single modules. Missing entries yield no files —
    the ``engine-salt-coverage`` lint check reports them, so a rename
    cannot silently freeze the salt *and* pass CI.
    """
    if root is None:
        root = _salt_root()
    files: list[Path] = []
    for package in SALT_SOURCE_PACKAGES:
        target = root / package
        if package.endswith(".py"):
            if target.is_file():
                files.append(target)
            continue
        files.extend(
            path
            for path in sorted(target.rglob("*.py"))
            if "__pycache__" not in path.parts
        )
    return files


#: Memoized (source fingerprint, salt) pair — see :func:`simulator_salt`.
_salt_cache: tuple[tuple[tuple[str, int, int], ...], str] | None = None


def _source_fingerprint(files: list[Path]) -> tuple[tuple[str, int, int], ...]:
    """A cheap stat-based digest of the salt sources (path, mtime, size)."""
    return tuple(
        (str(path), stat.st_mtime_ns, stat.st_size)
        for path in files
        for stat in (path.stat(),)
    )


def simulator_salt() -> str:
    """A short hash of the simulation core's source (plus result schema).

    Computed over every file from :func:`salt_source_files` in sorted
    order, so it is stable across processes and machines but changes
    whenever simulation semantics could have changed. Cache entries
    embed it in their key; ``repro cache prune`` deletes entries minted
    under any other salt.

    The content hash is memoized behind a stat fingerprint (path, mtime,
    size) of the source files, so repeated calls are cheap but an edit
    to any salt source mints a fresh salt *within the same process* — a
    long-lived harness never serves cache entries under a stale salt.
    ``simulator_salt.cache_clear()`` drops the memo entirely (tests and
    tools that monkeypatch the salt configuration use it).
    """
    global _salt_cache
    root = _salt_root()
    files = salt_source_files(root)
    fingerprint = _source_fingerprint(files)
    if _salt_cache is not None and _salt_cache[0] == fingerprint:
        return _salt_cache[1]
    h = hashlib.sha256()
    h.update(f"result-schema={RESULT_SCHEMA_VERSION}".encode())
    for path in files:
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    salt = h.hexdigest()[:16]
    _salt_cache = (fingerprint, salt)
    return salt


def _clear_salt_cache() -> None:
    global _salt_cache
    _salt_cache = None


simulator_salt.cache_clear = _clear_salt_cache  # type: ignore[attr-defined]


def cell_key(
    trace: Trace,
    policy: str,
    config: MachineConfig,
    warmup_fraction: float,
    sanitize: bool = False,
    salt: str | None = None,
    telemetry: TelemetryConfig | None = None,
    sampling: SamplingSpec | None = None,
) -> str:
    """The content address of one sweep cell.

    SHA-256 over a canonical JSON document of everything that determines
    the cell's result: the trace's content digest, the policy registry
    name (policy *parameters* live in the policy source, which the salt
    covers), the full machine configuration, the warm-up fraction, the
    sanitize flag and telemetry configuration (both add fields to
    ``result.info``), the sampling spec (a sampled cell is an estimate,
    never interchangeable with a full one) and the simulator salt.
    """
    doc = {
        "trace": trace.digest(),
        "policy": policy,
        "config": config.to_json_dict(),
        "warmup_fraction": warmup_fraction,
        "sanitize": bool(sanitize),
        "telemetry": telemetry.to_json_dict() if telemetry is not None else None,
        "sampling": sampling.to_json_dict() if sampling is not None else None,
        "salt": salt if salt is not None else simulator_salt(),
    }
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_checksum(result_doc: dict) -> str:
    """Content checksum of one cache entry's ``result`` payload.

    SHA-256 over the canonical JSON encoding; stable across load/store
    round trips because ``json`` preserves float representations.
    """
    canonical = json.dumps(result_doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CellError:
    """Structured record of one failed sweep cell."""

    workload: str
    policy: str
    error_type: str
    message: str
    traceback: str = ""
    #: Failure-taxonomy bucket (:class:`repro.resilience.FailureKind`
    #: value); "deterministic" for non-resilient sweeps.
    classification: str = "deterministic"

    def render(self) -> str:
        return f"{self.workload} x {self.policy}: {self.error_type}: {self.message}"


@dataclass
class SweepStats:
    """What the engine did for one sweep."""

    hits: int = 0  # cells loaded from the on-disk cache
    simulated: int = 0  # cells actually run
    errors: int = 0  # cells that failed (isolate_failures=True)
    #: Cells a resumed run journal had already marked complete (a subset
    #: of ``hits``: their results come back from the cache). 0 for fresh
    #: runs and journal-less sweeps.
    resumed: int = 0

    @property
    def cells(self) -> int:
        """Total cells the sweep covered."""
        return self.hits + self.simulated + self.errors


@dataclass
class SweepOutcome:
    """A completed sweep: the matrix plus errors and engine stats."""

    matrix: RunMatrix
    errors: dict[tuple[str, str], CellError] = field(default_factory=dict)
    stats: SweepStats = field(default_factory=SweepStats)
    #: Per-attempt accounting of everything the resilience layer
    #: absorbed; ``None`` for sweeps run without a retry policy.
    failure_report: "FailureReport | None" = None
    #: Identity of the run journal this sweep wrote (``repro sweep
    #: --resume <run_id>``); ``None`` for journal-less sweeps.
    run_id: str | None = None
    journal_path: Path | None = None


@dataclass
class CacheReport:
    """Snapshot of the on-disk cache for ``repro cache stats``."""

    root: str
    current_salt: str
    entries: int = 0
    bytes: int = 0
    by_salt: dict[str, int] = field(default_factory=dict)
    corrupt: int = 0  # live entries failing their content checksum
    quarantined: int = 0  # entries previously moved to quarantine/

    @property
    def stale_entries(self) -> int:
        """Entries minted under a different simulator salt."""
        return sum(
            count for salt, count in self.by_salt.items() if salt != self.current_salt
        )

    def render(self) -> str:
        lines = [
            f"cache root:   {self.root}",
            f"current salt: {self.current_salt}",
            f"entries:      {self.entries} ({self.bytes / 1024:.1f} KiB)",
            f"integrity:    {self.corrupt} corrupt, "
            f"{self.quarantined} quarantined",
        ]
        for salt in sorted(self.by_salt):
            marker = "current" if salt == self.current_salt else "stale"
            lines.append(f"  salt {salt}: {self.by_salt[salt]} entries ({marker})")
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """Result of a full-cache integrity pass (``repro cache verify``)."""

    root: str
    checked: int = 0
    ok: int = 0
    quarantined: int = 0  # corrupt entries moved this pass
    stale_format: int = 0  # well-formed entries with an old envelope version
    previously_quarantined: int = 0  # entries already in quarantine/ before

    @property
    def clean(self) -> bool:
        """No corruption found, now or by any earlier pass.

        ``repro cache verify`` exits nonzero unless this holds, so a CI
        gate catches corruption even when an earlier sweep (whose read
        path quarantines silently) already moved the entry aside.
        """
        return self.quarantined == 0 and self.previously_quarantined == 0

    def to_json_dict(self) -> dict:
        return {
            "root": self.root,
            "checked": self.checked,
            "ok": self.ok,
            "quarantined": self.quarantined,
            "stale_format": self.stale_format,
            "previously_quarantined": self.previously_quarantined,
            "clean": self.clean,
        }

    def render(self) -> str:
        return (
            f"verified {self.checked} entries under {self.root}: "
            f"{self.ok} ok, {self.quarantined} corrupt (quarantined), "
            f"{self.stale_format} stale-format, "
            f"{self.previously_quarantined} previously quarantined"
        )


class ResultCache:
    """Content-addressed on-disk store of :class:`SimulationResult`s.

    Layout: ``root/<salt>/<key[:2]>/<key>.json`` — grouping by salt makes
    pruning stale generations a directory removal, and the two-character
    fan-out keeps directories small on big sweeps. Writes go through a
    temp file + ``os.replace`` so a crash mid-write can never leave a
    half-written entry behind; a corrupt or schema-mismatched entry is
    treated as a miss and deleted.

    An unwritable cache location (read-only filesystem, root shadowed by
    a file, permission loss mid-sweep, ENOSPC) degrades to uncached
    operation with a single :class:`RuntimeWarning` — a sweep never dies
    because its cache directory did.

    ``max_bytes`` bounds the cache's disk footprint: after every store
    the least-recently-used entries (by file mtime — loads touch their
    entry) are pruned until the total fits the budget, so an unattended
    sweep service cannot fill the disk. The entry just written always
    survives, even if it alone exceeds the budget.
    """

    def __init__(
        self,
        root: str | Path,
        salt: str | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(
                f"ResultCache.max_bytes must be positive, got {max_bytes}"
            )
        self.root = Path(root)
        self.salt = salt if salt is not None else simulator_salt()
        self.max_bytes = max_bytes
        self._disabled = False
        #: Corrupt entries this instance moved to quarantine (the sweep
        #: engine snapshots it around a run for the failure report).
        self.quarantined_count = 0
        #: Entries the byte budget evicted (LRU) over this instance's life.
        self.budget_evictions = 0

    def _disable(self, exc: OSError) -> None:
        """Fall back to uncached operation after a filesystem failure."""
        if not self._disabled:
            self._disabled = True
            warnings.warn(
                f"result cache at {self.root} is unusable ({exc}); "
                "continuing without caching",
                RuntimeWarning,
                stacklevel=3,
            )

    def path_for(self, key: str) -> Path:
        return self.root / self.salt / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never trust it, never destroy it)."""
        quarantine = self.root / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            self.quarantined_count += 1
        except OSError as exc:
            self._disable(exc)

    @staticmethod
    def _validate_entry(doc: dict) -> SimulationResult:
        """Decode one entry document, enforcing its content checksum.

        Raises :class:`~repro.errors.CacheIntegrityError` on a checksum
        mismatch and :class:`SimulationError` on schema problems.
        """
        if doc.get("entry_version") != CACHE_ENTRY_VERSION:
            raise SimulationError("cache entry version mismatch")
        result_doc = doc["result"]
        expected = doc.get("checksum")
        if expected != result_checksum(result_doc):
            raise CacheIntegrityError(
                f"cache entry checksum mismatch (stored {expected!r})"
            )
        return SimulationResult.from_json_dict(result_doc)

    def load(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or None on miss/corruption.

        A corrupt entry (unreadable JSON or checksum mismatch) is moved
        to the quarantine directory and treated as a miss; an entry with
        an outdated envelope version is deleted (old schema, not
        corruption) and treated as a miss.
        """
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            result = self._validate_entry(doc)
            if self.max_bytes is not None:
                try:
                    os.utime(path)  # LRU recency for the byte budget
                except OSError:
                    pass  # read-only cache: hits still count, just not as recency
            return result
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, CacheIntegrityError,
                KeyError, TypeError):
            self._quarantine(path)  # corrupt entry: preserve the evidence
            return None
        except SimulationError:
            try:
                path.unlink(missing_ok=True)  # old/foreign schema = plain miss
            except OSError as exc:
                self._disable(exc)
            return None
        except OSError as exc:  # unreadable root (e.g. shadowed by a file)
            self._disable(exc)
            return None

    def store(self, key: str, result: SimulationResult) -> Path | None:
        """Atomically persist one cell result under ``key``.

        Returns the entry path, or ``None`` when the cache location is
        unwritable (the failure is warned about once and the cache
        degrades to a no-op).
        """
        if self._disabled:
            return None
        path = self.path_for(key)
        result_doc = result.to_json_dict()
        doc = {
            "entry_version": CACHE_ENTRY_VERSION,
            "salt": self.salt,
            "key": key,
            "checksum": result_checksum(result_doc),
            "result": result_doc,
        }
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._write_payload(tmp, json.dumps(doc))
            os.replace(tmp, path)
        except OSError as exc:
            # Never leave a partial temp file behind a failed write — a
            # full disk is exactly when stray files hurt most.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            self._disable(exc)
            return None
        if self.max_bytes is not None:
            self._enforce_budget(keep=path)
        return path

    def _write_payload(self, tmp: Path, text: str) -> None:
        """Write one entry's bytes to its temp file.

        The single seam where entry bytes touch the disk — the chaos
        harness's quota-limited cache overrides it to raise a real
        ``ENOSPC``, so the disk-full scenario exercises the genuine
        cleanup/degradation path above.
        """
        tmp.write_text(text, encoding="utf-8")

    def _enforce_budget(self, keep: Path) -> None:
        """LRU-prune entries until the cache fits ``max_bytes``.

        ``keep`` (the entry just stored) is never pruned: evicting the
        result we just computed would make the budget self-defeating.
        Prune failures degrade the cache rather than the sweep.
        """
        assert self.max_bytes is not None
        entries: list[tuple[float, int, Path]] = []
        total = 0
        try:
            for path in self._entry_files():
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue  # another sweep pruned it first
                total += stat.st_size
                entries.append((stat.st_mtime, stat.st_size, path))
            if total <= self.max_bytes:
                return
            entries.sort()  # oldest mtime first = least recently used
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep:
                    continue
                path.unlink(missing_ok=True)
                total -= size
                self.budget_evictions += 1
        except OSError as exc:
            self._disable(exc)

    def _entry_files(self) -> list[Path]:
        """Live entry files (quarantined entries are not entries)."""
        if not self.root.is_dir():
            return []
        return [
            p
            for p in self.root.rglob("*.json")
            if p.is_file()
            and p.relative_to(self.root).parts[0] != QUARANTINE_DIR
        ]

    def _quarantined_files(self) -> list[Path]:
        quarantine = self.root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return [p for p in quarantine.iterdir() if p.is_file()]

    def stats(self) -> CacheReport:
        """Count entries and bytes by salt, and verify content checksums.

        ``corrupt`` counts live entries whose checksum no longer matches
        their payload (read-only detection; ``verify`` quarantines
        them), ``quarantined`` counts entries already moved aside.
        """
        report = CacheReport(root=str(self.root), current_salt=self.salt)
        for path in self._entry_files():
            salt = path.relative_to(self.root).parts[0]
            report.entries += 1
            report.bytes += path.stat().st_size
            report.by_salt[salt] = report.by_salt.get(salt, 0) + 1
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                self._validate_entry(doc)
            except (SimulationError, OSError):
                pass  # stale schema / transient read failure: not corruption
            except Exception:
                report.corrupt += 1
        report.quarantined = len(self._quarantined_files())
        return report

    def verify(self) -> VerifyReport:
        """Integrity-check every entry; quarantine the corrupt ones.

        Old-envelope entries are counted as ``stale_format`` and left in
        place (they are schema history, not corruption; the read path
        already treats them as misses and ``prune`` removes stale
        generations wholesale).
        """
        report = VerifyReport(root=str(self.root))
        report.previously_quarantined = len(self._quarantined_files())
        for path in self._entry_files():
            report.checked += 1
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                self._validate_entry(doc)
            except SimulationError:
                report.stale_format += 1
            except OSError as exc:
                self._disable(exc)
            except Exception:
                self._quarantine(path)
                report.quarantined += 1
            else:
                report.ok += 1
        return report

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        A read-only cache directory warns and reports zero removals
        instead of raising.
        """
        removed = len(self._entry_files())
        if self.root.is_dir():
            try:
                shutil.rmtree(self.root)
            except OSError as exc:
                self._disable(exc)
                return 0
        return removed

    def prune(self) -> int:
        """Delete entries minted under a stale simulator salt.

        A read-only cache directory warns and reports what could be
        removed before the failure instead of raising.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        try:
            for child in self.root.iterdir():
                if (
                    child.is_dir()
                    and child.name != self.salt
                    and child.name != QUARANTINE_DIR  # evidence, not staleness
                ):
                    stale = sum(1 for _ in child.rglob("*.json"))
                    shutil.rmtree(child)
                    removed += stale
            # Stray temp files from crashed writers are stale by definition.
            for tmp in self.root.rglob("*.tmp-*"):
                tmp.unlink(missing_ok=True)
        except OSError as exc:
            self._disable(exc)
        return removed


def _simulate_cell(
    workload: str,
    policy: str,
    trace: Trace,
    config: MachineConfig,
    warmup_fraction: float,
    sanitize: bool,
    telemetry: TelemetryConfig | None = None,
    engine: str = "fast",
    sampling: SamplingSpec | None = None,
    memory_budget_mb: float | None = None,
) -> tuple[str, str, SimulationResult]:
    """Worker entry point: simulate one cell (runs in a pool process).

    ``memory_budget_mb`` arms the per-worker RSS watchdog
    (:func:`repro.resilience.durability.memory_guard`): a cell whose
    resident set exceeds the budget raises a structured
    :class:`~repro.errors.MemoryBudgetError` instead of drawing the OS
    OOM-killer onto the whole pool.
    """
    with memory_guard(memory_budget_mb):
        result = simulate(
            trace,
            config=config,
            llc_policy=policy,
            warmup_fraction=warmup_fraction,
            sanitize=sanitize,
            telemetry=telemetry,
            engine=engine,
            sampling=sampling,
        )
    return workload, policy, result


#: Per-worker trace registry installed by the pool initializer. Lives at
#: module scope so worker processes (which import this module afresh)
#: can resolve traces submitted by name instead of by value.
_WORKER_TRACES: dict[str, Trace] = {}


def _install_worker_traces(traces: dict[str, Trace]) -> None:
    """Pool initializer: materialize the sweep's traces in this worker.

    Runs once per worker process, so each trace crosses the process
    boundary at most once per worker instead of once per (cell ×
    attempt) submission — previously a P-policy sweep re-pickled every
    trace P times (more under retries).
    """
    _WORKER_TRACES.clear()
    _WORKER_TRACES.update(traces)


def _simulate_cell_by_name(
    workload: str,
    policy: str,
    config: MachineConfig,
    warmup_fraction: float,
    sanitize: bool,
    telemetry: TelemetryConfig | None = None,
    engine: str = "fast",
    sampling: SamplingSpec | None = None,
    memory_budget_mb: float | None = None,
) -> tuple[str, str, SimulationResult]:
    """Worker entry point resolving the trace from the worker registry."""
    trace = _WORKER_TRACES.get(workload)
    if trace is None:
        raise SimulationError(
            f"worker has no registered trace for workload {workload!r}; "
            "was the pool created without the trace initializer?"
        )
    return _simulate_cell(
        workload, policy, trace, config, warmup_fraction, sanitize, telemetry,
        engine, sampling, memory_budget_mb,
    )


def _pending_traces(
    pending: list[tuple[str, str]], traces: dict[str, Trace]
) -> dict[str, Trace]:
    """The subset of traces the pending cells actually reference."""
    needed: dict[str, Trace] = {}
    for workload, _ in pending:
        if workload not in needed:
            needed[workload] = traces[workload]
    return needed


def _simulate_group(
    workload: str,
    policies: list[str],
    trace: Trace,
    config: MachineConfig,
    warmup_fraction: float,
    telemetry: TelemetryConfig | None = None,
) -> tuple[str, list[tuple[str, bool, SimulationResult | None]]]:
    """Worker entry point: one trace's cells through a shared batch plan.

    Builds one :class:`~repro.mem.batch.BatchPlan` and replays every
    batch-eligible policy against it. Returns per-policy outcomes as
    ``(policy, completed, result)``; cells that are not batch-eligible,
    or whose batched attempt raised, come back ``completed=False`` so
    the engine can route them through the ordinary per-cell machinery
    (with its own failure classification and retry semantics) instead of
    failing the whole group.
    """
    from ..core.simulator import build_hierarchy
    from ..mem.batch import BatchSimulator, batch_eligible

    sim: BatchSimulator | None = None
    plan_failed = False
    outcomes: list[tuple[str, bool, SimulationResult | None]] = []
    for policy in policies:
        try:
            hierarchy = build_hierarchy(config, policy)
            if plan_failed or not batch_eligible(hierarchy, trace):
                outcomes.append((policy, False, None))
                continue
            if sim is None:
                try:
                    sim = BatchSimulator(trace, config, warmup_fraction, telemetry)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    # Plan construction is shared state: if it fails once
                    # it fails for every policy, so stop re-attempting.
                    plan_failed = True
                    outcomes.append((policy, False, None))
                    continue
            outcomes.append((policy, True, sim.run_cell(policy, hierarchy)))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            outcomes.append((policy, False, None))
    return workload, outcomes


def _simulate_group_by_name(
    workload: str,
    policies: list[str],
    config: MachineConfig,
    warmup_fraction: float,
    telemetry: TelemetryConfig | None = None,
) -> tuple[str, list[tuple[str, bool, SimulationResult | None]]]:
    """Group worker entry resolving the trace from the worker registry."""
    trace = _WORKER_TRACES.get(workload)
    if trace is None:
        raise SimulationError(
            f"worker has no registered trace for workload {workload!r}; "
            "was the pool created without the trace initializer?"
        )
    return _simulate_group(
        workload, policies, trace, config, warmup_fraction, telemetry
    )


class SweepEngine:
    """Executes (workload x policy) sweeps with parallelism and caching.

    Parameters
    ----------
    cache_dir:
        Root of the on-disk result cache; ``None`` disables caching.
    jobs:
        Worker processes for cells that must be simulated. ``1`` (the
        default) runs serially in-process.
    salt:
        Override the simulator-version salt (tests use this to model a
        core change without editing source files).
    journal_dir:
        Directory of crash-safe run journals (see
        :mod:`repro.resilience.durability`); each journaled sweep can be
        resumed after ``kill -9`` at the first incomplete cell. ``None``
        (the default) disables journaling; journaling also requires a
        cache, because the cache holds the results the journal points at.
    cache_max_bytes:
        Byte budget of the result cache: after every store the least-
        recently-used entries are pruned until the cache fits. ``None``
        leaves the cache unbounded.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        salt: str | None = None,
        journal_dir: str | Path | None = None,
        cache_max_bytes: int | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs or 1))
        self.salt = salt if salt is not None else simulator_salt()
        self.cache = (
            ResultCache(cache_dir, salt=self.salt, max_bytes=cache_max_bytes)
            if cache_dir
            else None
        )
        self.journal_dir = Path(journal_dir) if journal_dir else None

    @classmethod
    def from_env(cls, jobs: int | None = None) -> "SweepEngine":
        """An engine configured from the ``REPRO_*`` environment.

        ``REPRO_JOBS``, ``REPRO_CACHE_DIR``, ``REPRO_JOURNAL_DIR`` and
        ``REPRO_CACHE_MAX_BYTES`` are honoured. With none of them set
        this is a serial, uncached, journal-less engine — exactly the
        pre-engine behaviour, which keeps unit tests hermetic.
        """
        if jobs is None:
            raw = os.environ.get(ENV_JOBS, "").strip()
            jobs = int(raw) if raw else 1
        cache_dir = os.environ.get(ENV_CACHE_DIR, "").strip() or None
        journal_dir = os.environ.get(ENV_JOURNAL_DIR, "").strip() or None
        raw_budget = os.environ.get(ENV_CACHE_MAX_BYTES, "").strip()
        return cls(
            cache_dir=cache_dir,
            jobs=jobs,
            journal_dir=journal_dir if cache_dir else None,
            cache_max_bytes=int(raw_budget) if raw_budget else None,
        )

    # -- sweep execution ----------------------------------------------------

    def run(
        self,
        traces: dict[str, Trace] | list[Trace],
        policies: list[str],
        config: MachineConfig | None = None,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        progress: Callable[[str, str], None] | None = None,
        sanitize: bool = False,
        isolate_failures: bool = False,
        telemetry: TelemetryConfig | None = None,
        retry: RetryPolicy | None = None,
        chaos: "ChaosPlan | None" = None,
        engine: str = "fast",
        sampling: SamplingSpec | None = None,
        memory_budget_mb: float | None = None,
        shutdown: ShutdownCoordinator | None = None,
        drain_timeout: float = 30.0,
        journal_context: dict | None = None,
        failure_report_path: str | Path | None = None,
    ) -> SweepOutcome:
        """Run every (trace, policy) cell and assemble a :class:`RunMatrix`.

        Cells present in the cache are loaded without simulating; the
        rest run serially or across ``jobs`` worker processes. Cell
        results land in the matrix in deterministic (workload, policy)
        order regardless of completion order. With ``isolate_failures``
        a failing cell becomes a :class:`CellError` in the outcome and
        the rest of the sweep completes; otherwise the first failure
        propagates (completed cells are already checkpointed, so a rerun
        resumes past them). ``telemetry`` arms interval-resolved
        observability (:mod:`repro.telemetry`) on every cell; the
        configuration is part of each cell's cache key, so telemetry-
        armed results never collide with plain ones.

        ``retry`` arms the resilience layer (:mod:`repro.resilience`):
        transient failures are retried with deterministic backoff, a
        ``cell_timeout`` is enforced by a watchdog, worker-pool deaths
        are recovered, and every absorbed failure lands in the outcome's
        :class:`~repro.resilience.report.FailureReport`. A timeout (or a
        ``chaos`` plan) forces pool execution even at ``jobs=1``, since
        a hung in-process cell cannot be aborted. ``chaos`` injects
        faults from a seeded schedule (see
        :mod:`repro.resilience.chaos`); neither knob affects cell cache
        keys because neither changes what a *successful* cell computes.

        ``engine`` selects the simulation engine for uncached cells:
        ``"fast"`` (default) and ``"reference"`` run per cell;
        ``"batched"`` (:mod:`repro.mem.batch`) groups cells by workload
        and replays every batch-eligible policy against one shared
        access-stream plan, falling back to the ordinary per-cell path
        for ineligible or failed cells. All three are bit-identical, so
        the engine choice is deliberately *not* part of the cache key.

        ``sampling`` runs every cell under representative-interval
        sampling (:mod:`repro.sampling`); the spec *is* part of the
        cache key, because sampled cells are estimates. Sampled sweeps
        are bit-identical between serial and parallel execution (the
        plan is a pure function of trace and spec), skip the batched
        group path (a batch plan replays every access by construction)
        and refuse telemetry, sanitize and chaos, which all need the
        full access stream.

        ``memory_budget_mb`` arms a per-worker RSS watchdog on every
        cell: a cell that blows the budget fails with a structured
        :class:`~repro.errors.MemoryBudgetError` (retried with a strike
        under ``retry``; classified poison otherwise) instead of drawing
        the OS OOM-killer onto the pool.

        With the engine's ``journal_dir`` set (and a cache configured),
        the sweep writes a crash-safe run journal: every finished cell
        is fsync'd as it completes, and re-running the identical sweep
        spec auto-resumes at the first incomplete cell — even after
        ``kill -9``. ``journal_context`` is an opaque document stored in
        the journal header (the CLI keeps its argv equivalent there so
        ``repro sweep --resume <run-id>`` can rebuild the sweep).

        ``shutdown`` (a :class:`~repro.resilience.durability.ShutdownCoordinator`)
        makes the sweep stop cooperatively on SIGTERM/SIGINT: submission
        halts, in-flight cells drain for at most ``drain_timeout``
        seconds, the journal and failure report flush, and the sweep
        raises :class:`~repro.errors.SweepInterrupted` naming the run id
        to resume from. ``failure_report_path`` persists the
        schema-versioned failure-report JSON there (default, when
        journaled: next to the journal) — including on interrupts, so a
        partial sweep still leaves complete accounting behind.
        """
        if engine not in ("fast", "reference", "batched"):
            raise ConfigurationError(
                f"unknown sweep engine {engine!r}; "
                "expected 'fast', 'reference' or 'batched'"
            )
        if sampling is not None:
            if telemetry is not None or sanitize:
                raise ConfigurationError(
                    "sampling cannot be combined with telemetry or the "
                    "sanitizer: both need every access of the measured region"
                )
            if chaos is not None:
                raise ConfigurationError(
                    "sampling cannot be combined with chaos injection"
                )
        if isinstance(traces, list):
            traces = {t.name: t for t in traces}
        if config is None:
            config = cascade_lake()

        cells = [(w, p) for w in traces for p in policies]
        stats = SweepStats()
        errors: dict[tuple[str, str], CellError] = {}
        resolved: dict[tuple[str, str], SimulationResult] = {}
        keys: dict[tuple[str, str], str] = {}
        pending: list[tuple[str, str]] = []
        quarantined_before = (
            self.cache.quarantined_count if self.cache is not None else 0
        )

        # The journal needs the cache: the journal records *that* a cell
        # finished, the cache holds *what* it computed. Without a cache
        # a resumed run could not restore any result.
        journal: RunJournal | None = None
        if self.journal_dir is not None and self.cache is not None:
            spec_doc = sweep_spec_doc(
                trace_digests={w: traces[w].digest() for w in traces},
                policies=list(policies),
                config_doc=config.to_json_dict(),
                warmup_fraction=warmup_fraction,
                sanitize=sanitize,
                telemetry_doc=(
                    telemetry.to_json_dict() if telemetry is not None else None
                ),
                sampling_doc=(
                    sampling.to_json_dict() if sampling is not None else None
                ),
                salt=self.salt,
            )
            journal = RunJournal.open_or_create(
                self.journal_dir, spec_doc, context=journal_context
            )
            if journal is not None and journal.resumed:
                stats.resumed = sum(
                    1 for cell in cells if cell in journal.completed_cells
                )

        for workload, policy in cells:
            if progress is not None:
                progress(workload, policy)
            if self.cache is not None:
                key = cell_key(
                    traces[workload], policy, config, warmup_fraction,
                    sanitize=sanitize, salt=self.salt, telemetry=telemetry,
                    sampling=sampling,
                )
                keys[(workload, policy)] = key
                cached = self.cache.load(key)
                if cached is not None:
                    resolved[(workload, policy)] = cached
                    stats.hits += 1
                    if journal is not None:
                        # Hit bursts are frequent and individually cheap
                        # to lose; batch their fsync into one flush.
                        journal.record_cell(
                            workload, policy, CELL_OK, key=key, sync=False
                        )
                    continue
            pending.append((workload, policy))
        if journal is not None:
            journal.flush()

        def record(workload: str, policy: str, result: SimulationResult) -> None:
            resolved[(workload, policy)] = result
            stats.simulated += 1
            key = None
            if self.cache is not None:
                key = keys[(workload, policy)]
                self.cache.store(key, result)
            if journal is not None:
                # Cache store first, then the fsync'd journal record: a
                # crash in between leaves a cache entry without a record
                # (a plain hit on resume), never a record without data.
                journal.record_cell(workload, policy, CELL_OK, key=key)

        def record_failure(
            workload: str,
            policy: str,
            exc: BaseException,
            classification: str = FailureKind.DETERMINISTIC.value,
        ) -> None:
            if journal is not None:
                status = (
                    CELL_POISONED
                    if classification == FailureKind.POISON.value
                    else CELL_FAILED
                )
                journal.record_cell(
                    workload, policy, status, classification=classification
                )
            if not isolate_failures:
                raise exc
            stats.errors += 1
            errors[(workload, policy)] = CellError(
                workload=workload,
                policy=policy,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback="".join(
                    traceback_module.format_exception(type(exc), exc, exc.__traceback__)
                ),
                classification=classification,
            )

        cell_engine = "fast" if engine == "batched" else engine
        failure_report = (
            FailureReport() if retry is not None or chaos is not None else None
        )
        finished = False
        try:
            # Batched execution runs first and only handles what it can:
            # eligible cells complete through shared per-trace plans, the
            # rest fall through to the ordinary per-cell machinery below
            # (which preserves retry classification, chaos injection and
            # sanitizer semantics the batch path deliberately excludes).
            if (
                engine == "batched" and pending and not sanitize
                and chaos is None and sampling is None
            ):
                pending = self._run_batched(
                    pending, traces, config, warmup_fraction, telemetry, record,
                )

            if failure_report is not None:
                self._run_resilient(
                    pending, traces, config, warmup_fraction, sanitize,
                    telemetry,
                    retry if retry is not None else RetryPolicy(),
                    chaos, record, record_failure, cell_engine, sampling,
                    failure_report, memory_budget_mb, shutdown, drain_timeout,
                )
                if self.cache is not None:
                    failure_report.quarantined_cache_entries = (
                        self.cache.quarantined_count - quarantined_before
                    )
            elif self.jobs > 1 and len(pending) > 1:
                self._run_parallel(
                    pending, traces, config, warmup_fraction, sanitize,
                    telemetry, record, record_failure, cell_engine, sampling,
                    memory_budget_mb, shutdown, drain_timeout,
                )
            else:
                for workload, policy in pending:
                    if shutdown is not None and shutdown.requested:
                        break  # stop submitting; drained cells are recorded
                    try:
                        _, _, result = _simulate_cell(
                            workload, policy, traces[workload], config,
                            warmup_fraction, sanitize, telemetry, cell_engine,
                            sampling, memory_budget_mb,
                        )
                    except (KeyboardInterrupt, SystemExit):
                        raise  # never swallowed into a CellError
                    except (MemoryError, MemoryBudgetError) as exc:
                        # Poison: an OOM-ing (or budget-blowing) cell will
                        # do it again; without a retry policy there is no
                        # strike ladder, so isolate it outright.
                        record_failure(
                            workload, policy, exc,
                            classification=FailureKind.POISON.value,
                        )
                    except Exception as exc:
                        record_failure(workload, policy, exc)
                    else:
                        record(workload, policy, result)

            if (
                shutdown is not None
                and shutdown.requested
                and len(resolved) + len(errors) < len(cells)
            ):
                done = len(resolved) + len(errors)
                raise SweepInterrupted(
                    f"sweep interrupted by {shutdown.signal_name or 'shutdown'}"
                    f" after {done}/{len(cells)} cells"
                    + (
                        f"; resume with run id {journal.run_id}"
                        if journal is not None
                        else ""
                    ),
                    run_id=journal.run_id if journal is not None else None,
                )
            finished = True
        finally:
            # Runs on success, interrupt (including KeyboardInterrupt on
            # the serial path) and failure alike: seal the journal and
            # persist the failure report so a partial sweep still leaves
            # complete, resumable accounting on disk.
            if journal is not None:
                journal.close(
                    complete=finished
                    and len(resolved) + len(errors) == len(cells)
                )
            if failure_report is not None:
                report_target = failure_report_path
                if report_target is None and journal is not None:
                    report_target = journal.failure_report_path
                if report_target is not None:
                    try:
                        write_failure_report(
                            report_target, failure_report.to_json_dict()
                        )
                    except OSError as exc:
                        warnings.warn(
                            f"could not persist the failure report to "
                            f"{report_target} ({exc})",
                            RuntimeWarning,
                            stacklevel=2,
                        )

        matrix = RunMatrix(config=config)
        for workload in traces:
            row = {
                policy: resolved[(workload, policy)]
                for policy in policies
                if (workload, policy) in resolved
            }
            if row:
                matrix.results[workload] = row
        return SweepOutcome(
            matrix=matrix, errors=errors, stats=stats,
            failure_report=failure_report,
            run_id=journal.run_id if journal is not None else None,
            journal_path=journal.path if journal is not None else None,
        )

    def _run_resilient(
        self,
        pending: list[tuple[str, str]],
        traces: dict[str, Trace],
        config: MachineConfig,
        warmup_fraction: float,
        sanitize: bool,
        telemetry: TelemetryConfig | None,
        retry: RetryPolicy,
        chaos: "ChaosPlan | None",
        record: Callable[[str, str, SimulationResult], None],
        record_failure: Callable[..., None],
        engine: str = "fast",
        sampling: SamplingSpec | None = None,
        report: FailureReport | None = None,
        memory_budget_mb: float | None = None,
        shutdown: ShutdownCoordinator | None = None,
        drain_timeout: float = 30.0,
    ) -> FailureReport:
        """Run pending cells through the fault-tolerant executor.

        The watchdog and chaos injection both need cells in worker
        processes (a hung or crashing in-process cell takes the sweep
        with it), so either forces the pool path even at ``jobs=1``.
        ``report`` is filled in place (the engine passes its own so the
        partial report survives an interrupt mid-run).
        """
        if report is None:
            report = FailureReport()
        use_pool = (
            self.jobs > 1 or retry.cell_timeout is not None or chaos is not None
        )

        if chaos is not None:
            from ..resilience.chaos import _chaos_simulate_cell

            def submit(pool, workload: str, policy: str, attempt: int):  # noqa: ARG001
                return pool.submit(
                    _chaos_simulate_cell, chaos, workload, policy,
                    traces[workload], config, warmup_fraction, sanitize,
                    telemetry, memory_budget_mb,
                )
        else:
            def submit(pool, workload: str, policy: str, attempt: int):  # noqa: ARG001
                # Traces live in the worker-side registry (installed by
                # the pool initializer below); submit names only.
                return pool.submit(
                    _simulate_cell_by_name, workload, policy,
                    config, warmup_fraction, sanitize, telemetry, engine,
                    sampling, memory_budget_mb,
                )

        def run_inline(workload: str, policy: str, attempt: int):  # noqa: ARG001
            return _simulate_cell(
                workload, policy, traces[workload], config, warmup_fraction,
                sanitize, telemetry, engine, sampling, memory_budget_mb,
            )

        def on_success(workload: str, policy: str, payload: object) -> None:
            _, _, result = payload  # type: ignore[misc]
            record(workload, policy, result)

        def on_failure(
            workload: str, policy: str, exc: BaseException, kind: FailureKind
        ) -> None:
            record_failure(workload, policy, exc, classification=kind.value)

        workers = min(self.jobs, len(pending)) or 1

        def pool_factory() -> ProcessPoolExecutor:
            # Every pool generation (including watchdog rebuilds) gets
            # the trace registry, so by-name submission keeps working
            # after a pool recycle.
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_install_worker_traces,
                initargs=(_pending_traces(pending, traces),),
            )

        executor = ResilientExecutor(
            retry=retry,
            workers=workers,
            submit=submit,
            run_inline=run_inline,
            on_success=on_success,
            on_failure=on_failure,
            report=report,
            pool_factory=pool_factory,
            shutdown=shutdown,
            drain_timeout=drain_timeout,
        )
        if use_pool and pending:
            executor.run_pool(pending)
        else:
            executor.run_serial(pending)
        return report

    def _run_parallel(
        self,
        pending: list[tuple[str, str]],
        traces: dict[str, Trace],
        config: MachineConfig,
        warmup_fraction: float,
        sanitize: bool,
        telemetry: TelemetryConfig | None,
        record: Callable[[str, str, SimulationResult], None],
        record_failure: Callable[..., None],
        engine: str = "fast",
        sampling: SamplingSpec | None = None,
        memory_budget_mb: float | None = None,
        shutdown: ShutdownCoordinator | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        """Fan pending cells out over a process pool, streaming results.

        Results are recorded (and checkpointed to the cache) as each
        future completes, not at the end — an interrupt mid-sweep keeps
        everything already finished. With ``shutdown`` armed the wait
        loop polls the flag (Python signal handlers cannot interrupt a
        ``concurrent.futures`` wait): on request, queued cells are
        cancelled and running ones drain for ``drain_timeout`` seconds.
        """
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_install_worker_traces,
            initargs=(_pending_traces(pending, traces),),
        ) as pool:
            futures: dict[Future, tuple[str, str]] = {
                pool.submit(
                    _simulate_cell_by_name, workload, policy,
                    config, warmup_fraction, sanitize, telemetry, engine,
                    sampling, memory_budget_mb,
                ): (workload, policy)
                for workload, policy in pending
            }
            outstanding = set(futures)

            def consume(done: set[Future]) -> None:
                for future in done:
                    if future.cancelled():
                        continue  # shutdown cancelled it before it started
                    workload, policy = futures[future]
                    try:
                        _, _, result = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise  # never swallowed into a CellError
                    except (MemoryError, MemoryBudgetError) as exc:
                        # Poison, not a generic cell failure: retrying
                        # an OOM-ing cell only re-kills workers.
                        record_failure(
                            workload, policy, exc,
                            classification=FailureKind.POISON.value,
                        )
                    except Exception as exc:
                        record_failure(workload, policy, exc)
                    else:
                        record(workload, policy, result)

            try:
                while outstanding:
                    # Checked before waiting so a request that landed
                    # before (or between) wait slices cancels queued
                    # cells immediately instead of letting them start
                    # during one more slice.
                    if shutdown is not None and shutdown.requested:
                        # Graceful stop: queued cells are abandoned (the
                        # journal marks them incomplete, so a resume
                        # re-runs them); already-running cells get a
                        # drain window to finish and be checkpointed.
                        for future in outstanding:
                            future.cancel()
                        deadline = time.monotonic() + drain_timeout
                        while outstanding and time.monotonic() < deadline:
                            done, outstanding = wait(
                                outstanding, timeout=0.25,
                                return_when=FIRST_COMPLETED,
                            )
                            consume(done)
                        pool.shutdown(wait=False, cancel_futures=True)
                        return
                    slice_timeout = 0.5 if shutdown is not None else None
                    done, outstanding = wait(
                        outstanding, timeout=slice_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    consume(done)
            except BaseException:
                # Abandon queued cells so a failing sweep (or Ctrl-C)
                # doesn't wait for the whole matrix; completed cells are
                # already checkpointed in the cache.
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    def _run_batched(
        self,
        pending: list[tuple[str, str]],
        traces: dict[str, Trace],
        config: MachineConfig,
        warmup_fraction: float,
        telemetry: TelemetryConfig | None,
        record: Callable[[str, str, SimulationResult], None],
    ) -> list[tuple[str, str]]:
        """Run pending cells through per-trace batch plans.

        Cells are grouped by workload and each group runs every
        batch-eligible policy against one shared
        :class:`~repro.mem.batch.BatchPlan` (trace decoded once, core +
        upper-hierarchy work amortized across policies). Completed cells
        are recorded (and checkpointed) immediately; everything the
        batch path could not complete — ineligible policies, plan
        failures, individual cell errors, whole-group worker crashes —
        is returned in deterministic order for the ordinary per-cell
        machinery, which owns failure classification and retries.
        """
        groups: dict[str, list[str]] = {}
        for workload, policy in pending:
            groups.setdefault(workload, []).append(policy)
        leftover: set[tuple[str, str]] = set()

        def consume(
            workload: str,
            outcomes: list[tuple[str, bool, SimulationResult | None]],
        ) -> None:
            for policy, completed, result in outcomes:
                if completed and result is not None:
                    record(workload, policy, result)
                else:
                    leftover.add((workload, policy))

        if self.jobs > 1 and len(groups) > 1:
            workers = min(self.jobs, len(groups))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_install_worker_traces,
                initargs=(_pending_traces(pending, traces),),
            ) as pool:
                futures: dict[Future, tuple[str, list[str]]] = {
                    pool.submit(
                        _simulate_group_by_name, workload, policies,
                        config, warmup_fraction, telemetry,
                    ): (workload, policies)
                    for workload, policies in groups.items()
                }
                outstanding = set(futures)
                try:
                    while outstanding:
                        done, outstanding = wait(
                            outstanding, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            workload, policies = futures[future]
                            try:
                                _, outcomes = future.result()
                            except (KeyboardInterrupt, SystemExit):
                                raise
                            except Exception:
                                # A group-level fault (worker death,
                                # registry miss) forfeits only this
                                # trace's batch; its cells retry per
                                # cell where failures are classified.
                                leftover.update(
                                    (workload, policy) for policy in policies
                                )
                            else:
                                consume(workload, outcomes)
                except BaseException:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        else:
            for workload, policies in groups.items():
                try:
                    _, outcomes = _simulate_group(
                        workload, policies, traces[workload], config,
                        warmup_fraction, telemetry,
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    leftover.update((workload, policy) for policy in policies)
                else:
                    consume(workload, outcomes)

        return [cell for cell in pending if cell in leftover]
