"""Per-figure/table experiment drivers (the DESIGN.md experiment index).

Each ``experiment_*`` function regenerates one artifact of the paper's
evaluation — same rows, same series — and returns both the raw data and
a rendered ASCII table. The ``benchmarks/`` directory wraps these in
pytest-benchmark entries, one per artifact.

Traces are built once per process and memoized, so a full benchmark run
pays workload generation once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis.pcstats import PCProfile, pc_profile
from ..analysis.reuse import reuse_cdf, reuse_profile
from ..analysis.stats import geometric_mean
from ..analysis.tables import format_table
from ..core.config import MachineConfig, cascade_lake
from ..core.oracle import simulate_with_opt
from ..core.results import MPKI_LEVELS
from ..core.simulator import simulate
from ..gap.suite import gap_suite
from ..policies.registry import BASELINE_POLICY, PAPER_POLICIES
from ..spec.suite import spec_suite
from ..trace.trace import Trace
from .runner import RunMatrix, run_matrix

#: Traced window sizes, chosen so a full benchmark sweep stays in the
#: tens of minutes on one core while every workload's footprint stays in
#: the paper's miss-dominated regime.
GAP_WINDOW = 400_000
SPEC_WINDOW = 150_000
GAP_SCALE = 19
GAP_DEGREE = 16

#: Reduced sizes used when ``REPRO_SMOKE`` is set: big enough to keep
#: every workload in the paper's miss-dominated regime (the benchmark
#: assertions still hold), small enough that CI's smoke subset finishes
#: in minutes. Individual ``REPRO_GAP_WINDOW``/``REPRO_GAP_SCALE``/
#: ``REPRO_SPEC_WINDOW`` variables override both tiers.
SMOKE_GAP_WINDOW = 120_000
SMOKE_SPEC_WINDOW = 60_000
SMOKE_GAP_SCALE = 16

_TRACE_CACHE: dict[str, dict[str, Trace]] = {}
_MATRIX_CACHE: dict[tuple, RunMatrix] = {}


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def smoke_mode() -> bool:
    """Whether reduced smoke-scale workloads are requested (CI gate)."""
    return bool(os.environ.get("REPRO_SMOKE", "").strip())


def effective_gap_window() -> int:
    """The GAP trace window honouring smoke mode and env overrides."""
    return _env_int(
        "REPRO_GAP_WINDOW", SMOKE_GAP_WINDOW if smoke_mode() else GAP_WINDOW
    )


def effective_gap_scale() -> int:
    """The GAP graph scale honouring smoke mode and env overrides."""
    return _env_int("REPRO_GAP_SCALE", SMOKE_GAP_SCALE if smoke_mode() else GAP_SCALE)


def effective_spec_window() -> int:
    """The SPEC trace window honouring smoke mode and env overrides."""
    return _env_int(
        "REPRO_SPEC_WINDOW", SMOKE_SPEC_WINDOW if smoke_mode() else SPEC_WINDOW
    )


def _cached_matrix(
    suite_key: str,
    traces: dict[str, Trace],
    policies: list[str],
    config: MachineConfig,
) -> RunMatrix:
    """Memoize (suite, policies) sweeps so experiments sharing a matrix
    (Figure 3 and E1, for instance) pay for it once per process."""
    # MachineConfig is a frozen dataclass, hence hashable: two configs
    # with equal parameters share cache entries regardless of identity.
    # Trace digests pin the entry to the actual workload content, so the
    # same suite at two window sizes never collides.
    key = (
        suite_key,
        tuple(sorted(t.digest() for t in traces.values())),
        tuple(policies),
        config,
    )
    if key not in _MATRIX_CACHE:
        _MATRIX_CACHE[key] = run_matrix(traces, policies, config=config)
    return _MATRIX_CACHE[key]


def gap_traces(
    window: int | None = None, scale: int | None = None
) -> dict[str, Trace]:
    """The GAP suite traces (memoized per process).

    ``window``/``scale`` default to the effective sizes — full-scale
    normally, reduced under ``REPRO_SMOKE`` (see docs/sweeps.md).
    """
    window = window if window is not None else effective_gap_window()
    scale = scale if scale is not None else effective_gap_scale()
    key = f"gap.{scale}.{window}"
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = gap_suite(
            scale=scale, degree=GAP_DEGREE, max_accesses=window
        )
    return _TRACE_CACHE[key]


def spec_traces(suite: str, window: int | None = None) -> dict[str, Trace]:
    """A SPEC proxy suite's traces (memoized per process)."""
    window = window if window is not None else effective_spec_window()
    key = f"{suite}.{window}"
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = spec_suite(suite, num_accesses=window)
    return _TRACE_CACHE[key]


@dataclass
class ExperimentReport:
    """Output of one experiment: raw rows plus a rendered table."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    notes: dict[str, object] = field(default_factory=dict)

    def render(self, float_format: str = "{:.3f}") -> str:
        """The experiment as an aligned text table."""
        return format_table(
            self.headers, self.rows, title=self.experiment, float_format=float_format
        )

    def _numeric_span(self) -> int:
        """Number of trailing all-numeric columns across every row."""
        span = 0
        for col in range(len(self.headers) - 1, -1, -1):
            column_numeric = all(
                isinstance(row[col], (int, float)) and not isinstance(row[col], bool)
                for row in self.rows
            )
            if column_numeric:
                span += 1
            else:
                break
        return span

    def to_json_dict(self) -> dict[str, Any]:
        """The report as a JSON-serializable dict (for results/ artifacts).

        Notes that do not serialize (live :class:`RunMatrix` objects,
        for instance) are dropped rather than failing the dump — the
        JSON artifact carries the data the regression gate reads, not
        the in-process conveniences.
        """
        import json

        from ..core.results import _jsonify

        notes: dict[str, Any] = {}
        for key, value in self.notes.items():
            coerced = _jsonify(value)
            try:
                json.dumps(coerced)
            except (TypeError, ValueError):
                continue
            notes[key] = coerced
        return {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [_jsonify(list(row)) for row in self.rows],
            "notes": notes,
        }

    def chart(self, baseline: float | None = None, width: int = 36) -> str:
        """The experiment's numeric columns as grouped terminal bars.

        Each row becomes a group labelled by its leading non-numeric
        cells; the trailing numeric cells chart against their column
        headers. With ``baseline`` (e.g. 1.0 for speed-up figures), bars
        grow from a baseline marker instead — how Figure 3 reads.
        """
        from ..analysis.charts import grouped_hbar_chart, hbar_chart

        span = self._numeric_span()
        if span == 0:
            raise ValueError(f"{self.experiment}: no numeric columns to chart")
        groups: dict[str, dict[str, float]] = {}
        for row in self.rows:
            label = " ".join(str(c) for c in row[: len(row) - span]) or str(row[0])
            groups[label] = {
                header: float(cell)
                for header, cell in zip(self.headers[-span:], row[-span:])
            }
        if baseline is not None:
            parts = [
                hbar_chart(series, title=label, width=width, baseline=baseline)
                for label, series in groups.items()
            ]
            return f"{self.experiment}\n\n" + "\n\n".join(parts)
        return grouped_hbar_chart(groups, title=self.experiment, width=width)


# -- Table I -------------------------------------------------------------------


def experiment_table1(config: MachineConfig | None = None) -> ExperimentReport:
    """Table I — the simulated system configuration."""
    config = config or cascade_lake()
    rows = [[component, description] for component, description in config.describe()]
    return ExperimentReport(
        experiment="Table I: simulated system configuration",
        headers=["Component", "Configuration"],
        rows=rows,
    )


# -- Figure 2 -------------------------------------------------------------------


def experiment_fig2(
    config: MachineConfig | None = None, window: int | None = None
) -> ExperimentReport:
    """Figure 2 — MPKI at L1D/L2C/LLC per GAP workload, under LRU.

    Also reports the paper's cross-level statistic: the fraction of L1D
    misses served by DRAM (paper: 78.6 %), and the per-level averages
    (paper: 53.2 / 44.2 / 41.8).
    """
    config = config or cascade_lake()
    window = window if window is not None else effective_gap_window()
    traces = gap_traces(window)
    rows: list[list[object]] = []
    mpki_sums = {level: 0.0 for level in MPKI_LEVELS}
    dram_fracs: list[float] = []
    for name, trace in traces.items():
        result = simulate(trace, config=config, llc_policy=BASELINE_POLICY)
        mpkis = [result.mpki(level) for level in MPKI_LEVELS]
        for level, value in zip(MPKI_LEVELS, mpkis):
            mpki_sums[level] += value
        dram_fracs.append(result.l1d_miss_dram_fraction)
        rows.append([name, *mpkis, result.l1d_miss_dram_fraction])
    n = len(traces)
    averages = [mpki_sums[level] / n for level in MPKI_LEVELS]
    rows.append(["MEAN", *averages, float(np.mean(dram_fracs))])
    return ExperimentReport(
        experiment="Figure 2: GAP MPKI across the cache hierarchy (LRU)",
        headers=["workload", "L1D MPKI", "L2C MPKI", "LLC MPKI", "L1D->DRAM frac"],
        rows=rows,
        notes={
            "paper_averages": {"L1D": 53.2, "L2C": 44.2, "LLC": 41.8},
            "paper_dram_fraction": 0.786,
            "gap_window": window,
            "gap_scale": effective_gap_scale(),
        },
    )


# -- Figure 3 -------------------------------------------------------------------


def experiment_fig3(
    config: MachineConfig | None = None,
    policies: tuple[str, ...] = PAPER_POLICIES,
    suites: tuple[str, ...] = ("spec06", "spec17", "gap"),
    gap_window: int | None = None,
    spec_window: int | None = None,
) -> ExperimentReport:
    """Figure 3 — geomean speed-up over LRU, per suite, per policy."""
    config = config or cascade_lake()
    gap_window = gap_window if gap_window is not None else effective_gap_window()
    spec_window = spec_window if spec_window is not None else effective_spec_window()
    all_policies = [BASELINE_POLICY, *policies]
    rows: list[list[object]] = []
    matrices: dict[str, RunMatrix] = {}
    for suite in suites:
        traces = (
            gap_traces(gap_window) if suite == "gap" else spec_traces(suite, spec_window)
        )
        matrix = _cached_matrix(suite, traces, all_policies, config)
        matrices[suite] = matrix
        rows.append(
            [suite, *[matrix.geomean_speedup(p) for p in policies]]
        )
    return ExperimentReport(
        experiment="Figure 3: geomean speed-up over LRU by suite",
        headers=["suite", *policies],
        rows=rows,
        notes={
            "matrices": matrices,
            "gap_window": gap_window,
            "spec_window": spec_window,
            "gap_scale": effective_gap_scale(),
        },
    )


# -- E1: LLC MPKI per workload per policy -----------------------------------------


def experiment_llc_mpki(
    config: MachineConfig | None = None,
    policies: tuple[str, ...] = PAPER_POLICIES,
    window: int | None = None,
) -> ExperimentReport:
    """E1 — LLC MPKI of every GAP workload under every policy."""
    config = config or cascade_lake()
    traces = gap_traces(window)
    all_policies = [BASELINE_POLICY, *policies]
    matrix = _cached_matrix("gap", traces, all_policies, config)
    table = matrix.mpki_table("LLC")
    rows = [
        [workload, *[table[workload][p] for p in all_policies]]
        for workload in matrix.workloads
    ]
    return ExperimentReport(
        experiment="E1: LLC MPKI per GAP workload per policy",
        headers=["workload", *all_policies],
        rows=rows,
        notes={"matrix": matrix},
    )


# -- E2: PC characterization ---------------------------------------------------------


def experiment_pc_characterization(
    gap_window: int | None = None, spec_window: int | None = None
) -> ExperimentReport:
    """E2 — distinct PCs and per-PC address footprints, GAP vs SPEC."""
    profiles: list[tuple[str, PCProfile]] = []
    for name, trace in gap_traces(gap_window).items():
        profiles.append(("gap", pc_profile(trace)))
    for name, trace in spec_traces("spec06", spec_window).items():
        profiles.append(("spec06", pc_profile(trace)))
    rows = [
        [
            suite,
            p.workload,
            p.num_pcs,
            p.pc_entropy_bits,
            p.mean_blocks_per_pc,
            p.footprint_concentration,
        ]
        for suite, p in profiles
    ]
    return ExperimentReport(
        experiment="E2: PC characterization (few PCs x huge footprints on GAP)",
        headers=[
            "suite",
            "workload",
            "static PCs",
            "PC entropy (bits)",
            "blocks/PC",
            "footprint share/PC",
        ],
        rows=rows,
    )


# -- E3: reuse distance ---------------------------------------------------------------


def experiment_reuse_distance(
    config: MachineConfig | None = None,
    gap_window: int = 150_000,
    spec_window: int = 150_000,
) -> ExperimentReport:
    """E3 — LRU hit fraction vs capacity (reuse-distance CDF samples).

    Capacities are sampled at L1D, L2, LLC, and 4x LLC block counts, so
    the row directly reads as "what each level could catch".
    """
    config = config or cascade_lake()
    block = 1 << config.llc.block_bits
    capacities = {
        "L1D": config.l1d.size_bytes // block,
        "L2C": config.l2.size_bytes // block,
        "LLC": config.llc.size_bytes // block,
        "4xLLC": 4 * config.llc.size_bytes // block,
    }
    rows: list[list[object]] = []
    workloads: list[tuple[str, Trace]] = []
    gap = gap_traces()
    for name in ("bfs", "pr", "sssp"):
        full = next(t for n, t in gap.items() if n.startswith(name))
        workloads.append(("gap", full.head(gap_window)))
    spec = spec_traces("spec06")
    for name in ("spec06.mcf", "spec06.omnetpp", "spec06.sphinx3"):
        workloads.append(("spec06", spec[name].head(spec_window)))
    for suite, trace in workloads:
        profile, distances = reuse_profile(trace)
        cdf = reuse_cdf(distances, list(capacities.values()))
        rows.append(
            [
                suite,
                trace.name,
                profile.cold_fraction,
                *[cdf[c] for c in capacities.values()],
            ]
        )
    return ExperimentReport(
        experiment="E3: reuse-distance CDF sampled at cache capacities",
        headers=["suite", "workload", "cold frac", *capacities.keys()],
        rows=rows,
    )


# -- E4: OPT headroom --------------------------------------------------------------------


def experiment_opt_headroom(
    config: MachineConfig | None = None, window: int = 250_000
) -> ExperimentReport:
    """E4 — Belady OPT's LLC hit rate vs LRU's, per GAP workload.

    The paper's point: even the clairvoyant upper bound leaves most GAP
    misses on the table, so no replacement policy can close the gap.
    """
    config = config or cascade_lake()
    rows: list[list[object]] = []
    for name, trace in gap_traces(window).items():
        opt_result, lru_result = simulate_with_opt(trace, config=config)
        rows.append(
            [
                name,
                lru_result.levels["LLC"].demand_hit_rate,
                opt_result.levels["LLC"].demand_hit_rate,
                lru_result.llc_mpki,
                opt_result.llc_mpki,
                opt_result.ipc / lru_result.ipc if lru_result.ipc else 0.0,
            ]
        )
    return ExperimentReport(
        experiment="E4: Belady OPT headroom at the LLC (GAP)",
        headers=[
            "workload",
            "LRU hit rate",
            "OPT hit rate",
            "LRU MPKI",
            "OPT MPKI",
            "OPT speedup",
        ],
        rows=rows,
    )


# -- E5: DRAM traffic ---------------------------------------------------------------------


def experiment_dram_traffic(
    config: MachineConfig | None = None,
    policies: tuple[str, ...] = ("lru", "srrip", "hawkeye"),
    window: int | None = None,
) -> ExperimentReport:
    """E5 — DRAM transactions per kilo-instruction per policy (GAP)."""
    config = config or cascade_lake()
    rows: list[list[object]] = []
    for name, trace in gap_traces(window).items():
        row: list[object] = [name]
        for policy in policies:
            result = simulate(trace, config=config, llc_policy=policy)
            tpki = 1000.0 * (result.dram_reads + result.dram_writes) / result.instructions
            row.append(tpki)
        rows.append(row)
    return ExperimentReport(
        experiment="E5: DRAM transactions per kilo-instruction (GAP)",
        headers=["workload", *policies],
        rows=rows,
    )


# -- E6: LLC size sensitivity --------------------------------------------------------------


def experiment_llc_sensitivity(
    policies: tuple[str, ...] = ("lru", "srrip", "hawkeye"),
    scales: tuple[int, ...] = (1, 2, 4),
    window: int = 200_000,
    kernels: tuple[str, ...] = ("pr", "sssp"),
) -> ExperimentReport:
    """E6 — does the 'policies do not help GAP' conclusion hold at 2x/4x LLC?"""
    rows: list[list[object]] = []
    traces = {
        name: trace
        for name, trace in gap_traces().items()
        if any(name.startswith(k) for k in kernels)
    }
    traces = {name: t.head(window) for name, t in traces.items()}
    for factor in scales:
        config = cascade_lake().with_llc_scale(factor)
        matrix = run_matrix(traces, list(dict.fromkeys(["lru", *policies])), config=config)
        for policy in policies:
            if policy == "lru":
                continue
            rows.append(
                [
                    f"{factor}x LLC",
                    policy,
                    matrix.geomean_speedup(policy),
                    geometric_mean(
                        [
                            matrix.get(w, policy).llc_mpki / max(matrix.get(w, "lru").llc_mpki, 1e-9)
                            for w in matrix.workloads
                        ]
                    ),
                ]
            )
    return ExperimentReport(
        experiment="E6: LLC-size sensitivity (GAP subset)",
        headers=["LLC size", "policy", "geomean speedup", "MPKI ratio vs LRU"],
        rows=rows,
    )


# -- E7: design ablations -----------------------------------------------------------------


def experiment_policy_ablation(
    config: MachineConfig | None = None,
) -> ExperimentReport:
    """E7 — mechanism ablations on adversarial synthetic workloads.

    Verifies that each policy's distinguishing mechanism earns its keep
    where it is supposed to:

    * DRRIP's set-duelling vs its static components on a thrash/reuse mix
      (the PSEL must track the better component);
    * SHiP's SHCT vs plain SRRIP on a PC-separable scan+resident mix;
    * Hawkeye vs LRU on the same mix (OPTgen training must pay off);
    * MPPPB's bypass vs no-bypass on a stream (bypass keeps the LLC
      clean for the resident set).
    """
    from ..trace import synthetic

    config = config or cascade_lake()
    kib = 1024
    workloads = {
        "thrash(2.5MiB cycle)": synthetic.strided(
            200_000, stride=64, elements=(2560 * kib) // 64
        ),
        "scan+resident": spec_traces("spec06")["spec06.soplex"],
        "zipf(4MiB)": synthetic.zipf_reuse(200_000, num_blocks=(4096 * kib) // 64),
    }
    policies = ["lru", "srrip", "brrip", "drrip", "ship", "hawkeye", "mpppb"]
    matrix = run_matrix(workloads, policies, config=config)
    rows: list[list[object]] = []
    for name in workloads:
        rows.append(
            [name, *[matrix.get(name, p).llc_mpki for p in policies]]
        )
    checks = {
        # DRRIP must land at or below the better static component + slack.
        "drrip_tracks_best": all(
            matrix.get(w, "drrip").llc_mpki
            <= min(matrix.get(w, "srrip").llc_mpki, matrix.get(w, "brrip").llc_mpki)
            * 1.15
            for w in workloads
        ),
        "ship_beats_srrip_on_pc_separable": (
            matrix.get("scan+resident", "ship").llc_mpki
            <= matrix.get("scan+resident", "srrip").llc_mpki
        ),
        "hawkeye_beats_lru_on_pc_separable": (
            matrix.get("scan+resident", "hawkeye").llc_mpki
            <= matrix.get("scan+resident", "lru").llc_mpki
        ),
    }
    return ExperimentReport(
        experiment="E7: policy-mechanism ablations (LLC MPKI)",
        headers=["workload", *policies],
        rows=rows,
        notes={"checks": checks},
    )


# -- E8: prefetcher sensitivity ------------------------------------------------------------


def experiment_prefetch_sensitivity(
    config: MachineConfig | None = None,
    window: int = 150_000,
    kernels: tuple[str, ...] = ("bfs", "pr", "sssp"),
) -> ExperimentReport:
    """E8 — does an L2 prefetcher change the GAP story?

    The simulated Cascade Lake ships stride prefetchers; the paper's
    conclusions are about replacement, so this ablation verifies they are
    not an artifact of running prefetcher-less: with an IP-stride
    prefetcher at the L2, the sequential OA/NA streams get covered but
    the irregular gathers — the misses that matter — remain.
    """
    from ..mem.prefetcher import IPStridePrefetcher, NextLinePrefetcher

    config = config or cascade_lake()
    traces = {
        name: trace.head(window)
        for name, trace in gap_traces().items()
        if any(name.startswith(k) for k in kernels)
    }
    variants: dict[str, object] = {
        "none": None,
        "next-line": NextLinePrefetcher(degree=1),
        "ip-stride": IPStridePrefetcher(degree=2),
    }
    rows: list[list[object]] = []
    for name, trace in traces.items():
        row: list[object] = [name]
        for label, prefetcher in variants.items():
            # A fresh prefetcher per run: they carry learned state.
            pf = None
            if label == "next-line":
                pf = NextLinePrefetcher(degree=1)
            elif label == "ip-stride":
                pf = IPStridePrefetcher(degree=2)
            result = simulate(
                trace, config=config, llc_policy="lru", l2_prefetcher=pf
            )
            row.append(result.mpki("L2C"))
        rows.append(row)
    return ExperimentReport(
        experiment="E8: L2 prefetcher sensitivity (GAP, L2C demand MPKI)",
        headers=["workload", *variants.keys()],
        rows=rows,
    )


# -- E9: graph-family sensitivity ----------------------------------------------------------


def experiment_graph_family(
    config: MachineConfig | None = None,
    window: int = 150_000,
    scale: int = 17,
    kernels: tuple[str, ...] = ("bfs", "pr", "cc"),
) -> ExperimentReport:
    """E9 — kron vs urand: GAP evaluates both synthetic families.

    The power-law kron graphs concentrate reuse on hub vertices; uniform
    random graphs spread it thin. The paper's conclusions must hold for
    both, with urand at least as miss-dominated as kron.
    """
    config = config or cascade_lake()
    rows: list[list[object]] = []
    for family in ("kron", "urand"):
        traces = gap_suite(
            scale=scale, degree=GAP_DEGREE, graph_name=family,
            kernels=kernels, max_accesses=window,
        )
        for name, trace in traces.items():
            result = simulate(trace, config=config, llc_policy="lru")
            rows.append(
                [
                    family,
                    name,
                    result.mpki("L1D"),
                    result.mpki("LLC"),
                    result.l1d_miss_dram_fraction,
                ]
            )
    return ExperimentReport(
        experiment="E9: graph-family sensitivity (LRU)",
        headers=["family", "workload", "L1D MPKI", "LLC MPKI", "L1D->DRAM frac"],
        rows=rows,
    )


# -- E10: 3C miss classification --------------------------------------------------------------


def experiment_miss_classification(
    config: MachineConfig | None = None,
    window: int = 120_000,
) -> ExperimentReport:
    """E10 — compulsory/capacity/conflict split at LLC geometry.

    Classifies each workload's misses with the 3C taxonomy at the LLC's
    capacity and associativity. GAP misses must be dominated by
    compulsory + capacity (unfixable by replacement); the SPEC proxies
    carry a meaningful conflict/capacity share a policy can attack.
    """
    from ..analysis.misses import classify_misses

    config = config or cascade_lake()
    rows: list[list[object]] = []
    workloads: list[tuple[str, Trace]] = []
    gap = gap_traces()
    for prefix in ("pr", "cc", "tc"):
        trace = next(t for n, t in gap.items() if n.startswith(prefix))
        workloads.append(("gap", trace.head(window)))
    spec = spec_traces("spec06")
    for name in ("spec06.soplex", "spec06.milc", "spec06.sphinx3"):
        workloads.append(("spec06", spec[name].head(window)))
    for suite, trace in workloads:
        c = classify_misses(
            trace, config.llc.size_bytes, config.llc.num_ways,
            block_bits=config.llc.block_bits,
        )
        rows.append(
            [
                suite,
                trace.name,
                c.miss_rate,
                c.fraction("compulsory"),
                c.fraction("capacity"),
                c.fraction("conflict"),
            ]
        )
    return ExperimentReport(
        experiment="E10: 3C miss classification at LLC geometry",
        headers=[
            "suite", "workload", "miss rate",
            "compulsory", "capacity", "conflict",
        ],
        rows=rows,
    )


# -- E11: hardware-complexity accounting --------------------------------------------------------


def experiment_hardware_budget(
    config: MachineConfig | None = None,
) -> ExperimentReport:
    """E11 — storage cost of each policy at the paper's LLC geometry.

    The other half of the paper's conclusion: the learned policies'
    (non-)benefit on big data comes at an order of magnitude more
    metadata than SRRIP-class designs. Pure accounting — no simulation.
    """
    from ..policies.budget import estimate_budget

    config = config or cascade_lake()
    sets, ways = config.llc.num_sets, config.llc.num_ways
    lru = estimate_budget("lru", sets, ways)
    rows: list[list[object]] = []
    for policy in (BASELINE_POLICY, *PAPER_POLICIES):
        budget = estimate_budget(policy, sets, ways)
        rows.append(
            [
                policy,
                budget.per_line_bits,
                budget.table_bits,
                budget.total_kib,
                budget.overhead_vs(lru),
            ]
        )
    return ExperimentReport(
        experiment="E11: policy storage budgets at the LLC (1.375 MiB, 11-way)",
        headers=["policy", "bits/line", "table bits", "total KiB", "x LRU"],
        rows=rows,
    )
