"""Experiment harness: sweep engine, run matrices, experiment drivers."""

from .engine import (
    CellError,
    ResultCache,
    SweepEngine,
    SweepOutcome,
    SweepStats,
    VerifyReport,
    cell_key,
    result_checksum,
    simulator_salt,
)
from .experiments import (
    ExperimentReport,
    experiment_dram_traffic,
    experiment_fig2,
    experiment_fig3,
    experiment_llc_mpki,
    experiment_llc_sensitivity,
    experiment_opt_headroom,
    experiment_pc_characterization,
    experiment_reuse_distance,
    experiment_table1,
    gap_traces,
    spec_traces,
)
from .multiseed import MetricSummary, ReplicatedRun, replicate, replicated_speedup, summarize
from .report import generate_report, render_failure_report
from .runner import RunMatrix, run_matrix

__all__ = [
    "ExperimentReport",
    "RunMatrix",
    "run_matrix",
    "SweepEngine",
    "SweepOutcome",
    "SweepStats",
    "CellError",
    "ResultCache",
    "VerifyReport",
    "cell_key",
    "result_checksum",
    "simulator_salt",
    "render_failure_report",
    "gap_traces",
    "spec_traces",
    "experiment_table1",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_llc_mpki",
    "experiment_pc_characterization",
    "experiment_reuse_distance",
    "experiment_opt_headroom",
    "experiment_dram_traffic",
    "experiment_llc_sensitivity",
    "MetricSummary",
    "ReplicatedRun",
    "replicate",
    "replicated_speedup",
    "summarize",
    "generate_report",
]
