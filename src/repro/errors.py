"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. More specific subclasses exist for
the major subsystems; they carry enough context in their message to be
actionable without inspecting attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid simulator, cache, or experiment configuration was given.

    Raised eagerly at construction time (e.g. a cache whose size is not a
    multiple of ``block_size * ways``), never in the simulation hot loop.
    """


class TraceError(ReproError):
    """A trace could not be built, read, or validated."""


class TraceFormatError(TraceError):
    """A trace file on disk is malformed or has an unsupported version."""


class PolicyError(ReproError):
    """A replacement policy was misused or misconfigured."""


class UnknownPolicyError(PolicyError):
    """A policy name was not found in the registry.

    The message lists the available policy names so that typos are easy to
    spot from the error alone.
    """


class GraphError(ReproError):
    """A graph structure is malformed (e.g. inconsistent CSR arrays)."""


class WorkloadError(ReproError):
    """A workload (GAP kernel or SPEC proxy) was given invalid parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This signals a bug in the library rather than bad user input; seeing it
    in the wild should be reported together with the trace that caused it.
    """
