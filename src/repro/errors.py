"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. More specific subclasses exist for
the major subsystems; they carry enough context in their message to be
actionable without inspecting attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid simulator, cache, or experiment configuration was given.

    Raised eagerly at construction time (e.g. a cache whose size is not a
    multiple of ``block_size * ways``), never in the simulation hot loop.
    """


class TraceError(ReproError):
    """A trace could not be built, read, or validated."""


class TraceFormatError(TraceError):
    """A trace file on disk is malformed or has an unsupported version."""


class PolicyError(ReproError):
    """A replacement policy was misused or misconfigured."""


class UnknownPolicyError(PolicyError):
    """A policy name was not found in the registry.

    The message lists the available policy names so that typos are easy to
    spot from the error alone.
    """


class GraphError(ReproError):
    """A graph structure is malformed (e.g. inconsistent CSR arrays)."""


class WorkloadError(ReproError):
    """A workload (GAP kernel or SPEC proxy) was given invalid parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This signals a bug in the library rather than bad user input; seeing it
    in the wild should be reported together with the trace that caused it.
    """


class ResilienceError(ReproError):
    """The fault-tolerance layer itself was misconfigured or failed.

    Raised for invalid :class:`repro.resilience.RetryPolicy` parameters
    and for chaos-harness misuse, never for the workload failures the
    layer exists to absorb (those are classified and retried instead).
    """


class CellTimeoutError(ResilienceError):
    """A sweep cell exceeded its wall-clock budget and was aborted.

    Synthesized by the watchdog in the parent process — the hung worker
    never raises it itself. Classified as transient: the cell is retried
    (a loaded machine can stall a healthy cell) until it either finishes
    or accumulates enough strikes to be marked poison.
    """


class MemoryBudgetError(ResilienceError):
    """A sweep cell exceeded its per-worker RSS budget.

    Raised *inside* the worker by the RSS watchdog
    (:class:`repro.resilience.durability.MemoryWatchdog`) before the OS
    OOM-killer has a reason to intervene — unlike ``MemoryError`` the
    worker survives and the failure carries the measured RSS. Classified
    as transient *with a strike*: a one-off pressure spike recovers on
    retry, while a cell that keeps blowing its budget accumulates
    strikes and is poisoned without ever taking the pool down.
    """


class SweepInterrupted(ResilienceError):
    """A sweep was stopped by a shutdown signal and is resumable.

    Raised after graceful shutdown has drained in-flight cells and
    flushed the run journal and failure report. ``run_id`` names the
    journal to resume from (``repro sweep --resume <run_id>``); ``None``
    when the sweep ran without a journal. The CLI maps this onto a
    distinct exit code (:data:`repro.resilience.durability.EXIT_INTERRUPTED`)
    so wrappers can tell "interrupted, resumable" from "failed".
    """

    def __init__(self, message: str, run_id: "str | None" = None) -> None:
        super().__init__(message)
        self.run_id = run_id


class CacheIntegrityError(ReproError):
    """An on-disk result-cache entry failed its content checksum.

    Corrupt entries are quarantined rather than trusted or deleted, so
    this error surfaces only from explicit integrity APIs; the sweep
    read path treats quarantined entries as cache misses.
    """
