"""Shared machinery for traced GAP kernels.

All six kernels follow the same discipline: run the *real* algorithm over
the CSR graph, and as each logical memory touch happens, emit the
corresponding synthetic address through a
:class:`~repro.trace.builder.TraceBuilder`. The helpers here assemble the
per-iteration access streams fully vectorized, because the dominant
phases ("for every vertex, walk its row, gather a property per
neighbour") have a closed-form layout:

``OA[u] | NA[e] P[NA[e]] NA[e+1] P[NA[e+1]] ... | write OUT[u]``

per vertex ``u``, concatenated in traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..trace.builder import TraceBuilder
from ..trace.record import AccessKind
from ..trace.trace import Trace
from .memory import GraphMemory, PCTable

#: Instructions per memory access in kernel inner loops (the access plus
#: four non-memory instructions). Five reflects the index arithmetic,
#: branching and bookkeeping around each load in compiled GAP kernels and
#: calibrates absolute MPKI against the paper's Figure 2 scale.
KERNEL_GAP = 5

#: Vertices per emission chunk in whole-graph passes: small enough that a
#: trace budget overshoots by at most a chunk, large enough to amortize
#: the vectorized stream assembly.
CHUNK_VERTICES = 8192


@dataclass
class KernelRun:
    """What a traced kernel execution produced.

    ``values`` holds the algorithmic result (parents, ranks, distances,
    a triangle count, ...) so tests can check correctness; ``trace`` is
    what the simulator consumes; ``pcs`` exposes the kernel's code sites
    for the PC-characterization experiment.
    """

    name: str
    values: Any
    trace: Trace
    pcs: dict[str, int]


def gather_pass_stream(
    graph: CSRGraph,
    mem: GraphMemory,
    vertices: np.ndarray,
    gather_prop: str,
    write_prop: str | None,
    pc_oa: int,
    pc_na: int,
    pc_gather: int,
    pc_write: int,
    with_weights: bool = False,
    pc_weight: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The access stream of one gather pass over ``vertices``.

    For each vertex in order: one OA load, then per edge a (NA load,
    optional weight load, property gather) group, then one property
    write (omitted when ``write_prop`` is None). Returns (addresses,
    pcs, kinds) ready for ``TraceBuilder.extend``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    nv = len(vertices)
    if nv == 0:
        empty = np.empty(0, dtype=np.uint64)
        return empty, empty.copy(), np.empty(0, dtype=np.uint8)
    starts = graph.offsets[vertices]
    degs = (graph.offsets[vertices + 1] - starts).astype(np.int64)
    total_edges = int(degs.sum())
    group = 3 if with_weights else 2  # loads per edge
    tail = 1 if write_prop is not None else 0
    seg_lens = 1 + group * degs + tail
    out_starts = np.concatenate([[0], np.cumsum(seg_lens)[:-1]])
    total = int(seg_lens.sum())

    addrs = np.empty(total, dtype=np.uint64)
    pcs = np.empty(total, dtype=np.uint64)
    kinds = np.full(total, int(AccessKind.LOAD), dtype=np.uint8)

    # Per-vertex OA load at each segment start.
    addrs[out_starts] = mem.oa(vertices)
    pcs[out_starts] = pc_oa
    if write_prop is not None:
        write_pos = out_starts + seg_lens - 1
        addrs[write_pos] = mem.prop(write_prop, vertices)
        pcs[write_pos] = pc_write
        kinds[write_pos] = int(AccessKind.STORE)

    if total_edges:
        # Global edge index per edge slot, rows concatenated in order.
        row_out = np.repeat(out_starts, degs)  # output segment start per edge
        local_j = (
            np.arange(total_edges, dtype=np.int64)
            - np.repeat(np.concatenate([[0], np.cumsum(degs)[:-1]]), degs)
        )
        edge_idx = np.repeat(starts, degs) + local_j
        neighbors = graph.neighbors[edge_idx]

        na_pos = row_out + 1 + group * local_j
        addrs[na_pos] = mem.na(edge_idx)
        pcs[na_pos] = pc_na
        if with_weights:
            w_pos = na_pos + 1
            addrs[w_pos] = mem.weight(edge_idx)
            pcs[w_pos] = pc_weight
            g_pos = na_pos + 2
        else:
            g_pos = na_pos + 1
        addrs[g_pos] = mem.prop(gather_prop, neighbors)
        pcs[g_pos] = pc_gather
    return addrs, pcs, kinds


def emit_stream(
    builder: TraceBuilder,
    addrs: np.ndarray,
    pcs: np.ndarray,
    kinds: np.ndarray,
    gap: int = KERNEL_GAP,
) -> None:
    """Append an assembled stream to the builder with a uniform gap."""
    builder.extend(addrs, pcs, kinds, gaps=gap)


def emit_sequential_scan(
    builder: TraceBuilder,
    mem: GraphMemory,
    prop: str,
    num_vertices: int,
    pc: int,
    kind: AccessKind = AccessKind.LOAD,
    gap: int = KERNEL_GAP,
) -> None:
    """A linear sweep over a whole property array (init/reduce phases)."""
    v = np.arange(num_vertices, dtype=np.int64)
    builder.extend(mem.prop(prop, v), pc, kind, gaps=gap)


def make_kernel_tools(
    graph: CSRGraph,
    name: str,
    info: dict | None = None,
    max_accesses: int | None = None,
):
    """The (memory model, PC table, builder) triple every kernel starts with."""
    mem = GraphMemory(graph)
    pcs = PCTable()
    builder = TraceBuilder(name=name, info=info, limit=max_accesses)
    return mem, pcs, builder


def vertex_chunks(vertices: np.ndarray, chunk: int = CHUNK_VERTICES):
    """Yield ``vertices`` in fixed-size chunks (whole-pass emission unit)."""
    for start in range(0, len(vertices), chunk):
        yield vertices[start : start + chunk]


def pick_sources(graph: CSRGraph, count: int, seed: int = 27) -> list[int]:
    """Deterministic traversal sources with non-zero degree.

    Synthetic graphs (kron especially) leave many vertices isolated; GAP
    likewise samples its BFS/SSSP/BC sources from connected vertices.
    Raises if the graph has no edges at all.
    """
    candidates = np.nonzero(graph.out_degrees() > 0)[0]
    if len(candidates) == 0:
        raise WorkloadError("cannot pick traversal sources: graph has no edges")
    rng = np.random.default_rng(seed)
    picks = rng.choice(candidates, size=min(count, len(candidates)), replace=False)
    sources = [int(v) for v in picks]
    while len(sources) < count:  # tiny graphs: reuse sources round-robin
        sources.append(sources[len(sources) % len(set(sources))])
    return sources
