"""Connected Components via label propagation.

GAP ships Shiloach–Vishkin/Afforest; we implement the label-propagation
formulation, which has the same memory-access class (per sweep: walk
every row, gather the neighbour's component label, keep the minimum,
write back on change) and converges to identical components on
undirected graphs. The substitution is documented in DESIGN.md.

Only vertices whose label changed stay active in the next sweep, so the
access stream shrinks over iterations exactly like SV's hooking phase.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from .common import (
    KernelRun,
    emit_stream,
    gather_pass_stream,
    make_kernel_tools,
    vertex_chunks,
)


def connected_components(
    graph: CSRGraph,
    max_iterations: int = 64,
    trace_name: str | None = None,
    max_accesses: int | None = None,
) -> KernelRun:
    """Label-propagation CC; returns per-vertex component ids + trace.

    ``max_accesses`` bounds the traced window; label propagation itself
    runs to convergence, so ``values`` is exact regardless.
    """
    n = graph.num_vertices
    if n == 0:
        raise WorkloadError("connected_components needs a non-empty graph")
    name = trace_name or f"gap.cc.n{n}"
    mem, pcs, builder = make_kernel_tools(
        graph, name, info={"kernel": "cc"}, max_accesses=max_accesses
    )
    pc_oa = pcs.pc("cc.load_offsets")
    pc_na = pcs.pc("cc.load_neighbor")
    pc_gather = pcs.pc("cc.gather_label")
    pc_write = pcs.pc("cc.write_label")

    labels = np.arange(n, dtype=np.int64)
    active = np.arange(n, dtype=np.int64)
    for _ in range(max_iterations):
        if len(active) == 0:
            break
        for chunk in vertex_chunks(active):
            if builder.full:
                break
            addrs, stream_pcs, kinds = gather_pass_stream(
                graph,
                mem,
                chunk,
                gather_prop="label",
                write_prop="label",
                pc_oa=pc_oa,
                pc_na=pc_na,
                pc_gather=pc_gather,
                pc_write=pc_write,
            )
            emit_stream(builder, addrs, stream_pcs, kinds)

        # The actual propagation: labels take the min over self + neighbours.
        new_labels = labels.copy()
        src = np.repeat(
            np.arange(n, dtype=np.int64), graph.out_degrees()
        )
        np.minimum.at(new_labels, src, labels[graph.neighbors])
        changed = np.nonzero(new_labels != labels)[0]
        labels = new_labels
        # Next sweep processes changed vertices and their neighbourhoods.
        if len(changed):
            neighbour_set = np.unique(
                np.concatenate([changed, _neighbours_of(graph, changed)])
            )
            active = neighbour_set
        else:
            active = np.empty(0, dtype=np.int64)
    return KernelRun(name=name, values=labels, trace=builder.build(), pcs=pcs.sites)


def _neighbours_of(graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
    starts = graph.offsets[vertices]
    degs = graph.offsets[vertices + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_starts = np.concatenate([[0], np.cumsum(degs)[:-1]])
    idx = np.repeat(starts - row_starts, degs) + np.arange(total, dtype=np.int64)
    return graph.neighbors[idx]
