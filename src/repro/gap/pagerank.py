"""PageRank — GAP's pull-based PR with the standard damping iteration.

Each iteration computes, per vertex ``u``::

    rank'[u] = (1 - d) / n + d * sum(contrib[v] for v in in_neighbors(u))

with ``contrib[v] = rank[v] / degree[v]`` precomputed by a linear sweep.
On the symmetric graphs GAP evaluates, in-neighbours equal
out-neighbours, so the pull gather walks the forward CSR — exactly the
irregular `contrib[NA[j]]` indexed-gather the paper singles out as the
pattern that defeats PC-based correlation.

Traced accesses per iteration: a sequential contrib sweep (read rank,
read degree via OA, write contrib), then the gather pass (OA, NA,
contrib gather, rank write per vertex).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..trace.record import AccessKind
from .common import (
    KERNEL_GAP,
    KernelRun,
    emit_stream,
    gather_pass_stream,
    make_kernel_tools,
    vertex_chunks,
)
from .memory import interleave_addr_streams


def pagerank(
    graph: CSRGraph,
    num_iterations: int = 10,
    damping: float = 0.85,
    trace_name: str | None = None,
    max_accesses: int | None = None,
) -> KernelRun:
    """Run ``num_iterations`` of pull PageRank; returns ranks + trace.

    ``max_accesses`` bounds the traced window (SimPoint-style); the rank
    computation itself always runs all iterations, so ``values`` stays
    exact even for truncated traces.
    """
    if num_iterations < 1:
        raise WorkloadError("pagerank needs at least one iteration")
    if not 0.0 < damping < 1.0:
        raise WorkloadError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_vertices
    if n == 0:
        raise WorkloadError("pagerank needs a non-empty graph")
    name = trace_name or f"gap.pr.n{n}"
    mem, pcs, builder = make_kernel_tools(
        graph, name, info={"kernel": "pr", "iterations": num_iterations},
        max_accesses=max_accesses,
    )
    pc_rank_read = pcs.pc("pr.read_rank")
    pc_contrib_write = pcs.pc("pr.write_contrib")
    pc_oa = pcs.pc("pr.load_offsets")
    pc_na = pcs.pc("pr.load_neighbor")
    pc_gather = pcs.pc("pr.gather_contrib")
    pc_rank_write = pcs.pc("pr.write_rank")

    degrees = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(degrees > 0, degrees, 1.0)
    ranks = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    all_vertices = np.arange(n, dtype=np.int64)

    for iteration in range(num_iterations):
        contrib = ranks / safe_deg
        # The first iteration's contrib sweep is left untraced: with a
        # bounded window, tracing it would fill the whole window with the
        # (tiny, sequential) init phase instead of the dominant gather
        # phase a SimPoint-style window would land in.
        if iteration > 0 and not builder.full:
            # Contrib sweep: read rank[v], write contrib[v], sequentially.
            sweep_addrs, sweep_pcs = interleave_addr_streams(
                [
                    (mem.prop("rank", all_vertices), pc_rank_read),
                    (mem.prop("contrib", all_vertices), pc_contrib_write),
                ]
            )
            sweep_kinds = np.tile(
                np.array([AccessKind.LOAD, AccessKind.STORE], dtype=np.uint8), n
            )
            builder.extend(sweep_addrs, sweep_pcs, sweep_kinds, gaps=KERNEL_GAP)

        # The gather pass over every vertex's in-row, chunked so a trace
        # budget stops stream assembly promptly.
        for chunk in vertex_chunks(all_vertices):
            if builder.full:
                break
            addrs, stream_pcs, kinds = gather_pass_stream(
                graph,
                mem,
                chunk,
                gather_prop="contrib",
                write_prop="rank",
                pc_oa=pc_oa,
                pc_na=pc_na,
                pc_gather=pc_gather,
                pc_write=pc_rank_write,
            )
            emit_stream(builder, addrs, stream_pcs, kinds)

        # Pull sum: for u, sum contrib over its (symmetric) neighbours.
        sums = np.zeros(n)
        src = np.repeat(all_vertices, graph.out_degrees())
        np.add.at(sums, src, contrib[graph.neighbors])
        ranks = base + damping * sums
    return KernelRun(name=name, values=ranks, trace=builder.build(), pcs=pcs.sites)
