"""Single-Source Shortest Paths — delta-stepping, as in GAP.

Edge weights are synthetic (uniform integers in [1, max_weight], seeded,
stored in an array parallel to NA, exactly GAP's generated-weight mode).
Vertices are processed in distance buckets of width ``delta``: the
current bucket's vertices relax all their edges (the traced gather walks
OA, NA, the weight array and the ``dist`` property), re-inserting any
improved vertex into its new bucket.

The traced stream per relaxation is the characteristic weighted-graph
triple: ``NA[e], W[e], dist[NA[e]]`` — one more irregular stream than
BFS, which is why SSSP shows the highest MPKI of the suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..trace.record import AccessKind
from .common import (
    KERNEL_GAP,
    KernelRun,
    emit_stream,
    gather_pass_stream,
    make_kernel_tools,
    pick_sources,
)


def make_weights(graph: CSRGraph, max_weight: int = 64, seed: int = 7) -> np.ndarray:
    """Per-edge integer weights in [1, max_weight], as GAP generates."""
    if max_weight < 1:
        raise WorkloadError(f"max_weight must be >= 1, got {max_weight}")
    rng = np.random.default_rng(seed)
    return rng.integers(1, max_weight + 1, size=graph.num_edges, dtype=np.int64)


def sssp(
    graph: CSRGraph,
    source: int | None = None,
    delta: int = 32,
    weights: np.ndarray | None = None,
    max_weight: int = 64,
    seed: int = 7,
    trace_name: str | None = None,
    max_accesses: int | None = None,
) -> KernelRun:
    """Delta-stepping SSSP from ``source``; returns distances + trace.

    ``max_accesses`` bounds the traced window; relaxation runs to
    completion regardless, so ``values`` is exact.
    """
    n = graph.num_vertices
    if source is None:
        source = pick_sources(graph, 1)[0]
    if not 0 <= source < n:
        raise WorkloadError(f"SSSP source {source} out of range [0, {n})")
    if delta < 1:
        raise WorkloadError(f"delta must be >= 1, got {delta}")
    if weights is None:
        weights = make_weights(graph, max_weight=max_weight, seed=seed)
    if len(weights) != graph.num_edges:
        raise WorkloadError(
            f"weights length {len(weights)} != num_edges {graph.num_edges}"
        )
    name = trace_name or f"gap.sssp.n{n}"
    mem, pcs, builder = make_kernel_tools(
        graph, name, info={"kernel": "sssp", "source": source, "delta": delta},
        max_accesses=max_accesses,
    )
    pc_oa = pcs.pc("sssp.load_offsets")
    pc_na = pcs.pc("sssp.load_neighbor")
    pc_w = pcs.pc("sssp.load_weight")
    pc_gather = pcs.pc("sssp.read_dist")
    pc_relax = pcs.pc("sssp.write_dist")

    inf = np.iinfo(np.int64).max
    dist = np.full(n, inf, dtype=np.int64)
    dist[source] = 0
    buckets: dict[int, set[int]] = {0: {source}}
    current = 0
    processed: set[int] = set()

    while buckets:
        while current not in buckets:
            current = min(buckets)
        frontier = np.array(sorted(buckets.pop(current)), dtype=np.int64)
        # Stale bucket entries (vertex later improved into an earlier
        # bucket) are skipped, as in the reference algorithm.
        frontier = frontier[dist[frontier] // delta == current]
        if len(frontier) == 0:
            if not buckets:
                break
            continue
        processed.update(frontier.tolist())

        if not builder.full:
            addrs, stream_pcs, kinds = gather_pass_stream(
                graph,
                mem,
                frontier,
                gather_prop="dist",
                write_prop=None,
                pc_oa=pc_oa,
                pc_na=pc_na,
                pc_gather=pc_gather,
                with_weights=True,
                pc_weight=pc_w,
                pc_write=0,
            )
            emit_stream(builder, addrs, stream_pcs, kinds)

        # Relax all edges of the bucket.
        improved: list[int] = []
        for u in frontier.tolist():
            lo = int(graph.offsets[u])
            hi = int(graph.offsets[u + 1])
            if hi == lo:
                continue
            row = graph.neighbors[lo:hi]
            cand = dist[u] + weights[lo:hi]
            better = cand < dist[row]
            if better.any():
                targets = row[better]
                values = cand[better]
                # Duplicates in a row resolved to the minimum, as the
                # sequential kernel would after all relaxations.
                order = np.argsort(values, kind="stable")
                for t, val in zip(targets[order].tolist(), values[order].tolist()):
                    if val < dist[t]:
                        dist[t] = val
                        improved.append(t)
        if improved:
            improved_arr = np.unique(np.array(improved, dtype=np.int64))
            builder.extend(
                mem.prop("dist", improved_arr), pc_relax, AccessKind.STORE,
                gaps=KERNEL_GAP,
            )
            for v in improved_arr.tolist():
                bucket = int(dist[v]) // delta
                buckets.setdefault(bucket, set()).add(v)
                processed.discard(v)
        if not buckets:
            break
    dist[dist == inf] = -1
    return KernelRun(name=name, values=dist, trace=builder.build(), pcs=pcs.sites)
