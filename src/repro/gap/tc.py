"""Triangle Counting — GAP's TC kernel.

Counts each triangle once by only intersecting adjacency lists along
edges ``(u, v)`` with ``u < v``, and only over the "forward" halves of
each list (neighbours with larger ids) — the standard ordered-merge
formulation. The traced accesses are pure Neighbours Array traffic: for
every processed edge, the kernel re-walks ``adj(v)``'s forward half while
holding ``adj(u)``'s, giving TC the highest NA reuse (and lowest PC
count) of the suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..trace.record import AccessKind
from .common import KERNEL_GAP, KernelRun, make_kernel_tools


def triangle_count(
    graph: CSRGraph,
    trace_name: str | None = None,
    max_accesses: int | None = None,
) -> KernelRun:
    """Exact triangle count over an undirected graph; returns count + trace.

    With ``max_accesses`` set, counting stops at the trace budget and the
    returned count covers only the processed prefix of vertices
    (``trace.info["truncated"]`` is set). Correctness tests run without a
    budget.
    """
    n = graph.num_vertices
    if n == 0:
        raise WorkloadError("triangle_count needs a non-empty graph")
    name = trace_name or f"gap.tc.n{n}"
    mem, pcs, builder = make_kernel_tools(
        graph, name, info={"kernel": "tc"}, max_accesses=max_accesses
    )
    pc_oa = pcs.pc("tc.load_offsets")
    pc_na_u = pcs.pc("tc.scan_row_u")
    pc_na_v = pcs.pc("tc.scan_row_v")

    triangles = 0
    offsets = graph.offsets
    neighbors = graph.neighbors
    for u in range(n):
        if builder.full:
            builder.info["truncated"] = True
            break
        lo_u = int(offsets[u])
        hi_u = int(offsets[u + 1])
        builder.extend(mem.oa(np.array([u])), pc_oa, AccessKind.LOAD, gaps=KERNEL_GAP)
        if hi_u == lo_u:
            continue
        row_u = neighbors[lo_u:hi_u]
        fwd_u_mask = row_u > u
        fwd_u = row_u[fwd_u_mask]
        # The kernel scans u's row once to find forward neighbours.
        builder.extend(
            mem.na(np.arange(lo_u, hi_u, dtype=np.int64)),
            pc_na_u,
            AccessKind.LOAD,
            gaps=KERNEL_GAP,
        )
        for v in fwd_u.tolist():
            lo_v = int(offsets[v])
            hi_v = int(offsets[v + 1])
            builder.extend(
                mem.oa(np.array([v])), pc_oa, AccessKind.LOAD, gaps=KERNEL_GAP
            )
            if hi_v == lo_v:
                continue
            row_v = neighbors[lo_v:hi_v]
            fwd_v = row_v[row_v > v]
            # Merge-intersect walks v's forward half.
            scan = np.arange(lo_v, hi_v, dtype=np.int64)[row_v > v]
            if len(scan):
                builder.extend(mem.na(scan), pc_na_v, AccessKind.LOAD, gaps=KERNEL_GAP)
            if len(fwd_v):
                triangles += int(np.intersect1d(fwd_u, fwd_v).size)
    return KernelRun(name=name, values=triangles, trace=builder.build(), pcs=pcs.sites)
