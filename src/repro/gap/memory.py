"""Address-space model for traced graph kernels.

The GAP kernels run for real over a :class:`~repro.graphs.csr.CSRGraph`
and, as they execute, emit the memory accesses the compiled C++ kernels
would perform. This module provides the mapping from *logical* touches
("read ``OA[u]``", "gather ``rank[NA[j]]``") to the synthetic virtual
addresses and program counters the simulator sees:

* Each array — the Offset Array, Neighbours Array, edge weights, and any
  per-vertex Property Array — lives at its own widely-spaced base
  address, with 8-byte elements (64-bit indices/doubles, as in GAP).
* Each *code site* ("bfs.expand", "pr.gather") gets one fixed PC. The
  result is exactly the PC profile the paper characterizes: a handful of
  static PCs, each touching an enormous address range.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph

#: Element size for all arrays (64-bit values, as in GAP's C++ kernels).
ELEMENT_BYTES = 8

#: Spacing between array base addresses — 64 GiB apart, so arrays never
#: alias regardless of graph size.
_REGION_STRIDE = 1 << 36

_OA_REGION = 1
_NA_REGION = 2
_WEIGHTS_REGION = 3
_PROPERTY_REGION_START = 8

#: All kernel PCs live in one small code segment, 4 bytes apart.
_PC_BASE = 0x00401000
_PC_STRIDE = 4


class PCTable:
    """Allocates one stable PC per named code site.

    Sites are allocated in first-use order, so a kernel's PC layout is
    deterministic for a fixed code path. ``sites`` exposes the mapping
    for characterization (E2 counts PCs per kernel through this).
    """

    def __init__(self) -> None:
        self._sites: dict[str, int] = {}

    def pc(self, site: str) -> int:
        """The PC for ``site``, allocating on first use."""
        existing = self._sites.get(site)
        if existing is not None:
            return existing
        pc = _PC_BASE + len(self._sites) * _PC_STRIDE
        self._sites[site] = pc
        return pc

    @property
    def sites(self) -> dict[str, int]:
        """Mapping of site name to PC."""
        return dict(self._sites)

    def __len__(self) -> int:
        return len(self._sites)


class GraphMemory:
    """Maps logical array elements of one graph to virtual addresses."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self._property_regions: dict[str, int] = {}

    # Vectorized address builders: accept scalars or numpy arrays.

    def oa(self, v):
        """Address(es) of Offset Array entries."""
        return np.uint64(_OA_REGION * _REGION_STRIDE) + np.asarray(
            v, dtype=np.uint64
        ) * np.uint64(ELEMENT_BYTES)

    def na(self, i):
        """Address(es) of Neighbours Array entries."""
        return np.uint64(_NA_REGION * _REGION_STRIDE) + np.asarray(
            i, dtype=np.uint64
        ) * np.uint64(ELEMENT_BYTES)

    def weight(self, i):
        """Address(es) of per-edge weight entries (parallel to NA)."""
        return np.uint64(_WEIGHTS_REGION * _REGION_STRIDE) + np.asarray(
            i, dtype=np.uint64
        ) * np.uint64(ELEMENT_BYTES)

    def prop(self, name: str, v):
        """Address(es) of entries of the named Property Array.

        Property arrays (ranks, parents, distances, components, ...) are
        allocated a region on first use, in first-use order.
        """
        region = self._property_regions.get(name)
        if region is None:
            region = _PROPERTY_REGION_START + len(self._property_regions)
            self._property_regions[name] = region
        return np.uint64(region * _REGION_STRIDE) + np.asarray(
            v, dtype=np.uint64
        ) * np.uint64(ELEMENT_BYTES)

    @property
    def property_names(self) -> list[str]:
        """Property arrays allocated so far, in allocation order."""
        return list(self._property_regions)


def interleave_addr_streams(
    streams: list[tuple[np.ndarray, int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Interleave equal-length (addresses, pc) streams element-wise.

    ``[(a, pc_a), (b, pc_b)]`` yields ``a0 b0 a1 b1 ...`` with matching
    PCs — the shape of a gather loop's "load index, load value" pairing.
    """
    if not streams:
        raise WorkloadError("interleave_addr_streams needs at least one stream")
    length = len(streams[0][0])
    for addrs, _ in streams:
        if len(addrs) != length:
            raise WorkloadError("all interleaved streams must have equal length")
    k = len(streams)
    out_addrs = np.empty(length * k, dtype=np.uint64)
    out_pcs = np.empty(length * k, dtype=np.uint64)
    for i, (addrs, pc) in enumerate(streams):
        out_addrs[i::k] = addrs
        out_pcs[i::k] = pc
    return out_addrs, out_pcs


def row_edge_indices(graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
    """NA indices of all edges of ``vertices``, row by row, in order.

    The standard ragged-range trick: for frontier-style processing this
    produces exactly the sequence of Neighbours Array slots a top-down
    step walks.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = graph.offsets[vertices]
    counts = graph.offsets[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # offsets into the output where each row begins
    row_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.repeat(starts - row_starts, counts) + np.arange(total, dtype=np.int64)
