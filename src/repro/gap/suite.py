"""The GAP workload suite as the harness consumes it.

:func:`gap_suite` materializes the six traced kernels on the two GAP
graph families (kron / urand) at a configurable scale, returning
ready-to-simulate traces. Scale defaults keep each (workload, policy)
simulation in the low seconds while leaving the working set far above
the 1.375 MB LLC — the miss-dominated regime of the paper (DESIGN.md
substitution 3 documents the scaling argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..graphs.generators import kronecker, uniform_random
from ..trace.trace import Trace
from .bc import betweenness_centrality
from .bfs import bfs
from .cc import connected_components
from .common import KernelRun
from .pagerank import pagerank
from .sssp import sssp
from .tc import triangle_count

#: Kernel short names in GAP's canonical order.
GAP_KERNELS = ("bfs", "pr", "cc", "sssp", "bc", "tc")


@dataclass(frozen=True)
class GapWorkloadSpec:
    """One (kernel, graph) cell of the GAP evaluation matrix."""

    kernel: str
    graph_name: str
    scale: int
    degree: int
    seed: int = 42

    @property
    def name(self) -> str:
        """Canonical workload name, e.g. ``"bfs.kron15"``."""
        return f"{self.kernel}.{self.graph_name}{self.scale}"


def build_graph(spec: GapWorkloadSpec) -> CSRGraph:
    """Materialize the graph a workload spec runs on."""
    if spec.graph_name == "kron":
        return kronecker(spec.scale, edge_factor=spec.degree, seed=spec.seed)
    if spec.graph_name == "urand":
        return uniform_random(1 << spec.scale, avg_degree=spec.degree, seed=spec.seed)
    raise WorkloadError(f"unknown graph family {spec.graph_name!r}")


def run_kernel(kernel: str, graph: CSRGraph, trace_name: str, **kwargs) -> KernelRun:
    """Run one named kernel on a prebuilt graph."""
    runners: dict[str, Callable[..., KernelRun]] = {
        "bfs": lambda: bfs(
            graph, num_sources=kwargs.pop("num_sources", 4),
            trace_name=trace_name, **kwargs,
        ),
        "pr": lambda: pagerank(
            graph, num_iterations=kwargs.pop("num_iterations", 3),
            trace_name=trace_name, **kwargs,
        ),
        "cc": lambda: connected_components(graph, trace_name=trace_name, **kwargs),
        "sssp": lambda: sssp(graph, trace_name=trace_name, **kwargs),
        "bc": lambda: betweenness_centrality(
            graph, num_sources=kwargs.pop("num_sources", 1),
            trace_name=trace_name, **kwargs,
        ),
        "tc": lambda: triangle_count(graph, trace_name=trace_name, **kwargs),
    }
    runner = runners.get(kernel)
    if runner is None:
        raise WorkloadError(
            f"unknown GAP kernel {kernel!r}; expected one of {', '.join(GAP_KERNELS)}"
        )
    return runner()


def default_specs(
    scale: int = 13, degree: int = 12, graph_name: str = "kron"
) -> list[GapWorkloadSpec]:
    """The six-kernel suite on one graph family at one scale."""
    return [
        GapWorkloadSpec(kernel=k, graph_name=graph_name, scale=scale, degree=degree)
        for k in GAP_KERNELS
    ]


#: Default graph scale for experiments: 2**19 vertices with degree 16
#: puts every property array (4 MiB) well above both the L2 (1 MiB) and
#: the LLC (1.375 MiB), and the NA (~64 MiB) far beyond — the paper's
#: miss-dominated regime at ~1/100 the graph size (DESIGN.md
#: substitution 3). At this scale the simulated LLC MPKI average under
#: LRU lands on the paper's reported 41.8.
DEFAULT_SCALE = 19
DEFAULT_DEGREE = 16

#: Default traced window per workload (SimPoint-style fixed window).
DEFAULT_WINDOW = 500_000


def gap_suite(
    scale: int = DEFAULT_SCALE,
    degree: int = DEFAULT_DEGREE,
    graph_name: str = "kron",
    kernels: tuple[str, ...] = GAP_KERNELS,
    max_accesses: int | None = DEFAULT_WINDOW,
) -> dict[str, Trace]:
    """Traces of the requested kernels, keyed by workload name.

    One graph per family/scale is built and shared across kernels, as
    GAP itself does. ``max_accesses`` bounds each kernel's traced window
    (the paper's SimPoint-style fixed simulation windows).
    """
    graph = None
    traces: dict[str, Trace] = {}
    for kernel in kernels:
        spec = GapWorkloadSpec(
            kernel=kernel, graph_name=graph_name, scale=scale, degree=degree
        )
        if graph is None:
            graph = build_graph(spec)
        run = run_kernel(
            kernel, graph, trace_name=spec.name, max_accesses=max_accesses
        )
        traces[spec.name] = run.trace
    return traces
