"""Betweenness Centrality — Brandes' algorithm, as in GAP's BC kernel.

One (or a few) source vertices; per source:

1. **Forward phase** — a BFS that also counts shortest paths
   (``sigma``), recording vertices level by level. Traced like a
   top-down BFS with an extra ``sigma`` gather/update per edge.
2. **Backward phase** — walk the levels in reverse, accumulating the
   dependency ``delta[u] += sigma[u]/sigma[v] * (1 + delta[v])`` over
   edges into the next level; traced as a gather over ``sigma`` and
   ``delta`` plus the centrality write.

GAP runs a handful of sources on big graphs; ``num_sources`` controls
the same trade-off here.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..trace.record import AccessKind
from .common import KERNEL_GAP, KernelRun, make_kernel_tools, pick_sources
from .memory import interleave_addr_streams


def betweenness_centrality(
    graph: CSRGraph,
    num_sources: int = 2,
    sources: list[int] | None = None,
    trace_name: str | None = None,
    max_accesses: int | None = None,
) -> KernelRun:
    """Brandes BC from ``num_sources`` sources; returns scores + trace.

    With ``max_accesses`` set, the kernel stops once the trace budget is
    reached — the returned ``values`` then cover only the completed part
    of the computation (``trace.info["truncated"]`` is set). Correctness
    tests run without a budget.
    """
    n = graph.num_vertices
    if n == 0:
        raise WorkloadError("betweenness_centrality needs a non-empty graph")
    if sources is None:
        sources = pick_sources(graph, num_sources)
    for s in sources:
        if not 0 <= s < n:
            raise WorkloadError(f"BC source {s} out of range [0, {n})")
    name = trace_name or f"gap.bc.n{n}"
    mem, pcs, builder = make_kernel_tools(
        graph, name, info={"kernel": "bc", "sources": list(sources)},
        max_accesses=max_accesses,
    )
    pc_oa = pcs.pc("bc.load_offsets")
    pc_na = pcs.pc("bc.load_neighbor")
    pc_depth = pcs.pc("bc.probe_depth")
    pc_sigma = pcs.pc("bc.update_sigma")
    pc_delta = pcs.pc("bc.accumulate_delta")
    pc_score = pcs.pc("bc.write_score")

    scores = np.zeros(n)
    for source in sources:
        if builder.full:
            builder.info["truncated"] = True
            break
        depth = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n)
        depth[source] = 0
        sigma[source] = 1.0
        levels: list[np.ndarray] = [np.array([source], dtype=np.int64)]

        # Forward phase: BFS levels with path counting.
        while True:
            if builder.full:
                builder.info["truncated"] = True
                break
            frontier = levels[-1]
            next_level: list[int] = []
            for u in frontier.tolist():
                lo = int(graph.offsets[u])
                hi = int(graph.offsets[u + 1])
                builder.extend(
                    mem.oa(np.array([u])), pc_oa, AccessKind.LOAD, gaps=KERNEL_GAP
                )
                if hi == lo:
                    continue
                row = graph.neighbors[lo:hi]
                edge_idx = np.arange(lo, hi, dtype=np.int64)
                pair_addrs, pair_pcs = interleave_addr_streams(
                    [(mem.na(edge_idx), pc_na), (mem.prop("depth", row), pc_depth)]
                )
                builder.extend(pair_addrs, pair_pcs, AccessKind.LOAD, gaps=KERNEL_GAP)
                for v in row.tolist():
                    if depth[v] == -1:
                        depth[v] = depth[u] + 1
                        next_level.append(v)
                    if depth[v] == depth[u] + 1:
                        sigma[v] += sigma[u]
                        builder.extend(
                            mem.prop("sigma", np.array([v])),
                            pc_sigma,
                            AccessKind.STORE,
                            gaps=KERNEL_GAP,
                        )
            if not next_level:
                break
            levels.append(np.unique(np.array(next_level, dtype=np.int64)))

        if builder.info.get("truncated"):
            break  # budget hit mid-forward: skip this source's backward phase

        # Backward phase: accumulate dependencies level by level.
        delta = np.zeros(n)
        for frontier in reversed(levels[:-1] if len(levels) > 1 else levels):
            if builder.full:
                builder.info["truncated"] = True
                break
            for u in frontier.tolist():
                lo = int(graph.offsets[u])
                hi = int(graph.offsets[u + 1])
                builder.extend(
                    mem.oa(np.array([u])), pc_oa, AccessKind.LOAD, gaps=KERNEL_GAP
                )
                if hi > lo:
                    row = graph.neighbors[lo:hi]
                    edge_idx = np.arange(lo, hi, dtype=np.int64)
                    triple_addrs, triple_pcs = interleave_addr_streams(
                        [
                            (mem.na(edge_idx), pc_na),
                            (mem.prop("sigma", row), pc_sigma),
                            (mem.prop("delta", row), pc_delta),
                        ]
                    )
                    builder.extend(
                        triple_addrs, triple_pcs, AccessKind.LOAD, gaps=KERNEL_GAP
                    )
                    downstream = row[depth[row] == depth[u] + 1]
                    if len(downstream) and sigma[u] > 0:
                        contribution = (
                            sigma[u] / sigma[downstream] * (1.0 + delta[downstream])
                        )
                        delta[u] += contribution.sum()
                if u != source:
                    scores[u] += delta[u]
                    builder.extend(
                        mem.prop("score", np.array([u])),
                        pc_score,
                        AccessKind.STORE,
                        gaps=KERNEL_GAP,
                    )
    return KernelRun(name=name, values=scores, trace=builder.build(), pcs=pcs.sites)
