"""Breadth-First Search — GAP's direction-optimizing BFS (Beamer et al.).

The kernel alternates between two step types:

* **Top-down**: walk the frontier's adjacency rows, probing ``parent``
  for each neighbour and claiming undiscovered ones. Cheap when the
  frontier is small.
* **Bottom-up**: scan *all* unvisited vertices, walking each one's row
  until a frontier member is found (early exit). Cheap when the frontier
  is a large fraction of the graph, which happens in the middle levels
  of low-diameter graphs.

The switch uses GAP's alpha/beta heuristic on frontier edge counts. The
traced accesses follow the real C++ kernel: OA and NA walks, ``parent``
probes/claims in the top-down phase, and word-granularity bitmap probes
of the frontier in the bottom-up phase.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graphs.csr import CSRGraph
from ..trace.record import AccessKind
from .common import KERNEL_GAP, KernelRun, make_kernel_tools, pick_sources
from .memory import interleave_addr_streams


def bfs(
    graph: CSRGraph,
    source: int | None = None,
    alpha: int = 15,
    beta: int = 18,
    num_sources: int = 1,
    sources: list[int] | None = None,
    trace_name: str | None = None,
    max_accesses: int | None = None,
) -> KernelRun:
    """Direction-optimizing BFS; returns parents (of the last trial) + trace.

    GAP runs BFS as repeated trials from different sources:
    ``num_sources`` trials are concatenated into one trace, with sources
    taken from ``sources`` if given, else ``source`` (single trial), else
    picked deterministically among connected vertices. ``max_accesses``
    bounds the traced window; when it truncates mid-trial, that trial's
    ``values`` are partial (``trace.info["truncated"]`` is set).
    """
    n = graph.num_vertices
    if num_sources < 1:
        raise WorkloadError(f"num_sources must be >= 1, got {num_sources}")
    if sources is None:
        if source is not None:
            sources = pick_sources(graph, num_sources, seed=source + 27)
            sources[0] = source
        else:
            sources = pick_sources(graph, num_sources)
    for s in sources:
        if not 0 <= s < n:
            raise WorkloadError(f"BFS source {s} out of range [0, {n})")
    name = trace_name or f"gap.bfs.n{n}"
    mem, pcs, builder = make_kernel_tools(
        graph, name, info={"kernel": "bfs", "sources": list(sources)},
        max_accesses=max_accesses,
    )
    pc_oa = pcs.pc("bfs.load_offsets")
    pc_na = pcs.pc("bfs.load_neighbor")
    pc_probe = pcs.pc("bfs.probe_parent")
    pc_claim = pcs.pc("bfs.claim_parent")
    pc_scan = pcs.pc("bfs.scan_unvisited")
    pc_bmp = pcs.pc("bfs.probe_bitmap")

    total_edges = graph.num_edges
    parents = np.full(n, -1, dtype=np.int64)
    for trial, trial_source in enumerate(sources):
        parents = np.full(n, -1, dtype=np.int64)
        parents[trial_source] = trial_source
        frontier = np.array([trial_source], dtype=np.int64)
        edges_done = 0
        while len(frontier):
            if builder.full and max_accesses is not None:
                builder.info["truncated"] = True
                break
            frontier_edges = int(
                (graph.offsets[frontier + 1] - graph.offsets[frontier]).sum()
            )
            remaining = total_edges - edges_done
            bottom_up = (
                frontier_edges * alpha > remaining and len(frontier) > n // beta
            )
            if bottom_up:
                frontier = _bottom_up_step(
                    graph, mem, builder, parents, frontier,
                    pc_scan, pc_oa, pc_na, pc_bmp,
                )
            else:
                frontier = _top_down_step(
                    graph, mem, builder, parents, frontier,
                    pc_oa, pc_na, pc_probe, pc_claim,
                )
            edges_done += frontier_edges
        if builder.full and trial + 1 < num_sources:
            builder.info["truncated_after_trials"] = trial + 1
            break
    return KernelRun(name=name, values=parents, trace=builder.build(), pcs=pcs.sites)


def _top_down_step(
    graph, mem, builder, parents, frontier, pc_oa, pc_na, pc_probe, pc_claim
) -> np.ndarray:
    """Expand the frontier vertex by vertex, claiming new parents."""
    next_frontier: list[int] = []
    for u in frontier.tolist():
        lo = int(graph.offsets[u])
        hi = int(graph.offsets[u + 1])
        builder.extend(mem.oa(np.array([u])), pc_oa, AccessKind.LOAD, gaps=KERNEL_GAP)
        if hi == lo:
            continue
        row = graph.neighbors[lo:hi]
        edge_idx = np.arange(lo, hi, dtype=np.int64)
        pair_addrs, pair_pcs = interleave_addr_streams(
            [(mem.na(edge_idx), pc_na), (mem.prop("parent", row), pc_probe)]
        )
        builder.extend(pair_addrs, pair_pcs, AccessKind.LOAD, gaps=KERNEL_GAP)
        undiscovered = row[parents[row] == -1]
        if len(undiscovered):
            claimed = np.unique(undiscovered)
            parents[claimed] = u
            next_frontier.extend(claimed.tolist())
            builder.extend(
                mem.prop("parent", claimed), pc_claim, AccessKind.STORE, gaps=KERNEL_GAP
            )
    return np.array(next_frontier, dtype=np.int64)


def _bottom_up_step(
    graph, mem, builder, parents, frontier, pc_scan, pc_oa, pc_na, pc_bmp
) -> np.ndarray:
    """Every unvisited vertex searches its row for a frontier member."""
    n = graph.num_vertices
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[frontier] = True
    # The sequential sweep over the parent array that finds unvisited
    # vertices (GAP reads the visited bitmap; we charge the array scan at
    # word granularity, one read per 8 vertices' worth of 64-bit words).
    words = np.arange(0, n, 8, dtype=np.int64)
    builder.extend(mem.prop("parent", words), pc_scan, AccessKind.LOAD, gaps=KERNEL_GAP)

    next_frontier: list[int] = []
    for u in np.nonzero(parents == -1)[0].tolist():
        lo = int(graph.offsets[u])
        hi = int(graph.offsets[u + 1])
        builder.extend(mem.oa(np.array([u])), pc_oa, AccessKind.LOAD, gaps=KERNEL_GAP)
        if hi == lo:
            continue
        row = graph.neighbors[lo:hi]
        hits = in_frontier[row]
        first_hit = int(np.argmax(hits)) if hits.any() else len(row) - 1
        scanned = first_hit + 1
        edge_idx = np.arange(lo, lo + scanned, dtype=np.int64)
        # Bitmap probes read 64-bit words of the frontier bitmap.
        bitmap_words = row[:scanned] >> 6
        pair_addrs, pair_pcs = interleave_addr_streams(
            [(mem.na(edge_idx), pc_na), (mem.prop("front_bitmap", bitmap_words), pc_bmp)]
        )
        builder.extend(pair_addrs, pair_pcs, AccessKind.LOAD, gaps=KERNEL_GAP)
        if hits.any():
            parents[u] = int(row[first_hit])
            next_frontier.append(u)
            builder.extend(
                mem.prop("parent", np.array([u])), pc_scan, AccessKind.STORE,
                gaps=KERNEL_GAP,
            )
    return np.array(next_frontier, dtype=np.int64)
