"""The GAP benchmark suite, traced: six kernels over CSR graphs."""

from .bc import betweenness_centrality
from .bfs import bfs
from .cc import connected_components
from .common import KernelRun
from .memory import GraphMemory, PCTable, interleave_addr_streams, row_edge_indices
from .pagerank import pagerank
from .sssp import make_weights, sssp
from .suite import GAP_KERNELS, GapWorkloadSpec, build_graph, default_specs, gap_suite, run_kernel
from .tc import triangle_count

__all__ = [
    "KernelRun",
    "GraphMemory",
    "PCTable",
    "interleave_addr_streams",
    "row_edge_indices",
    "bfs",
    "pagerank",
    "connected_components",
    "sssp",
    "make_weights",
    "betweenness_centrality",
    "triangle_count",
    "GAP_KERNELS",
    "GapWorkloadSpec",
    "build_graph",
    "default_specs",
    "gap_suite",
    "run_kernel",
]
