"""Memory subsystem: caches, hierarchy, DRAM, prefetchers."""

from .cache import AccessResult, Cache, CacheStats
from .dram import DRAM, DRAMConfig, DRAMStats
from .hierarchy import CacheHierarchy, HierarchyStats, ServiceLevel
from .prefetcher import IPStridePrefetcher, NextLinePrefetcher, Prefetcher

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "DRAM",
    "DRAMConfig",
    "DRAMStats",
    "CacheHierarchy",
    "HierarchyStats",
    "ServiceLevel",
    "Prefetcher",
    "NextLinePrefetcher",
    "IPStridePrefetcher",
]
