"""Batched multi-cell execution path (``engine="batched"``).

A sweep matrix runs the *same trace* under many LLC policies. The
reference and fast engines simulate each (trace, policy) cell from
scratch, so everything above the LLC — the L1I/L1D/L2 levels, which
always run exact LRU and are probed before any LLC interaction — is
recomputed once per policy even though the LLC never feeds back into it:

* an LLC probe or fill never touches the upper levels (non-inclusive
  hierarchy, the only mode the fast engines model), and
* memory latency only reaches the core model, never upper-level state.

So the upper levels' entire evolution, the sequence of events that
escape to the LLC (demand probes and L2-victim writebacks), and the base
(pre-DRAM) latency of every record are functions of the trace and the
machine config alone. The same is true of the core model's *pop
schedule*: which record retires how many ROB entries and whether a load
waits on an MSHR slot depend only on instruction positions and queue
occupancy — integers derived from the gap stream — never on latencies.
Only the *stall values* (completion cycle vs front-end cycle) differ per
policy.

:class:`BatchPlan` therefore scans the trace once per (trace, config,
warmup) combination and bakes out, per record:

* ``gap / dispatch_width`` (the float the core adds every record),
* the base latency (L1 hit, +L2 on L1 miss, +LLC on L2 miss),
* an opcode packing the LLC event count, the ROB pop count, the MSHR
  pop flag and the load flag,

plus flat arrays of the LLC-visible events. :meth:`BatchPlan.replay`
then drives one cell: the LLC tag/dirty rows and DRAM bank timing with
the generic cache/memory bookkeeping inlined around the *real*
policy-hook calls (``on_hit``/``find_victim``/``on_eviction``/
``on_fill`` — the per-cell variable is the policy, so its code runs
unmodified on the live tag rows), plus a ring buffer of load-completion
cycles that replays :meth:`~repro.core.cpu.CoreModel.step`'s float
arithmetic in the identical order. Everything the upper levels
contribute to the result — level statistics, ``l1d_misses``, served-by
counts, final tag/dirty/LRU state — is computed once in the plan and
published into every cell.

Two further plan-time reductions keep the per-cell replay close to the
irreducible LLC/DRAM work:

* When ``dispatch_width`` is a power of two (every shipped config),
  every core float is an exact multiple of ``1/width`` far below 2**53,
  so ``cycle`` arithmetic is *exact* and therefore associative: runs of
  records that neither pop, load, nor carry LLC events fold into a
  single front-end advance bit-identically (:func:`_fold_records`).
* The hot dispatch handles the three event-free record shapes
  (load+MSHR-pop, load into a free slot, store) without touching the
  event machinery at all.

Bit-identity with the reference engine rests on the invariants above
plus the ones inherited from :mod:`repro.mem.fastpath` (victim-selection
order under a shared monotonic clock, LLC call order, float operation
order); ``repro verify-fastpath --engine batched`` proves it per policy.

Eligibility (:func:`batch_eligible`) is exactly as conservative as
:func:`~repro.mem.fastpath.fastpath_eligible`: prefetching, inclusive
mode, sanitizers, upper-level taps, non-LRU upper levels or trace
records beyond IFETCH all fall back to the per-cell engines. An LLC
telemetry tap is allowed — tapped replays route LLC events through the
regular :class:`~repro.mem.cache.Cache` methods (:meth:`_replay_tapped`)
so the tap observes every access and eviction.
"""

from __future__ import annotations

from itertools import accumulate
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.config import cascade_lake
from ..core.cpu import CoreModel, CoreStats
from ..core.results import SimulationResult, snapshot_result
from ..core.simulator import (
    DEFAULT_WARMUP_FRACTION,
    _reset_statistics,
    build_hierarchy,
    simulate,
)
from ..errors import ConfigurationError
from ..policies.base import BYPASS, PolicyAccess
from ..policies.basic import LRUPolicy
from ..policies.glider import (
    ISVM_TABLE_BITS,
    ISVM_TABLE_SIZE,
    THRESHOLD_AVERSE,
    THRESHOLD_CONFIDENT,
    GliderPolicy,
)
from ..policies.hawkeye import (
    FRIENDLY_THRESHOLD,
    HAWKEYE_RRPV_MAX,
    PREDICTOR_BITS,
    PREDICTOR_SIZE,
    HawkeyePolicy,
)
from ..policies.mpppb import (
    SAMPLE_STRIDE as MP_SAMPLE_STRIDE,
    TABLE_BITS as MP_TABLE_BITS,
    TABLE_SIZE as MP_TABLE_SIZE,
    THETA_BYPASS,
    THETA_DEAD,
    MPPPBPolicy,
)
from ..policies.rrip import (
    BRRIP_LONG_PERIOD,
    RRPV_MAX,
    DRRIPPolicy,
    SRRIPPolicy,
)
from ..policies.ship import SHCT_MAX, SHCT_SIZE, SIGNATURE_BITS, SHiPPolicy
from .hierarchy import ServiceLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable, Iterable, Sequence

    from ..core.config import CoreConfig, MachineConfig
    from ..policies.base import ReplacementPolicy
    from ..telemetry.collector import TelemetryCollector, TelemetryConfig
    from ..trace.trace import Trace
    from .cache import Cache
    from .hierarchy import CacheHierarchy

    #: (on_hit, on_fill, on_eviction, find_victim, check_in) closure set.
    _TouchHook = Callable[[int, int, PolicyAccess], None]
    _EvictHook = Callable[[int, int, int], None]
    _VictimHook = Callable[[int, PolicyAccess, list[int]], int]
    _PolicyHooks = tuple[
        _TouchHook, _TouchHook, _EvictHook, _VictimHook, Callable[[], None] | None
    ]

#: Opcode layout: bit 0 = load/ifetch (occupies the window), bit 1 =
#: MSHR pop, bits 2..19 = ROB pop count, bits 20+ = LLC event count.
_OP_LOAD = 1
_OP_MSHR = 2
_ROB_SHIFT = 2
_ROB_MASK = (1 << 18) - 1
_EV_SHIFT = 20

#: Gap folding requires every intermediate ``cycle`` value to be exactly
#: representable (an integer multiple of 1/width below 2**53) so float
#: addition stays associative; 2**50 leaves width ≤ 8 of headroom.
_EXACT_CYCLE_BOUND = 1 << 50


class _PlanLevel:
    """Flattened checkout of one always-LRU upper level.

    Mirrors ``_FastLevel`` from :mod:`repro.mem.fastpath`, but checked
    out of a scratch hierarchy the plan owns: after the scan its state is
    frozen and :meth:`publish_into` copies counters plus final
    tag/dirty/stamp state into every cell's hierarchy.
    """

    __slots__ = (
        "num_ways", "num_sets", "set_mask", "hit_latency",
        "tags", "dirty", "stamps", "index", "occupancy",
        "demand_accesses", "demand_hits", "writeback_accesses",
        "writeback_hits", "evictions", "dirty_evictions", "per_kind_misses",
        "_final_rows",
    )

    def __init__(self, cache: Cache) -> None:
        policy = cache.policy
        if type(policy) is not LRUPolicy:
            raise TypeError(
                f"{cache.name}: batch plan requires exact LRU, got {policy.name}"
            )
        self.num_ways = cache.num_ways
        self.num_sets = cache.num_sets
        self.set_mask = cache._set_mask
        self.hit_latency = cache.hit_latency
        self.tags: list[int] = [t for row in cache._tags for t in row]
        self.dirty = bytearray(
            1 if d else 0 for row in cache._dirty for d in row
        )
        self.stamps: list[int] = [s for row in policy._stamp for s in row]
        self.index: dict[int, int] = {
            tag: i for i, tag in enumerate(self.tags) if tag != -1
        }
        self.occupancy: list[int] = [
            sum(1 for t in row if t != -1) for row in cache._tags
        ]
        self.demand_accesses = 0
        self.demand_hits = 0
        self.writeback_accesses = 0
        self.writeback_hits = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.per_kind_misses: dict[int, int] = {}
        # Final state re-nested into rows, built lazily on the first
        # publish (the plan is frozen by then) and row-copied into each
        # cell so cells never alias the plan or each other.
        self._final_rows: tuple[
            list[list[int]], list[list[bool]], list[list[int]]
        ] | None = None

    def reset_counters(self) -> None:
        """Mirror of the driver's warm-up statistics reset."""
        self.demand_accesses = 0
        self.demand_hits = 0
        self.writeback_accesses = 0
        self.writeback_hits = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.per_kind_misses = {}

    def publish_into(self, cache: Cache, clock: int) -> None:
        """Copy measured counters and final state into a cell's cache."""
        stats = cache.stats
        stats.demand_accesses = self.demand_accesses
        stats.demand_hits = self.demand_hits
        stats.writeback_accesses = self.writeback_accesses
        stats.writeback_hits = self.writeback_hits
        stats.evictions = self.evictions
        stats.dirty_evictions = self.dirty_evictions
        stats.per_kind_misses = dict(self.per_kind_misses)
        if self._final_rows is None:
            ways = self.num_ways
            sets = self.num_sets
            tags = self.tags
            dirty = self.dirty
            stamps = self.stamps
            self._final_rows = (
                [tags[s * ways:(s + 1) * ways] for s in range(sets)],
                [
                    [b != 0 for b in dirty[s * ways:(s + 1) * ways]]
                    for s in range(sets)
                ],
                [stamps[s * ways:(s + 1) * ways] for s in range(sets)],
            )
        tag_rows, dirty_rows, stamp_rows = self._final_rows
        cache._tags = [row[:] for row in tag_rows]
        cache._dirty = [row[:] for row in dirty_rows]
        policy = cache.policy
        policy._stamp = [row[:] for row in stamp_rows]
        policy._clock = clock


class _PlanMachine:
    """Upper-level machine that records LLC-visible events.

    Runs the L1I/L1D/L2 transitions of :class:`FastMachine` with the
    same shared monotonic clock, but instead of probing the LLC it
    appends (demand | writeback) events to flat lists for the per-cell
    replay to consume.
    """

    __slots__ = (
        "l1i", "l1d", "l2", "clock", "block_bits", "llc_hit_latency",
        "l1d_misses", "served_l1", "served_l2",
        "ev_demand", "ev_block", "ev_pc", "ev_kind", "ev_isdata",
    )

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.l1i = _PlanLevel(hierarchy.l1i)
        self.l1d = _PlanLevel(hierarchy.l1d)
        self.l2 = _PlanLevel(hierarchy.l2)
        # One machine-wide clock, seeded past every checked-out stamp —
        # the same relative-order argument as FastMachine.
        self.clock = max(
            hierarchy.l1i.policy._clock,
            hierarchy.l1d.policy._clock,
            hierarchy.l2.policy._clock,
        )
        self.block_bits = hierarchy.block_bits
        self.llc_hit_latency = hierarchy.llc.hit_latency
        self.l1d_misses = 0
        self.served_l1 = 0
        self.served_l2 = 0
        self.ev_demand: list[int] = []
        self.ev_block: list[int] = []
        self.ev_pc: list[int] = []
        self.ev_kind: list[int] = []
        self.ev_isdata: list[int] = []

    def reset_counters(self) -> None:
        self.l1i.reset_counters()
        self.l1d.reset_counters()
        self.l2.reset_counters()
        self.l1d_misses = 0
        self.served_l1 = 0
        self.served_l2 = 0

    # -- fill / writeback cascade (same transitions as FastMachine) -----------

    def _fill(self, lvl: _PlanLevel, block: int, kind: int) -> int:
        """Insert ``block``; returns the dirty victim block, or -1."""
        ways = lvl.num_ways
        set_index = block & lvl.set_mask
        base = set_index * ways
        tags = lvl.tags
        occupancy = lvl.occupancy
        victim = -1
        victim_dirty = 0
        if occupancy[set_index] < ways:
            idx = tags.index(-1, base, base + ways)
            occupancy[set_index] += 1
        else:
            end = base + ways
            stamps = lvl.stamps
            idx = stamps.index(min(stamps[base:end]), base, end)
            victim = tags[idx]
            victim_dirty = lvl.dirty[idx]
            lvl.evictions += 1
            if victim_dirty:
                lvl.dirty_evictions += 1
            del lvl.index[victim]
        tags[idx] = block
        lvl.index[block] = idx
        lvl.dirty[idx] = 1 if kind == 1 or kind == 4 else 0  # STORE/WRITEBACK
        clock = self.clock + 1
        self.clock = clock
        lvl.stamps[idx] = clock
        return victim if victim_dirty else -1

    def _emit_writeback(self, block: int) -> None:
        """An L2 victim escapes to the LLC: record the writeback event."""
        self.ev_demand.append(0)
        self.ev_block.append(block)
        self.ev_pc.append(0)
        self.ev_kind.append(4)  # AccessKind.WRITEBACK
        self.ev_isdata.append(0)

    def _writeback_to_l2(self, block: int) -> None:
        l2 = self.l2
        l2.writeback_accesses += 1
        idx = l2.index.get(block)
        if idx is not None:
            l2.writeback_hits += 1
            clock = self.clock + 1
            self.clock = clock
            l2.stamps[idx] = clock
            l2.dirty[idx] = 1
            return
        pkm = l2.per_kind_misses
        pkm[4] = pkm.get(4, 0) + 1
        wb = self._fill(l2, block, 4)
        if wb >= 0:
            self._emit_writeback(wb)

    def _miss(
        self, l1: _PlanLevel, block: int, pc: int, kind: int, is_data: bool
    ) -> int:
        """L1 demand miss: probe L2, emitting any LLC-bound events.

        Event order per record matches FastMachine's LLC call order:
        demand probe first, then the L2-fill victim writeback, then the
        L1-fill → L2 cascade's victim writeback.
        """
        latency = l1.hit_latency
        fill = self._fill
        l2 = self.l2
        l2.demand_accesses += 1
        idx = l2.index.get(block)
        if idx is not None:
            l2.demand_hits += 1
            clock = self.clock + 1
            self.clock = clock
            l2.stamps[idx] = clock
            if kind == 1:
                l2.dirty[idx] = 1
            latency += l2.hit_latency
            wb = fill(l1, block, kind)
            if wb >= 0:
                self._writeback_to_l2(wb)
            self.served_l2 += 1
            return latency
        pkm = l2.per_kind_misses
        pkm[kind] = pkm.get(kind, 0) + 1

        # The demand escapes to the LLC. Both the hit and miss branches
        # of the per-cell replay add llc.hit_latency, so it folds into
        # the base latency here; DRAM latency is added per cell.
        latency += l2.hit_latency
        latency += self.llc_hit_latency
        self.ev_demand.append(1)
        self.ev_block.append(block)
        self.ev_pc.append(pc)
        self.ev_kind.append(kind)
        self.ev_isdata.append(1 if is_data else 0)

        wb = fill(l2, block, kind)
        if wb >= 0:
            self._emit_writeback(wb)
        wb = fill(l1, block, kind)
        if wb >= 0:
            self._writeback_to_l2(wb)
        return latency

    # -- the scan --------------------------------------------------------------

    def scan(
        self,
        trace: Trace,
        start: int,
        stop: int,
        core_cfg: CoreConfig,
        gws: list[float],
        lats: list[int],
        codes: list[int],
        prefixes: list[tuple[int, int, int, int, int, int]] | None,
    ) -> tuple[int, int, int, int]:
        """Stream records [start, stop): upper levels + core schedule.

        Appends one (gap/width, base latency, opcode) triple per record
        and returns ``(loads, base load latency, instructions, loads
        still in flight)`` for the phase. The core schedule — how many
        ROB entries retire at each record and whether a load waits on an
        MSHR slot — is pure integer arithmetic on instruction positions,
        so it is identical for every cell.
        """
        from collections import deque

        addrs = trace.addrs[start:stop].tolist()
        pcs = trace.pcs[start:stop].tolist()
        kinds = trace.kinds[start:stop].tolist()
        gaps = trace.gaps[start:stop].tolist()

        width = core_cfg.dispatch_width
        rob = core_cfg.rob_size
        mshrs = core_cfg.max_outstanding_misses
        posq: deque[int] = deque()
        pos_pop = posq.popleft
        pos_push = posq.append
        instr = 0
        loads = 0
        load_lat = 0

        l1d = self.l1d
        l1i = self.l1i
        l2 = self.l2
        d_get = l1d.index.get
        i_get = l1i.index.get
        d_stamps = l1d.stamps
        i_stamps = l1i.stamps
        d_dirty = l1d.dirty
        d_lat = l1d.hit_latency
        i_lat = l1i.hit_latency
        d_pkm = l1d.per_kind_misses
        i_pkm = l1i.per_kind_misses
        d_acc = l1d.demand_accesses
        d_hits = l1d.demand_hits
        i_acc = l1i.demand_accesses
        i_hits = l1i.demand_hits
        served_l1 = self.served_l1
        l1d_misses = self.l1d_misses
        clock = self.clock
        bbits = self.block_bits
        miss = self._miss
        ev_blocks = self.ev_block
        n_ev = len(ev_blocks)

        gw_append = gws.append
        lat_append = lats.append
        code_append = codes.append
        px_append = prefixes.append if prefixes is not None else None

        for addr, pc, kind, gap in zip(addrs, pcs, kinds, gaps):
            block = addr >> bbits
            if kind <= 1:  # LOAD / STORE → L1D
                d_acc += 1
                idx = d_get(block)
                if idx is not None:
                    d_hits += 1
                    clock += 1
                    d_stamps[idx] = clock
                    if kind == 1:
                        d_dirty[idx] = 1
                    served_l1 += 1
                    latency = d_lat
                    ne = 0
                else:
                    d_pkm[kind] = d_pkm.get(kind, 0) + 1
                    l1d_misses += 1
                    self.clock = clock
                    latency = miss(l1d, block, pc, kind, True)
                    clock = self.clock
                    new_ev = len(ev_blocks)
                    ne = new_ev - n_ev
                    n_ev = new_ev
            else:  # IFETCH (eligibility guarantees kind == 2) → L1I
                i_acc += 1
                idx = i_get(block)
                if idx is not None:
                    i_hits += 1
                    clock += 1
                    i_stamps[idx] = clock
                    served_l1 += 1
                    latency = i_lat
                    ne = 0
                else:
                    i_pkm[2] = i_pkm.get(2, 0) + 1
                    self.clock = clock
                    latency = miss(l1i, block, pc, 2, False)
                    clock = self.clock
                    new_ev = len(ev_blocks)
                    ne = new_ev - n_ev
                    n_ev = new_ev

            # Core schedule: positions only; completion cycles are
            # per-cell. Same pop conditions as CoreModel.step.
            instr += gap
            horizon = instr - rob
            nrob = 0
            while posq and posq[0] < horizon:
                pos_pop()
                nrob += 1
            if kind != 1:  # LOAD or IFETCH occupy the window
                if len(posq) >= mshrs:
                    pos_pop()
                    op = (ne << _EV_SHIFT) | (nrob << _ROB_SHIFT) | _OP_MSHR | _OP_LOAD
                else:
                    op = (ne << _EV_SHIFT) | (nrob << _ROB_SHIFT) | _OP_LOAD
                loads += 1
                load_lat += latency
                pos_push(instr)
            else:
                op = (ne << _EV_SHIFT) | (nrob << _ROB_SHIFT)
            code_append(op)
            gw_append(gap / width)
            lat_append(latency)
            if px_append is not None:
                px_append(
                    (d_acc, d_hits, i_acc, i_hits, l2.demand_accesses, l2.demand_hits)
                )

        self.clock = clock
        l1d.demand_accesses = d_acc
        l1d.demand_hits = d_hits
        l1i.demand_accesses = i_acc
        l1i.demand_hits = i_hits
        self.served_l1 = served_l1
        self.l1d_misses = l1d_misses
        return loads, load_lat, instr, len(posq)


class _CellState:
    """Per-cell mutable replay state: core clock + in-flight ring."""

    __slots__ = (
        "cycle", "ring", "rh", "rt", "rob_stall", "mshr_stall",
        "load_lat_extra", "served_llc", "served_dram", "l1d_misses_to_dram",
    )

    def __init__(self, ring_size: int) -> None:
        self.cycle = 0.0
        # Completion cycles of in-flight loads, FIFO. Occupancy is
        # bounded by the MSHR count (the schedule pops before every
        # append at capacity), so a fixed ring with head/tail cursors
        # replaces the reference deque of (position, completion) tuples.
        self.ring = [0.0] * ring_size
        self.rh = 0
        self.rt = 0
        self.rob_stall = 0.0
        self.mshr_stall = 0.0
        self.load_lat_extra = 0
        self.served_llc = 0
        self.served_dram = 0
        self.l1d_misses_to_dram = 0


def _noop_eviction(set_index: int, way: int, victim_block: int) -> None:
    """Stand-in for the base class's no-op ``on_eviction``."""


_KIND_STORE = 1
_KIND_PREFETCH = 3
_KIND_WRITEBACK = 4
_SHCT_MASK = SHCT_SIZE - 1
_SIG2 = 2 * SIGNATURE_BITS
_PRED_MASK = PREDICTOR_SIZE - 1
_PRED_SHIFT2 = 2 * PREDICTOR_BITS
_ISVM_MASK = ISVM_TABLE_SIZE - 1
_ISVM_SHIFT2 = 2 * ISVM_TABLE_BITS
_MP_MASK = MP_TABLE_SIZE - 1


def _specialized_hooks(policy: Any) -> _PolicyHooks | None:
    """Closure replacements for the paper policies' hook methods.

    Hook *dispatch* — bound-method calls, ``PolicyAccess`` property
    lookups, Python-level victim scans — costs as much as the state
    updates themselves for the simple policies, and is a sizable tax
    even on the learned ones. This returns ``(on_hit, on_fill,
    on_eviction, find_victim, check_in)`` closures that mutate the
    policy's own state lists in place with the identical arithmetic in
    the identical order (C-level ``min``/``index``/``in`` scans replace
    the reference's first-match Python loops, which pick the same way),
    so results stay bit-identical — `verify-fastpath --engine batched`
    covers every one of these policies. Scalar state (the LRU clock,
    DRRIP's PSEL/fill counter, fill/bypass statistics) lives in cells
    of the closure; ``check_in`` (possibly ``None``) writes it back so
    snapshots and later replays observe it.

    Exact-type matches only: a subclass overriding any hook falls back
    to its real methods.
    """
    cls = type(policy)
    if cls is LRUPolicy:
        stamps: list[list[int]] = policy._stamp
        clock: int = policy._clock

        def lru_touch(set_index: int, way: int, access: PolicyAccess) -> None:
            nonlocal clock
            clock += 1
            stamps[set_index][way] = clock

        def lru_victim(set_index: int, access: PolicyAccess, tags: list[int]) -> int:
            row = stamps[set_index]
            return row.index(min(row))

        def lru_check_in() -> None:
            policy._clock = clock

        return lru_touch, lru_touch, _noop_eviction, lru_victim, lru_check_in

    if cls is SRRIPPolicy or cls is DRRIPPolicy:
        rrpv: list[list[int]] = policy._rrpv

        def rrip_hit(set_index: int, way: int, access: PolicyAccess) -> None:
            rrpv[set_index][way] = 0

        def rrip_victim(set_index: int, access: PolicyAccess, tags: list[int]) -> int:
            row = rrpv[set_index]
            while RRPV_MAX not in row:
                row[:] = [value + 1 for value in row]
            return row.index(RRPV_MAX)

        if cls is SRRIPPolicy:

            def srrip_fill(set_index: int, way: int, access: PolicyAccess) -> None:
                rrpv[set_index][way] = RRPV_MAX - 1

            return rrip_hit, srrip_fill, _noop_eviction, rrip_victim, None

        leader = policy._leader
        psel = policy._psel
        psel_max = policy._psel_max
        psel_mid = (psel_max + 1) // 2
        fills = policy._fill_count

        def drrip_fill(set_index: int, way: int, access: PolicyAccess) -> None:
            nonlocal psel, fills
            role = leader[set_index]
            kind = access.kind
            # record_demand_miss() precedes the insertion decision, so a
            # follower read of PSEL sees this miss already counted.
            if kind != _KIND_WRITEBACK and kind != _KIND_PREFETCH:
                if role > 0:
                    if psel < psel_max:
                        psel += 1
                elif role < 0 and psel > 0:
                    psel -= 1
            if role > 0 or (role == 0 and psel < psel_mid):
                rrpv[set_index][way] = RRPV_MAX - 1
            else:
                fills += 1
                rrpv[set_index][way] = (
                    RRPV_MAX - 1 if fills % BRRIP_LONG_PERIOD == 0 else RRPV_MAX
                )

        def drrip_check_in() -> None:
            policy._psel = psel
            policy._fill_count = fills

        return rrip_hit, drrip_fill, _noop_eviction, rrip_victim, drrip_check_in

    if cls is SHiPPolicy:
        ship_rrpv: list[list[int]] = policy._rrpv
        line_sig = policy._line_sig
        line_reused = policy._line_reused
        line_valid = policy._line_valid
        shct = policy._shct

        def ship_hit(set_index: int, way: int, access: PolicyAccess) -> None:
            if access.kind == _KIND_WRITEBACK:
                return
            ship_rrpv[set_index][way] = 0
            if line_valid[set_index][way] and not line_reused[set_index][way]:
                line_reused[set_index][way] = True
                sig = line_sig[set_index][way]
                if shct[sig] < SHCT_MAX:
                    shct[sig] += 1

        def ship_fill(set_index: int, way: int, access: PolicyAccess) -> None:
            pc = access.pc
            sig = (pc ^ (pc >> SIGNATURE_BITS) ^ (pc >> _SIG2)) & _SHCT_MASK
            line_sig[set_index][way] = sig
            line_reused[set_index][way] = False
            if access.kind == _KIND_WRITEBACK:
                ship_rrpv[set_index][way] = RRPV_MAX
                line_valid[set_index][way] = False
                return
            line_valid[set_index][way] = True
            ship_rrpv[set_index][way] = (
                RRPV_MAX if shct[sig] == 0 else RRPV_MAX - 1
            )

        def ship_evict(set_index: int, way: int, victim_block: int) -> None:
            if line_valid[set_index][way] and not line_reused[set_index][way]:
                sig = line_sig[set_index][way]
                if shct[sig] > 0:
                    shct[sig] -= 1
            line_valid[set_index][way] = False

        def ship_victim(set_index: int, access: PolicyAccess, tags: list[int]) -> int:
            row = ship_rrpv[set_index]
            while RRPV_MAX not in row:
                row[:] = [value + 1 for value in row]
            return row.index(RRPV_MAX)

        return ship_hit, ship_fill, ship_evict, ship_victim, None

    # The learned policies get the same treatment with one boundary:
    # everything that *learns* — Hawkeye's and Glider's OPTgen sampler
    # and (de)training, MPPPB's perceptron update — stays a real method
    # call, while the per-touch bookkeeping around it (prediction reads,
    # RRPV/stamp writes, the insertion-aging loop) is inlined. Their
    # find_victim common case — evict the first cache-averse line (RRPV
    # at max) — is a side-effect-free scan the C-level ``in``/``index``
    # pair resolves identically; the friendly-eviction fallback (which
    # detrains the predictor) re-enters the real method, whose own
    # leading scan then finds nothing and proceeds unchanged.

    if cls is HawkeyePolicy:
        h_rrpv: list[list[int]] = policy._rrpv
        h_friendly = policy._line_friendly
        h_pc = policy._line_pc
        h_counters = policy._counters
        h_sample = policy._sample
        h_real_victim: _VictimHook = policy.find_victim
        h_stat_friendly = policy.stat_friendly_fills
        h_stat_averse = policy.stat_averse_fills

        def hawkeye_hit(set_index: int, way: int, access: PolicyAccess) -> None:
            h_sample(set_index, access)
            if access.kind == _KIND_WRITEBACK:
                return
            pc = access.pc
            friendly = (
                h_counters[(pc ^ (pc >> PREDICTOR_BITS) ^ (pc >> _PRED_SHIFT2)) & _PRED_MASK]
                >= FRIENDLY_THRESHOLD
            )
            h_friendly[set_index][way] = friendly
            h_pc[set_index][way] = pc
            h_rrpv[set_index][way] = 0 if friendly else HAWKEYE_RRPV_MAX

        def hawkeye_fill(set_index: int, way: int, access: PolicyAccess) -> None:
            nonlocal h_stat_friendly, h_stat_averse
            h_sample(set_index, access)
            if access.kind == _KIND_WRITEBACK:
                h_friendly[set_index][way] = False
                h_pc[set_index][way] = 0
                h_rrpv[set_index][way] = HAWKEYE_RRPV_MAX
                return
            pc = access.pc
            friendly = (
                h_counters[(pc ^ (pc >> PREDICTOR_BITS) ^ (pc >> _PRED_SHIFT2)) & _PRED_MASK]
                >= FRIENDLY_THRESHOLD
            )
            h_friendly[set_index][way] = friendly
            h_pc[set_index][way] = pc
            if friendly:
                h_stat_friendly += 1
                row = h_rrpv[set_index]
                for w, value in enumerate(row):
                    if w != way and value < HAWKEYE_RRPV_MAX - 1:
                        row[w] = value + 1
                row[way] = 0
            else:
                h_stat_averse += 1
                h_rrpv[set_index][way] = HAWKEYE_RRPV_MAX

        def hawkeye_victim(set_index: int, access: PolicyAccess, tags: list[int]) -> int:
            row = h_rrpv[set_index]
            if HAWKEYE_RRPV_MAX in row:
                return row.index(HAWKEYE_RRPV_MAX)
            return h_real_victim(set_index, access, tags)

        def hawkeye_check_in() -> None:
            policy.stat_friendly_fills = h_stat_friendly
            policy.stat_averse_fills = h_stat_averse

        return (
            hawkeye_hit,
            hawkeye_fill,
            _noop_eviction,
            hawkeye_victim,
            hawkeye_check_in,
        )

    if cls is GliderPolicy:
        g_rrpv: list[list[int]] = policy._rrpv
        g_friendly = policy._line_friendly
        g_line_features = policy._line_features
        g_isvms = policy._isvms
        g_sample = policy._sample
        g_push = policy._push_history
        g_real_victim: _VictimHook = policy.find_victim
        g_stat_friendly = policy.stat_friendly_fills
        g_stat_averse = policy.stat_averse_fills

        def glider_hit(set_index: int, way: int, access: PolicyAccess) -> None:
            if access.kind == _KIND_WRITEBACK:
                g_friendly[set_index][way] = False
                g_line_features[set_index][way] = (0, ())
                g_rrpv[set_index][way] = HAWKEYE_RRPV_MAX
                return
            pc = access.pc
            features = (
                (pc ^ (pc >> ISVM_TABLE_BITS) ^ (pc >> _ISVM_SHIFT2)) & _ISVM_MASK,
                policy._pchr_slots,
            )
            # _sample may train the ISVM, so the prediction sum reads
            # the weights only after it — the reference _touch order.
            g_sample(set_index, access, features)
            weights = g_isvms[features[0]]
            total = sum(map(weights.__getitem__, features[1]))
            g_push(pc)
            g_line_features[set_index][way] = features
            if total < THRESHOLD_AVERSE:
                g_friendly[set_index][way] = False
                g_rrpv[set_index][way] = HAWKEYE_RRPV_MAX
                return
            g_friendly[set_index][way] = True
            g_rrpv[set_index][way] = 0 if total >= THRESHOLD_CONFIDENT else 2

        def glider_fill(set_index: int, way: int, access: PolicyAccess) -> None:
            nonlocal g_stat_friendly, g_stat_averse
            if access.kind == _KIND_WRITEBACK:
                g_friendly[set_index][way] = False
                g_line_features[set_index][way] = (0, ())
                g_rrpv[set_index][way] = HAWKEYE_RRPV_MAX
                return
            pc = access.pc
            features = (
                (pc ^ (pc >> ISVM_TABLE_BITS) ^ (pc >> _ISVM_SHIFT2)) & _ISVM_MASK,
                policy._pchr_slots,
            )
            g_sample(set_index, access, features)
            weights = g_isvms[features[0]]
            total = sum(map(weights.__getitem__, features[1]))
            g_push(pc)
            g_line_features[set_index][way] = features
            if total < THRESHOLD_AVERSE:
                g_friendly[set_index][way] = False
                g_rrpv[set_index][way] = HAWKEYE_RRPV_MAX
                g_stat_averse += 1
                return
            g_friendly[set_index][way] = True
            g_stat_friendly += 1
            row = g_rrpv[set_index]
            for w, value in enumerate(row):
                if w != way and value < HAWKEYE_RRPV_MAX - 1:
                    row[w] = value + 1
            g_rrpv[set_index][way] = 0 if total >= THRESHOLD_CONFIDENT else 2

        def glider_victim(set_index: int, access: PolicyAccess, tags: list[int]) -> int:
            row = g_rrpv[set_index]
            if HAWKEYE_RRPV_MAX in row:
                return row.index(HAWKEYE_RRPV_MAX)
            return g_real_victim(set_index, access, tags)

        def glider_check_in() -> None:
            policy.stat_friendly_fills = g_stat_friendly
            policy.stat_averse_fills = g_stat_averse

        return (
            glider_hit,
            glider_fill,
            _noop_eviction,
            glider_victim,
            glider_check_in,
        )

    if cls is MPPPBPolicy:
        mp_stamp: list[list[int]] = policy._stamp
        mp_clock = policy._clock
        mp_dead = policy._line_dead
        mp_line_features = policy._line_features
        mp_reused = policy._line_reused
        w0, w1, w2, w3, w4, w5, w6 = policy._weights
        mp_history = policy._pc_history
        mp_train = policy._train
        mp_ways = policy.num_ways
        mp_bypasses = policy.stat_bypasses
        mp_fills = policy.stat_fills

        def mp_features(access: PolicyAccess) -> tuple[int, ...]:
            pc = access.pc
            block = access.block
            history_fold = 0
            for i, h in enumerate(mp_history):
                history_fold ^= h >> (i + 1)
            page = block >> 6
            return (
                pc & _MP_MASK,
                (pc >> 4) & _MP_MASK,
                (pc >> 8) & _MP_MASK,
                (pc ^ (pc >> MP_TABLE_BITS)) & _MP_MASK,
                history_fold & _MP_MASK,
                (page ^ (page >> MP_TABLE_BITS)) & _MP_MASK,
                block & _MP_MASK,
            )

        def mp_touch(set_index: int, way: int, access: PolicyAccess) -> None:
            nonlocal mp_clock
            mp_clock += 1
            mp_stamp[set_index][way] = mp_clock
            if access.kind == _KIND_WRITEBACK:
                mp_dead[set_index][way] = True
                mp_line_features[set_index][way] = None
                mp_reused[set_index][way] = True
                return
            features = mp_features(access)
            f0, f1, f2, f3, f4, f5, f6 = features
            total = w0[f0] + w1[f1] + w2[f2] + w3[f3] + w4[f4] + w5[f5] + w6[f6]
            mp_dead[set_index][way] = total >= THETA_DEAD
            if not set_index % MP_SAMPLE_STRIDE:
                mp_line_features[set_index][way] = features
            mp_history.append(access.pc)

        def mp_hit(set_index: int, way: int, access: PolicyAccess) -> None:
            if not set_index % MP_SAMPLE_STRIDE:
                prior = mp_line_features[set_index][way]
                if prior is not None:
                    mp_train(prior, dead=False)
            mp_reused[set_index][way] = True
            mp_touch(set_index, way, access)

        def mp_fill(set_index: int, way: int, access: PolicyAccess) -> None:
            nonlocal mp_fills
            mp_fills += 1
            mp_reused[set_index][way] = False
            mp_touch(set_index, way, access)

        def mp_evict(set_index: int, way: int, victim_block: int) -> None:
            if not set_index % MP_SAMPLE_STRIDE:
                prior = mp_line_features[set_index][way]
                if prior is not None and not mp_reused[set_index][way]:
                    mp_train(prior, dead=True)
            mp_line_features[set_index][way] = None

        def mp_victim(set_index: int, access: PolicyAccess, tags: list[int]) -> int:
            nonlocal mp_bypasses
            if access.kind != _KIND_WRITEBACK:
                features = mp_features(access)
                f0, f1, f2, f3, f4, f5, f6 = features
                total = (
                    w0[f0] + w1[f1] + w2[f2] + w3[f3] + w4[f4] + w5[f5] + w6[f6]
                )
                if total >= THETA_BYPASS:
                    mp_bypasses += 1
                    return BYPASS
            dead = mp_dead[set_index]
            stamps = mp_stamp[set_index]
            victim = -1
            oldest = None
            for way in range(mp_ways):
                if dead[way] and (oldest is None or stamps[way] < oldest):
                    victim = way
                    oldest = stamps[way]
            if victim >= 0:
                return victim
            return stamps.index(min(stamps))

        def mp_check_in() -> None:
            policy._clock = mp_clock
            policy.stat_bypasses = mp_bypasses
            policy.stat_fills = mp_fills

        return mp_hit, mp_fill, mp_evict, mp_victim, mp_check_in

    return None


def _fold_records(
    gws: list[float], lats: list[int], codes: list[int], lo: int, hi: int
) -> list[tuple[float, int, int]]:
    """Merge runs of pure front-end records into their successor.

    A code-0 record (store, no pops, no LLC events) only advances
    ``cycle`` by its ``gap/width``. With exact (power-of-two-width)
    arithmetic those adds are associative, so a run of them merges into
    the next record's advance whenever that record reads ``cycle`` only
    *after* its own add — any event-free record qualifies. A record
    carrying LLC events reads ``int(cycle)`` *before* its add, so the
    pending run is flushed as one standalone code-0 record instead.
    Event order and every per-cell float value are preserved
    bit-for-bit. Reads the parallel column slices directly so the plan
    never has to materialize a full zipped record list just to fold it.
    """
    out: list[tuple[float, int, int]] = []
    pending = 0.0
    have = False
    for gw, lat, code in zip(gws[lo:hi], lats[lo:hi], codes[lo:hi]):
        if code == 0:
            pending += gw
            have = True
            continue
        if have:
            if code >> _EV_SHIFT:
                out.append((pending, 0, 0))
                out.append((gw, lat, code))
            else:
                out.append((pending + gw, lat, code))
            pending = 0.0
            have = False
        else:
            out.append((gw, lat, code))
    if have:
        out.append((pending, 0, 0))
    return out


class BatchPlan:
    """Policy-independent precomputation shared by every cell of a trace.

    Building the plan costs roughly one fast-engine pass; each
    :meth:`replay` afterwards costs only the inlined core arithmetic
    plus the LLC/DRAM events, so a P-policy matrix approaches the cost
    of the matrix's irreducible LLC work as P grows.
    """

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig,
        warmup_fraction: float,
        collect_prefixes: bool,
    ) -> None:
        self.trace = trace
        self.config = config
        self.warmup_fraction = warmup_fraction
        n = len(trace)
        self.n = n
        self.warmup_end = int(n * warmup_fraction)

        core_cfg = config.core
        if core_cfg.max_outstanding_misses > _ROB_MASK:
            raise ConfigurationError(
                "batch engine supports at most "
                f"{_ROB_MASK} outstanding misses, got "
                f"{core_cfg.max_outstanding_misses}"
            )
        scratch = build_hierarchy(config, "lru")
        if not batch_eligible(scratch, trace):
            raise ConfigurationError(
                f"{trace.name}: trace/config combination is not batch-eligible"
            )
        machine = _PlanMachine(scratch)
        self.block_bits = machine.block_bits

        gws: list[float] = []
        lats: list[int] = []
        codes: list[int] = []
        _, _, _, w_alive = machine.scan(
            trace, 0, self.warmup_end, core_cfg, gws, lats, codes, None
        )
        machine.reset_counters()
        prefixes: list[tuple[int, int, int, int, int, int]] | None = (
            [] if collect_prefixes else None
        )
        m_loads, m_load_lat, m_instr, m_alive = machine.scan(
            trace, self.warmup_end, n, core_cfg, gws, lats, codes, prefixes
        )

        self.warmup_alive = w_alive
        self.measured_alive = m_alive
        self.measured_loads = m_loads
        self.measured_load_lat = m_load_lat
        self.measured_instructions = m_instr
        # The full zipped record list and per-record event offsets exist
        # only to let the chunked telemetry replay slice at interval
        # boundaries; without a collector they are never read, and
        # skipping them saves a multi-million-tuple allocation per plan.
        self.recs: list[tuple[float, int, int]] | None = None
        self.ev_offsets: list[int] | None = None
        if collect_prefixes:
            self.recs = list(zip(gws, lats, codes))
            self.ev_offsets = list(
                accumulate((c >> _EV_SHIFT for c in codes), initial=0)
            )
            self.measured_ec = self.ev_offsets[self.warmup_end]
        else:
            self.measured_ec = sum(
                c >> _EV_SHIFT for c in codes[: self.warmup_end]
            )
        # Events carry every policy-independent derivation precomputed
        # once and shared by all cells: the LLC set index, the DRAM
        # row/bank a demand miss would read, and the PolicyAccess the
        # hooks receive (an immutable NamedTuple, so one instance can
        # serve every replay). run_cell() guards that each hierarchy
        # matches this geometry.
        self.set_mask = scratch.llc._set_mask
        scratch_dram = scratch.dram.config
        self.row_bytes = scratch_dram.row_bytes
        self.nbanks = len(scratch.dram._banks)
        blocks = np.array(machine.ev_block, dtype=np.int64)
        kinds = np.array(machine.ev_kind, dtype=np.int64)
        rows = (blocks << self.block_bits) // self.row_bytes
        self.events: list[tuple] = list(
            zip(
                machine.ev_demand,
                machine.ev_block,
                (blocks & self.set_mask).tolist(),
                rows.tolist(),
                (rows % self.nbanks).tolist(),
                machine.ev_isdata,
                (kinds == 1).tolist(),
                machine.ev_kind,
                map(PolicyAccess, machine.ev_block, machine.ev_pc,
                    machine.ev_kind),
            )
        )

        # Folded per-phase record lists for whole-phase replays, used
        # when the cycle arithmetic is provably exact (power-of-two
        # width, magnitudes far below 2**53: bounded by instructions
        # plus a generous per-record latency allowance). Chunked
        # telemetry replay keeps indexing the unfolded list — fold
        # boundaries and interval boundaries would otherwise disagree.
        width = core_cfg.dispatch_width
        cycle_bound = (int(trace.gaps.sum()) + n * 4096) if n else 0
        if width & (width - 1) == 0 and cycle_bound < _EXACT_CYCLE_BOUND:
            self.warmup_recs = _fold_records(gws, lats, codes, 0, self.warmup_end)
            self.measured_recs = _fold_records(gws, lats, codes, self.warmup_end, n)
        else:
            if self.recs is None:
                self.recs = list(zip(gws, lats, codes))
            self.warmup_recs = self.recs[: self.warmup_end]
            self.measured_recs = self.recs[self.warmup_end:]

        self.levels = (machine.l1i, machine.l1d, machine.l2)
        self.final_clock = machine.clock
        self.measured_l1d_misses = machine.l1d_misses
        self.measured_served_l1 = machine.served_l1
        self.measured_served_l2 = machine.served_l2
        self.prefixes = prefixes
        self.measured_cum: np.ndarray | None = (
            np.cumsum(trace.gaps[self.warmup_end:n], dtype=np.int64)
            if collect_prefixes
            else None
        )
        self.ring_size = max(1, core_cfg.max_outstanding_misses)

    # -- per-cell replay -------------------------------------------------------

    def replay(
        self,
        cell: _CellState,
        hierarchy: CacheHierarchy,
        recs: list[tuple[float, int, int]],
        ec: int,
    ) -> None:
        """Drive one cell's LLC/DRAM/core over a precomputed record list.

        ``ec`` indexes the first LLC event the records consume. The hot
        loop dispatches on the precomputed opcode: the three event-free
        shapes (load+MSHR-pop, load with a free slot, store) are
        inlined; everything else — ROB retirements, LLC events — takes
        the general path. The LLC's generic bookkeeping (probe order,
        statistics, dirty bits, victim mechanics) and the DRAM bank
        timing are inlined around the real policy-hook calls, operating
        on the live tag/dirty rows; counters accumulate in locals and
        flush into the model objects on exit. With an LLC telemetry tap
        attached the events route through
        :meth:`~repro.mem.cache.Cache.access`/``fill`` instead
        (:meth:`_replay_tapped`) so the tap observes every operation.
        Float operations (``cycle += gap/width``, stall bumps to a
        completion cycle) execute in exactly the reference order, so
        cycle counts match to the last bit.
        """
        llc = hierarchy.llc
        if llc._telemetry is not None:
            self._replay_tapped(cell, hierarchy, recs, ec)
            return
        dram = hierarchy.dram
        bbits = self.block_bits
        events = self.events

        # LLC checkout: the policy hooks receive the same live row lists
        # Cache.access/fill would hand them. Two derived structures make
        # the per-event probes O(1): a block → way dict (a block lives
        # in exactly one set, so keys are unique) replaces the
        # `blk in tags` + `tags.index(blk)` scans, and per-set free-way
        # counts turn the fill path's `-1 in tags` scan — a guaranteed
        # full miss scan once the sets fill up — into one integer test.
        # Free ways only disappear: evictions replace in place.
        llc_tags = llc._tags
        llc_dirty = llc._dirty
        free_ways = [row.count(-1) for row in llc_tags]
        resident: dict[int, int] = {
            tag: way
            for row in llc_tags
            for way, tag in enumerate(row)
            if tag != -1
        }
        resident_get = resident.get
        policy = llc.policy
        specialized = _specialized_hooks(policy)
        if specialized is None:
            on_hit = policy.on_hit
            on_fill = policy.on_fill
            on_eviction = policy.on_eviction
            find_victim = policy.find_victim
            check_in = None
        else:
            on_hit, on_fill, on_eviction, find_victim, check_in = specialized
        s_dacc = s_dhits = s_wbacc = s_wbhits = 0
        s_evict = s_devict = s_bypass = 0
        s_pkm = [0, 0, 0, 0, 0]

        # DRAM checkout: banks flatten to two parallel lists, stats to
        # locals; written back on exit so chunked calls and the rebase
        # at the warm-up boundary observe the state the model holds.
        dram_cfg = dram.config
        row_bytes = dram_cfg.row_bytes
        lat_rowhit = dram_cfg.row_hit_latency
        lat_rowclosed = dram_cfg.row_closed_latency
        lat_rowconf = dram_cfg.row_conflict_latency
        banks = dram._banks
        nbanks = len(banks)
        bank_row = [b.open_row for b in banks]
        bank_next = [b.next_free for b in banks]
        s_reads = s_writes = s_rowhit = s_rowconf = s_rowclosed = s_rdlat = 0

        ring = cell.ring
        ring_n = len(ring)
        rh = cell.rh
        rt = cell.rt
        cycle = cell.cycle
        rob_stall = cell.rob_stall
        mshr_stall = cell.mshr_stall
        lat_extra = cell.load_lat_extra
        served_llc = cell.served_llc
        served_dram = cell.served_dram
        l1d_md = cell.l1d_misses_to_dram

        for gw, lat, code in recs:
            if code == 3:
                # Load, one MSHR pop, no ROB pops, no LLC events — the
                # steady state once the window is full.
                cycle += gw
                done = ring[rh]
                rh += 1
                if rh == ring_n:
                    rh = 0
                if done > cycle:
                    mshr_stall += done - cycle
                    cycle = done
                ring[rt] = cycle + lat
                rt += 1
                if rt == ring_n:
                    rt = 0
            elif code == 1:
                # Load into a free MSHR slot, nothing retires.
                cycle += gw
                ring[rt] = cycle + lat
                rt += 1
                if rt == ring_n:
                    rt = 0
            elif code == 0:
                # Store (write-buffered): only the front end advances.
                cycle += gw
            else:
                ne = code >> _EV_SHIFT
                if ne:
                    # LLC-visible events issue against the pre-step cycle,
                    # exactly as FastMachine passes int(cycle) to _miss.
                    icycle = int(cycle)
                    base = lat
                    stop_ec = ec + ne
                    while ec < stop_ec:
                        (demand, blk, set_index, row, b,
                         isdata, is_store, kind, acc) = events[ec]
                        ec += 1
                        if demand:
                            way = resident_get(blk)
                            if way is not None:
                                # Cache.access hit: count, notify, dirty.
                                s_dacc += 1
                                s_dhits += 1
                                on_hit(set_index, way, acc)
                                if is_store:
                                    llc_dirty[set_index][way] = True
                                served_llc += 1
                            else:
                                tags = llc_tags[set_index]
                                s_dacc += 1
                                s_pkm[kind] += 1
                                # dram.read at the post-probe latency;
                                # row/bank precomputed in the plan.
                                arrival = icycle + lat
                                nf = bank_next[b]
                                begin = nf if nf > arrival else arrival
                                orow = bank_row[b]
                                if orow == row:
                                    s_rowhit += 1
                                    svc = lat_rowhit
                                elif orow == -1:
                                    s_rowclosed += 1
                                    svc = lat_rowclosed
                                else:
                                    s_rowconf += 1
                                    svc = lat_rowconf
                                bank_row[b] = row
                                bank_next[b] = begin + svc
                                dlat = begin - arrival + svc
                                s_reads += 1
                                s_rdlat += dlat
                                lat += dlat
                                if isdata:
                                    l1d_md += 1
                                # Cache.fill, then the dirty victim's
                                # writeback — the reference call order.
                                if free_ways[set_index]:
                                    free_ways[set_index] -= 1
                                    way = tags.index(-1)
                                    tags[way] = blk
                                    resident[blk] = way
                                    llc_dirty[set_index][way] = is_store
                                    on_fill(set_index, way, acc)
                                else:
                                    way = find_victim(set_index, acc, tags)
                                    if way == BYPASS:
                                        s_bypass += 1
                                    else:
                                        victim = tags[way]
                                        vdirty = llc_dirty[set_index][way]
                                        s_evict += 1
                                        if vdirty:
                                            s_devict += 1
                                        on_eviction(set_index, way, victim)
                                        tags[way] = blk
                                        del resident[victim]
                                        resident[blk] = way
                                        llc_dirty[set_index][way] = is_store
                                        on_fill(set_index, way, acc)
                                        if vdirty:
                                            row = (victim << bbits) // row_bytes
                                            b = row % nbanks
                                            nf = bank_next[b]
                                            begin = nf if nf > icycle else icycle
                                            orow = bank_row[b]
                                            if orow == row:
                                                s_rowhit += 1
                                                svc = lat_rowhit
                                            elif orow == -1:
                                                s_rowclosed += 1
                                                svc = lat_rowclosed
                                            else:
                                                s_rowconf += 1
                                                svc = lat_rowconf
                                            bank_row[b] = row
                                            bank_next[b] = begin + svc
                                            s_writes += 1
                                served_dram += 1
                        else:
                            way = resident_get(blk)
                            if way is not None:
                                # Writeback hit: refresh and mark dirty.
                                s_wbacc += 1
                                s_wbhits += 1
                                on_hit(set_index, way, acc)
                                llc_dirty[set_index][way] = True
                                continue
                            tags = llc_tags[set_index]
                            s_wbacc += 1
                            s_pkm[4] += 1
                            victim = -1
                            if free_ways[set_index]:
                                free_ways[set_index] -= 1
                                way = tags.index(-1)
                                tags[way] = blk
                                resident[blk] = way
                                llc_dirty[set_index][way] = True
                                on_fill(set_index, way, acc)
                            else:
                                way = find_victim(set_index, acc, tags)
                                if way == BYPASS:
                                    s_bypass += 1
                                    victim = blk  # bypassed WB goes to DRAM
                                else:
                                    cand = tags[way]
                                    vdirty = llc_dirty[set_index][way]
                                    s_evict += 1
                                    if vdirty:
                                        s_devict += 1
                                        victim = cand
                                    on_eviction(set_index, way, cand)
                                    tags[way] = blk
                                    del resident[cand]
                                    resident[blk] = way
                                    llc_dirty[set_index][way] = True
                                    on_fill(set_index, way, acc)
                            if victim >= 0:
                                row = (victim << bbits) // row_bytes
                                b = row % nbanks
                                nf = bank_next[b]
                                begin = nf if nf > icycle else icycle
                                orow = bank_row[b]
                                if orow == row:
                                    s_rowhit += 1
                                    svc = lat_rowhit
                                elif orow == -1:
                                    s_rowclosed += 1
                                    svc = lat_rowclosed
                                else:
                                    s_rowconf += 1
                                    svc = lat_rowconf
                                bank_row[b] = row
                                bank_next[b] = begin + svc
                                s_writes += 1
                    if code & 1:
                        lat_extra += lat - base
                cycle += gw
                nrob = (code >> _ROB_SHIFT) & _ROB_MASK
                while nrob:
                    done = ring[rh]
                    rh += 1
                    if rh == ring_n:
                        rh = 0
                    if done > cycle:
                        rob_stall += done - cycle
                        cycle = done
                    nrob -= 1
                if code & 2:
                    done = ring[rh]
                    rh += 1
                    if rh == ring_n:
                        rh = 0
                    if done > cycle:
                        mshr_stall += done - cycle
                        cycle = done
                if code & 1:
                    ring[rt] = cycle + lat
                    rt += 1
                    if rt == ring_n:
                        rt = 0

        if check_in is not None:
            check_in()
        cell.cycle = cycle
        cell.rh = rh
        cell.rt = rt
        cell.rob_stall = rob_stall
        cell.mshr_stall = mshr_stall
        cell.load_lat_extra = lat_extra
        cell.served_llc = served_llc
        cell.served_dram = served_dram
        cell.l1d_misses_to_dram = l1d_md

        stats = llc.stats
        stats.demand_accesses += s_dacc
        stats.demand_hits += s_dhits
        stats.writeback_accesses += s_wbacc
        stats.writeback_hits += s_wbhits
        stats.evictions += s_evict
        stats.dirty_evictions += s_devict
        stats.bypasses += s_bypass
        pkm = stats.per_kind_misses
        for kind, count in enumerate(s_pkm):
            if count:
                pkm[kind] = pkm.get(kind, 0) + count
        for b in range(nbanks):
            bank = banks[b]
            bank.open_row = bank_row[b]
            bank.next_free = bank_next[b]
        dstats = dram.stats
        dstats.reads += s_reads
        dstats.writes += s_writes
        dstats.row_hits += s_rowhit
        dstats.row_conflicts += s_rowconf
        dstats.row_closed += s_rowclosed
        dstats.total_read_latency += s_rdlat

    def _replay_tapped(
        self,
        cell: _CellState,
        hierarchy: CacheHierarchy,
        recs: list[tuple[float, int, int]],
        ec: int,
    ) -> None:
        """Replay with LLC events through the regular cache methods.

        Used when a telemetry tap is armed on the LLC: the tap's
        ``on_access``/``on_eviction`` callbacks must fire per event, so
        the inlined bookkeeping would blind it. Cycle arithmetic and
        event order are identical to :meth:`replay`.
        """
        llc = hierarchy.llc
        dram = hierarchy.dram
        llc_access = llc.access
        llc_fill = llc.fill
        dram_read = dram.read
        dram_write = dram.write
        bbits = self.block_bits
        events = self.events
        ring = cell.ring
        ring_n = len(ring)
        rh = cell.rh
        rt = cell.rt
        cycle = cell.cycle
        rob_stall = cell.rob_stall
        mshr_stall = cell.mshr_stall
        lat_extra = cell.load_lat_extra
        served_llc = cell.served_llc
        served_dram = cell.served_dram
        l1d_md = cell.l1d_misses_to_dram

        for gw, lat, code in recs:
            if code == 3:
                cycle += gw
                done = ring[rh]
                rh += 1
                if rh == ring_n:
                    rh = 0
                if done > cycle:
                    mshr_stall += done - cycle
                    cycle = done
                ring[rt] = cycle + lat
                rt += 1
                if rt == ring_n:
                    rt = 0
            elif code == 1:
                cycle += gw
                ring[rt] = cycle + lat
                rt += 1
                if rt == ring_n:
                    rt = 0
            elif code == 0:
                cycle += gw
            else:
                ne = code >> _EV_SHIFT
                if ne:
                    icycle = int(cycle)
                    base = lat
                    stop_ec = ec + ne
                    while ec < stop_ec:
                        demand, blk, _, _, _, isdata, _, kind, acc = events[ec]
                        ec += 1
                        if demand:
                            if llc_access(blk, acc.pc, kind).hit:
                                served_llc += 1
                            else:
                                lat += dram_read(blk << bbits, icycle + lat)
                                if isdata:
                                    l1d_md += 1
                                fr = llc_fill(blk, acc.pc, kind)
                                victim = fr.victim_block
                                if victim is not None and fr.victim_dirty:
                                    dram_write(victim << bbits, icycle)
                                served_dram += 1
                        elif not llc_access(blk, 0, 4).hit:
                            fr = llc_fill(blk, 0, 4)
                            if fr.bypassed or (
                                fr.victim_dirty and fr.victim_block is not None
                            ):
                                victim = blk if fr.bypassed else fr.victim_block
                                dram_write(victim << bbits, icycle)
                    if code & 1:
                        lat_extra += lat - base
                cycle += gw
                nrob = (code >> _ROB_SHIFT) & _ROB_MASK
                while nrob:
                    done = ring[rh]
                    rh += 1
                    if rh == ring_n:
                        rh = 0
                    if done > cycle:
                        rob_stall += done - cycle
                        cycle = done
                    nrob -= 1
                if code & 2:
                    done = ring[rh]
                    rh += 1
                    if rh == ring_n:
                        rh = 0
                    if done > cycle:
                        mshr_stall += done - cycle
                        cycle = done
                if code & 1:
                    ring[rt] = cycle + lat
                    rt += 1
                    if rt == ring_n:
                        rt = 0

        cell.cycle = cycle
        cell.rh = rh
        cell.rt = rt
        cell.rob_stall = rob_stall
        cell.mshr_stall = mshr_stall
        cell.load_lat_extra = lat_extra
        cell.served_llc = served_llc
        cell.served_dram = served_dram
        cell.l1d_misses_to_dram = l1d_md

    def drain(self, cell: _CellState, alive: int) -> float:
        """Replay :meth:`CoreModel.drain`: wait for ``alive`` loads."""
        cycle = cell.cycle
        ring = cell.ring
        ring_n = len(ring)
        rh = cell.rh
        for _ in range(alive):
            done = ring[rh]
            rh += 1
            if rh == ring_n:
                rh = 0
            if done > cycle:
                cycle = done
        return cycle


class BatchSimulator:
    """Shared-plan multi-cell driver for one trace.

    Build once per (trace, config, warmup, telemetry) combination, then
    call :meth:`run_cell` once per LLC policy. Each cell's result is
    bit-identical to ``simulate(trace, ..., engine="reference")``.
    """

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig | None = None,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        telemetry: TelemetryConfig | None = None,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if config is None:
            config = cascade_lake()
        self.trace = trace
        self.config = config
        self.warmup_fraction = warmup_fraction
        self.telemetry = telemetry
        self.plan = BatchPlan(trace, config, warmup_fraction, telemetry is not None)

    def run_cell(
        self,
        llc_policy: ReplacementPolicy | str,
        hierarchy: CacheHierarchy | None = None,
    ) -> SimulationResult:
        """Simulate one (trace, policy) cell against the shared plan."""
        plan = self.plan
        trace = self.trace
        config = self.config
        if hierarchy is None:
            hierarchy = build_hierarchy(config, llc_policy)
        if not batch_eligible(hierarchy, trace):
            raise ConfigurationError(
                f"{trace.name}/{hierarchy.llc.policy.name}: cell is not "
                "batch-eligible; use simulate() instead"
            )
        if (
            hierarchy.llc._set_mask != plan.set_mask
            or hierarchy.dram.config.row_bytes != plan.row_bytes
            or len(hierarchy.dram._banks) != plan.nbanks
        ):
            # The plan precomputes per-event set indices and DRAM
            # rows/banks for its config's geometry; a hierarchy built
            # from a different one would replay silently wrong.
            raise ConfigurationError(
                f"{trace.name}/{hierarchy.llc.policy.name}: hierarchy "
                "geometry does not match the plan's machine config"
            )
        policy_name = hierarchy.llc.policy.name

        # Warm-up: the LLC and DRAM evolve per policy; statistics are
        # then discarded at the boundary exactly as the driver does.
        cell = _CellState(plan.ring_size)
        plan.replay(cell, hierarchy, plan.warmup_recs, 0)
        _reset_statistics(hierarchy, int(plan.drain(cell, plan.warmup_alive)))

        cell = _CellState(plan.ring_size)
        collector: TelemetryCollector | None = None
        core: CoreModel | None = None
        if self.telemetry is not None:
            from ..telemetry.collector import TelemetryCollector

            collector = TelemetryCollector(self.telemetry, hierarchy)
            collector.attach()
            core = CoreModel(config.core)
            self._replay_with_telemetry(cell, hierarchy, core, collector)
        else:
            plan.replay(cell, hierarchy, plan.measured_recs, plan.measured_ec)

        cycles = plan.drain(cell, plan.measured_alive)
        core_stats = CoreStats(
            instructions=plan.measured_instructions,
            cycles=cycles,
            load_accesses=plan.measured_loads,
            total_load_latency=plan.measured_load_lat + cell.load_lat_extra,
            rob_stall_cycles=cell.rob_stall,
            mshr_stall_cycles=cell.mshr_stall,
        )
        # Publish shared upper-level outcomes and per-cell counters
        # before the collector closes its final interval — it reads the
        # same live stats objects the reference driver maintains.
        self._publish(hierarchy, cell)
        if collector is not None and core is not None:
            core._instr = plan.measured_instructions
            core._cycle = cycles
            collector.finalize(core)

        info = {
            "warmup_accesses": plan.warmup_end,
            "measured_accesses": plan.n - plan.warmup_end,
            **trace.info,
        }
        if collector is not None:
            info["telemetry"] = collector.profile(
                trace.name, policy_name
            ).to_json_dict()
        return snapshot_result(
            workload=trace.name,
            policy=policy_name,
            hierarchy=hierarchy,
            core_stats=core_stats,
            info=info,
        )

    def _publish(self, hierarchy: CacheHierarchy, cell: _CellState) -> None:
        plan = self.plan
        clock = plan.final_clock
        for lvl, cache in zip(
            plan.levels, (hierarchy.l1i, hierarchy.l1d, hierarchy.l2)
        ):
            lvl.publish_into(cache, clock)
        stats = hierarchy.stats
        stats.l1d_misses = plan.measured_l1d_misses
        stats.l1d_misses_to_dram = cell.l1d_misses_to_dram
        served = stats.served_by
        served[ServiceLevel.L1] = plan.measured_served_l1
        served[ServiceLevel.L2] = plan.measured_served_l2
        served[ServiceLevel.LLC] = cell.served_llc
        served[ServiceLevel.DRAM] = cell.served_dram

    def _replay_with_telemetry(
        self,
        cell: _CellState,
        hierarchy: CacheHierarchy,
        core: CoreModel,
        collector: TelemetryCollector,
    ) -> None:
        """Chunked replay mirroring ``FastMachine.run_with_telemetry``.

        Same searchsorted chunking over the measured gap prefix sums, so
        interval boundaries land on identical records; the upper levels'
        demand counters at each boundary come from the plan's prefix
        snapshots (the only upper-level values the collector reads).
        Chunks index the unfolded record list — fold boundaries and
        interval boundaries would otherwise disagree.
        """
        plan = self.plan
        boundary = collector.begin(core)
        start = plan.warmup_end
        n = plan.n - start
        if n <= 0:
            return
        cum = plan.measured_cum
        prefixes = plan.prefixes
        recs = plan.recs
        ev_offsets = plan.ev_offsets
        assert cum is not None and prefixes is not None
        assert recs is not None and ev_offsets is not None
        l1i_stats = hierarchy.l1i.stats
        l1d_stats = hierarchy.l1d.stats
        l2_stats = hierarchy.l2.stats
        pos = 0
        while pos < n:
            crossing = int(np.searchsorted(cum, boundary, side="left"))
            chunk_end = crossing + 1 if crossing < n else n
            plan.replay(
                cell,
                hierarchy,
                recs[start + pos:start + chunk_end],
                ev_offsets[start + pos],
            )
            pos = chunk_end
            instr = int(cum[pos - 1])
            core._instr = instr
            core._cycle = cell.cycle
            if instr >= boundary:
                d_acc, d_hits, i_acc, i_hits, l2_acc, l2_hits = prefixes[pos - 1]
                l1d_stats.demand_accesses = d_acc
                l1d_stats.demand_hits = d_hits
                l1i_stats.demand_accesses = i_acc
                l1i_stats.demand_hits = i_hits
                l2_stats.demand_accesses = l2_acc
                l2_stats.demand_hits = l2_hits
                boundary = collector.on_boundary(core)


def simulate_batched(
    trace: Trace,
    policies: Sequence[ReplacementPolicy | str] | Iterable[ReplacementPolicy | str],
    config: MachineConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    telemetry: TelemetryConfig | None = None,
) -> dict[str, SimulationResult]:
    """Run every policy over ``trace`` through one shared plan.

    The conservative contract of the engine flag: cells whose (policy,
    config, trace) combination is not batch-eligible fall back to
    :func:`~repro.core.simulator.simulate` (which itself falls back from
    fast to reference as needed), so callers always get a full result
    dict — batching is purely an optimization.
    """
    if config is None:
        config = cascade_lake()
    sim: BatchSimulator | None = None
    results: dict[str, SimulationResult] = {}
    for policy in policies:
        hierarchy = build_hierarchy(config, policy)
        name = hierarchy.llc.policy.name
        if batch_eligible(hierarchy, trace):
            if sim is None:
                sim = BatchSimulator(trace, config, warmup_fraction, telemetry)
            results[name] = sim.run_cell(policy, hierarchy)
        else:
            results[name] = simulate(
                trace,
                config=config,
                llc_policy=policy,
                warmup_fraction=warmup_fraction,
                telemetry=telemetry,
            )
    return results


def batch_eligible(hierarchy: CacheHierarchy, trace: Trace) -> bool:
    """Whether the batched engine models this machine/trace combination.

    Exactly as conservative as
    :func:`~repro.mem.fastpath.fastpath_eligible`: prefetching, inclusive
    mode, attached sanitizers, telemetry taps on upper levels, non-LRU
    upper-level policies, or trace records beyond LOAD/STORE/IFETCH all
    select the per-cell engines instead. The LLC policy is never
    constrained (each cell's LLC stays a real :class:`Cache`).
    """
    if hierarchy.l2_prefetcher is not None or hierarchy.inclusive:
        return False
    if hierarchy._sanitizer is not None or hierarchy.llc._sanitizer is not None:
        return False
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2):
        if type(cache.policy) is not LRUPolicy:
            return False
        if cache._sanitizer is not None or cache._telemetry is not None:
            return False
    if len(trace) and int(trace.kinds.max()) > 2:  # beyond IFETCH
        return False
    return True
