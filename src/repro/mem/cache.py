"""Set-associative cache model with pluggable replacement.

One :class:`Cache` models one level: a tag array organized as
``num_sets x num_ways``, write-back + write-allocate semantics, and a
:class:`~repro.policies.base.ReplacementPolicy` consulted through the
ChampSim-style hooks. The cache itself is hierarchy-agnostic — miss
handling, fills from below and writebacks to the next level are
orchestrated by :class:`repro.mem.hierarchy.CacheHierarchy`.

Addresses are handled at block granularity throughout (the *block
address* is the byte address shifted right by ``block_bits``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..policies.base import BYPASS, PolicyAccess, ReplacementPolicy
from ..trace.record import AccessKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lint.sanitize import InvariantSanitizer
    from ..telemetry.collector import CacheTap

_DEMAND_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.IFETCH)


@dataclass
class CacheStats:
    """Per-cache access counters, split by access class.

    *Demand* accesses are loads, stores and instruction fetches — the
    accesses MPKI is computed from. Writebacks and prefetches are counted
    separately so they never distort miss ratios.
    """

    demand_accesses: int = 0
    demand_hits: int = 0
    writeback_accesses: int = 0
    writeback_hits: int = 0
    prefetch_accesses: int = 0
    prefetch_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    bypasses: int = 0
    per_kind_misses: dict[int, int] = field(default_factory=dict)

    @property
    def demand_misses(self) -> int:
        """Demand accesses that missed."""
        return self.demand_accesses - self.demand_hits

    @property
    def demand_hit_rate(self) -> float:
        """Hit rate over demand accesses only."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def demand_miss_rate(self) -> float:
        """Miss rate over demand accesses only."""
        return 1.0 - self.demand_hit_rate if self.demand_accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses / instructions


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    ``victim_block``/``victim_dirty`` describe a block evicted to make
    room (None if the fill used an invalid way, hit, or was bypassed).
    """

    hit: bool
    bypassed: bool = False
    victim_block: int | None = None
    victim_dirty: bool = False


class Cache:
    """One cache level.

    Parameters
    ----------
    name:
        Level name used in reports ("L1D", "L2C", "LLC", ...).
    size_bytes / num_ways / block_bits:
        Geometry; ``size_bytes`` must equal
        ``num_sets * num_ways * block_size`` for a power-of-two set count.
    policy:
        A fresh (unattached) replacement policy instance.
    hit_latency:
        Cycles charged for a hit at this level.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        num_ways: int,
        policy: ReplacementPolicy,
        hit_latency: int = 1,
        block_bits: int = 6,
    ) -> None:
        block_size = 1 << block_bits
        if size_bytes <= 0 or num_ways <= 0:
            raise ConfigurationError(
                f"{name}: size and ways must be positive, got {size_bytes}/{num_ways}"
            )
        if size_bytes % (block_size * num_ways):
            raise ConfigurationError(
                f"{name}: size {size_bytes} is not a multiple of "
                f"block_size*ways = {block_size * num_ways}"
            )
        num_sets = size_bytes // (block_size * num_ways)
        if num_sets & (num_sets - 1):
            raise ConfigurationError(
                f"{name}: set count {num_sets} must be a power of two "
                f"(size={size_bytes}, ways={num_ways}, block={block_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.block_bits = block_bits
        self.hit_latency = hit_latency
        self._set_mask = num_sets - 1
        # Tag arrays: -1 marks an invalid way.
        self._tags: list[list[int]] = [[-1] * num_ways for _ in range(num_sets)]
        self._dirty: list[list[bool]] = [[False] * num_ways for _ in range(num_sets)]
        self.policy = policy
        policy.initialize(num_sets, num_ways)
        self.stats = CacheStats()
        # Optional runtime invariant checks (repro.lint.sanitize); the
        # default hot path pays exactly one `is None` test per operation.
        self._sanitizer: InvariantSanitizer | None = None
        # Optional telemetry tap (repro.telemetry); same cost model as
        # the sanitizer — one `is None` test per operation when off.
        self._telemetry: CacheTap | None = None

    def attach_sanitizer(self, sanitizer: InvariantSanitizer) -> None:
        """Arm opt-in invariant checking on every subsequent operation."""
        self._sanitizer = sanitizer
        sanitizer.bind(self)

    def attach_telemetry(self, tap: CacheTap | None) -> None:
        """Arm (or, with ``None``, disarm) the telemetry tap."""
        self._telemetry = tap

    # -- inspection -----------------------------------------------------------

    def set_index(self, block: int) -> int:
        """The set a block address maps to."""
        return block & self._set_mask

    def contains(self, block: int) -> bool:
        """Whether the block is currently resident."""
        return block in self._tags[block & self._set_mask]

    def resident_blocks(self) -> list[int]:
        """All valid resident block addresses (test/debug helper)."""
        return [t for row in self._tags for t in row if t != -1]

    @property
    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(1 for row in self._tags for t in row if t != -1)

    def set_occupancies(self) -> list[int]:
        """Valid-line count per set, in set order (telemetry/debug)."""
        return [sum(1 for t in row if t != -1) for row in self._tags]

    # -- the access path ----------------------------------------------------------

    def _count(self, kind: int, hit: bool) -> None:
        stats = self.stats
        if kind == AccessKind.WRITEBACK:
            stats.writeback_accesses += 1
            if hit:
                stats.writeback_hits += 1
        elif kind == AccessKind.PREFETCH:
            stats.prefetch_accesses += 1
            if hit:
                stats.prefetch_hits += 1
        else:
            stats.demand_accesses += 1
            if hit:
                stats.demand_hits += 1
        if not hit:
            stats.per_kind_misses[kind] = stats.per_kind_misses.get(kind, 0) + 1

    def lookup(self, block: int) -> int:  # hot
        """Way index of the block in its set, or -1 if absent (no stats)."""
        tags = self._tags[block & self._set_mask]
        for way in range(self.num_ways):
            if tags[way] == block:
                return way
        return -1

    def access(self, block: int, pc: int, kind: int) -> AccessResult:  # hot
        """Probe the cache; on a hit, update policy and dirty state.

        Misses are *not* filled here — the hierarchy fetches the block
        from below and then calls :meth:`fill`. Returns whether it hit.
        """
        set_index = block & self._set_mask
        tags = self._tags[set_index]
        way = -1
        for w in range(self.num_ways):
            if tags[w] == block:
                way = w
                break
        hit = way >= 0
        self._count(kind, hit)
        if self._telemetry is not None:
            self._telemetry.on_access(block, kind, hit)
        if hit:
            self.policy.on_hit(set_index, way, PolicyAccess(block, pc, kind))
            if kind == AccessKind.STORE or kind == AccessKind.WRITEBACK:
                self._dirty[set_index][way] = True
            if self._sanitizer is not None:
                self._sanitizer.check_set(set_index, tags, self._dirty[set_index])
            return AccessResult(hit=True)
        return AccessResult(hit=False)

    def fill(self, block: int, pc: int, kind: int) -> AccessResult:  # hot
        """Insert a block fetched from the next level (or a writeback).

        Picks an invalid way if one exists, otherwise asks the policy for
        a victim (which may answer :data:`~repro.policies.base.BYPASS`).
        Returns the evicted block, if any, so the hierarchy can propagate
        dirty data downward.
        """
        set_index = block & self._set_mask
        tags = self._tags[set_index]
        access = PolicyAccess(block, pc, kind)
        sanitizer = self._sanitizer
        way = -1
        for w in range(self.num_ways):
            if tags[w] == -1:
                way = w
                break
        victim_block: int | None = None
        victim_dirty = False
        if way < 0:
            way = self.policy.find_victim(set_index, access, tags)
            if sanitizer is not None:
                sanitizer.check_victim(set_index, way, tags)
            if way == BYPASS:
                self.stats.bypasses += 1
                return AccessResult(hit=False, bypassed=True)
            victim_block = tags[way]
            victim_dirty = self._dirty[set_index][way]
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
            if self._telemetry is not None:
                self._telemetry.on_eviction(set_index)
            if sanitizer is not None:
                sanitizer.expect_eviction(set_index, way, victim_block)
            self.policy.on_eviction(set_index, way, victim_block)
            if sanitizer is not None:
                sanitizer.assert_notified(set_index)
        tags[way] = block
        self._dirty[set_index][way] = kind in (AccessKind.STORE, AccessKind.WRITEBACK)
        self.policy.on_fill(set_index, way, access)
        if sanitizer is not None:
            sanitizer.check_set(set_index, tags, self._dirty[set_index])
        return AccessResult(
            hit=False, victim_block=victim_block, victim_dirty=victim_dirty
        )

    def reset_content(self) -> None:
        """Drop every resident line, keeping policy and statistics state.

        Used by the sampling executor (:mod:`repro.sampling`) before it
        re-synthesizes warm content at an interval boundary: the tag and
        dirty arrays are cleared so subsequent :meth:`fill` calls land in
        invalid ways, while the policy object (and any global predictor
        state it carries) survives untouched.
        """
        for row in self._tags:
            for way in range(self.num_ways):
                row[way] = -1
        for drow in self._dirty:
            for way in range(self.num_ways):
                drow[way] = False

    def invalidate(self, block: int) -> bool:
        """Drop a block if resident (returns whether it was)."""
        set_index = block & self._set_mask
        tags = self._tags[set_index]
        for way in range(self.num_ways):
            if tags[way] == block:
                tags[way] = -1
                self._dirty[set_index][way] = False
                if self._sanitizer is not None:
                    self._sanitizer.check_set(set_index, tags, self._dirty[set_index])
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.size_bytes // 1024} KiB, "
            f"{self.num_sets}x{self.num_ways}, policy={self.policy.name})"
        )
