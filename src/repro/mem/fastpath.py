"""Optimized single-run execution path (``engine="fast"``).

The reference hot loop walks four virtual layers per record
(``hierarchy.access`` → ``cache.access``/``fill`` → policy hook dispatch
→ ``core.step``), allocating a :class:`~repro.policies.base.PolicyAccess`
per probe. For the paper's machine the L1I/L1D/L2 levels always run LRU,
so none of that generality is needed above the LLC. :class:`FastMachine`
checks those three levels out of their :class:`~repro.mem.cache.Cache`
objects into flat arrays, runs a composed per-record driver, and checks
the state back in afterwards — the LLC (the experiment variable) and the
DRAM model stay the real objects, so arbitrary replacement policies,
telemetry taps and bank timing behave exactly as in the reference engine.

Representation per fast level, indexed by ``set * num_ways + way``:

* ``tags``: flat list of block addresses (-1 = invalid way);
* ``dirty``: a ``bytearray`` of 0/1 flags;
* ``stamps``: flat list of LRU timestamps;
* ``index``: a ``{block: flat_index}`` dict over resident blocks — the
  O(1) membership probe that replaces the reference way scan (measured
  ~4x faster than ``list.index`` over an 8-way set, and it does not
  degrade for the 16-way L2).

Bit-identity with the reference engine rests on three invariants:

1. **Victim selection.** Reference LRU picks the first way with the
   strictly smallest stamp; stamps come from a per-policy monotonic
   clock. Victim choice depends only on the *relative order* of stamps
   within one set, and any strictly increasing stamp source preserves
   the touch order, so the fast path may use one machine-wide clock for
   all three levels. On checkout the clock starts at the maximum of the
   three policies' clocks, so new stamps always exceed checked-out ones.
2. **Call order at the LLC.** ``_miss`` replays the reference sequence
   exactly (LLC probe → DRAM read → LLC fill → L2 fill → L1 fill, with
   writeback cascades at the same points), so the LLC policy and the
   telemetry tap observe an identical access stream.
3. **Float arithmetic order.** The inlined core model performs the same
   ``gap / dispatch_width`` additions and stall ``max`` updates in the
   same sequence as :meth:`~repro.core.cpu.CoreModel.step`, so cycle
   counts match to the last bit.

Eligibility is conservative: any feature the fast path does not model
(prefetching, inclusive mode, sanitizers, upper-level telemetry taps,
non-LRU upper levels, prefetch/writeback records in the trace) falls
back to the reference engine — see :func:`fastpath_eligible`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..policies.basic import LRUPolicy
from .hierarchy import ServiceLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cpu import CoreModel
    from ..telemetry.collector import TelemetryCollector
    from ..trace.trace import Trace
    from .cache import Cache
    from .hierarchy import CacheHierarchy


class _FastLevel:
    """Flattened checkout of one always-LRU :class:`Cache` level."""

    __slots__ = (
        "cache", "policy", "num_ways", "set_mask", "hit_latency",
        "tags", "dirty", "stamps", "index", "occupancy",
        "demand_accesses", "demand_hits", "writeback_accesses",
        "writeback_hits", "evictions", "dirty_evictions", "per_kind_misses",
    )

    def __init__(self, cache: Cache) -> None:
        policy = cache.policy
        if type(policy) is not LRUPolicy:
            raise TypeError(
                f"{cache.name}: fast path requires exact LRU, got {policy.name}"
            )
        self.cache = cache
        self.policy = policy
        self.num_ways = cache.num_ways
        self.set_mask = cache._set_mask
        self.hit_latency = cache.hit_latency
        self.tags: list[int] = [t for row in cache._tags for t in row]
        self.dirty = bytearray(
            1 if d else 0 for row in cache._dirty for d in row
        )
        self.stamps: list[int] = [s for row in policy._stamp for s in row]
        self.index: dict[int, int] = {
            tag: i for i, tag in enumerate(self.tags) if tag != -1
        }
        # Valid lines per set: lets _fill take the full-set (victim) path
        # on an int compare instead of a raised ValueError, which is the
        # steady state once the cache is warm.
        self.occupancy: list[int] = [
            sum(1 for t in row if t != -1) for row in cache._tags
        ]
        stats = cache.stats
        self.demand_accesses = stats.demand_accesses
        self.demand_hits = stats.demand_hits
        self.writeback_accesses = stats.writeback_accesses
        self.writeback_hits = stats.writeback_hits
        self.evictions = stats.evictions
        self.dirty_evictions = stats.dirty_evictions
        self.per_kind_misses: dict[int, int] = dict(stats.per_kind_misses)

    def reset_counters(self) -> None:
        """Mirror of the driver's warm-up statistics reset."""
        self.demand_accesses = 0
        self.demand_hits = 0
        self.writeback_accesses = 0
        self.writeback_hits = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.per_kind_misses = {}

    def publish(self) -> None:
        """Fold the flat counters back into the live ``cache.stats``."""
        stats = self.cache.stats
        stats.demand_accesses = self.demand_accesses
        stats.demand_hits = self.demand_hits
        stats.writeback_accesses = self.writeback_accesses
        stats.writeback_hits = self.writeback_hits
        stats.evictions = self.evictions
        stats.dirty_evictions = self.dirty_evictions
        stats.per_kind_misses = dict(self.per_kind_misses)

    def restore_state(self, clock: int) -> None:
        """Fold tags/dirty/stamps back into the Cache and its policy."""
        cache = self.cache
        ways = self.num_ways
        sets = cache.num_sets
        cache._tags = [
            self.tags[s * ways:(s + 1) * ways] for s in range(sets)
        ]
        cache._dirty = [
            [b != 0 for b in self.dirty[s * ways:(s + 1) * ways]]
            for s in range(sets)
        ]
        self.policy._stamp = [
            self.stamps[s * ways:(s + 1) * ways] for s in range(sets)
        ]
        self.policy._clock = clock


class FastMachine:
    """The composed per-record driver over checked-out L1/L2 levels.

    Construct it once per :func:`~repro.core.simulator.simulate` call
    (the constructor checks the upper levels out of the hierarchy), call
    :meth:`run` / :meth:`run_with_telemetry` for the warm-up and measured
    windows, and :meth:`checkin` at the end to fold all state back so
    result snapshotting and later reference-engine use see an identical
    machine.
    """

    __slots__ = (
        "hierarchy", "llc", "dram", "block_bits", "l1i", "l1d", "l2",
        "clock", "l1d_misses", "l1d_misses_to_dram",
        "served_l1", "served_l2", "served_llc", "served_dram",
    )

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.hierarchy = hierarchy
        self.llc = hierarchy.llc
        self.dram = hierarchy.dram
        self.block_bits = hierarchy.block_bits
        self.l1i = _FastLevel(hierarchy.l1i)
        self.l1d = _FastLevel(hierarchy.l1d)
        self.l2 = _FastLevel(hierarchy.l2)
        self.clock = max(
            self.l1i.policy._clock, self.l1d.policy._clock, self.l2.policy._clock
        )
        stats = hierarchy.stats
        self.l1d_misses = stats.l1d_misses
        self.l1d_misses_to_dram = stats.l1d_misses_to_dram
        served = stats.served_by
        self.served_l1 = served[ServiceLevel.L1]
        self.served_l2 = served[ServiceLevel.L2]
        self.served_llc = served[ServiceLevel.LLC]
        self.served_dram = served[ServiceLevel.DRAM]

    # -- state folding --------------------------------------------------------

    def reset_counters(self) -> None:
        """Mirror the warm-up statistics reset on the checked-out state."""
        self.l1i.reset_counters()
        self.l1d.reset_counters()
        self.l2.reset_counters()
        self.l1d_misses = 0
        self.l1d_misses_to_dram = 0
        self.served_l1 = 0
        self.served_l2 = 0
        self.served_llc = 0
        self.served_dram = 0

    def publish(self) -> None:
        """Fold all counters into the live stats objects (cheap, idempotent)."""
        self.l1i.publish()
        self.l1d.publish()
        self.l2.publish()
        stats = self.hierarchy.stats
        stats.l1d_misses = self.l1d_misses
        stats.l1d_misses_to_dram = self.l1d_misses_to_dram
        served = stats.served_by
        served[ServiceLevel.L1] = self.served_l1
        served[ServiceLevel.L2] = self.served_l2
        served[ServiceLevel.LLC] = self.served_llc
        served[ServiceLevel.DRAM] = self.served_dram

    def checkin(self) -> None:
        """Fold counters *and* tag/dirty/LRU state back into the hierarchy."""
        self.publish()
        self.l1i.restore_state(self.clock)
        self.l1d.restore_state(self.clock)
        self.l2.restore_state(self.clock)

    # -- fill / writeback cascade ---------------------------------------------

    def _fill(self, lvl: _FastLevel, block: int, kind: int) -> int:
        """Insert ``block``; returns the dirty victim block, or -1 if none.

        A clean victim needs no downstream action, so callers only ever
        look at dirty ones — returning a single int avoids a tuple
        allocation per fill. -1 is unambiguous: it marks invalid ways, so
        no resident block ever equals it.
        """
        ways = lvl.num_ways
        set_index = block & lvl.set_mask
        base = set_index * ways
        tags = lvl.tags
        occupancy = lvl.occupancy
        victim = -1
        victim_dirty = 0
        if occupancy[set_index] < ways:
            idx = tags.index(-1, base, base + ways)
            occupancy[set_index] += 1
        else:
            # Full set: the way with the smallest stamp. Stamps are unique
            # (each is a fresh clock value), so index-of-min equals the
            # reference first-strict-minimum scan of LRUPolicy.find_victim.
            end = base + ways
            stamps = lvl.stamps
            idx = stamps.index(min(stamps[base:end]), base, end)
            victim = tags[idx]
            victim_dirty = lvl.dirty[idx]
            lvl.evictions += 1
            if victim_dirty:
                lvl.dirty_evictions += 1
            del lvl.index[victim]
        tags[idx] = block
        lvl.index[block] = idx
        lvl.dirty[idx] = 1 if kind == 1 or kind == 4 else 0  # STORE/WRITEBACK
        clock = self.clock + 1
        self.clock = clock
        lvl.stamps[idx] = clock
        return victim if victim_dirty else -1

    def _writeback_to_llc(self, block: int, cycle: int) -> None:
        llc = self.llc
        if llc.access(block, 0, 4).hit:  # AccessKind.WRITEBACK
            return
        fill = llc.fill(block, 0, 4)
        if fill.bypassed or (fill.victim_dirty and fill.victim_block is not None):
            victim = block if fill.bypassed else fill.victim_block
            assert victim is not None
            self.dram.write(victim << self.block_bits, cycle)

    def _writeback_to_l2(self, block: int, cycle: int) -> None:
        l2 = self.l2
        l2.writeback_accesses += 1
        idx = l2.index.get(block)
        if idx is not None:
            l2.writeback_hits += 1
            clock = self.clock + 1
            self.clock = clock
            l2.stamps[idx] = clock
            l2.dirty[idx] = 1
            return
        pkm = l2.per_kind_misses
        pkm[4] = pkm.get(4, 0) + 1
        wb = self._fill(l2, block, 4)
        if wb >= 0:
            self._writeback_to_llc(wb, cycle)

    def _fill_llc(self, block: int, pc: int, kind: int, cycle: int) -> None:
        fill = self.llc.fill(block, pc, kind)
        victim = fill.victim_block
        if victim is not None and fill.victim_dirty:
            self.dram.write(victim << self.block_bits, cycle)

    # -- the miss path --------------------------------------------------------

    def _miss(
        self, l1: _FastLevel, block: int, pc: int, kind: int, cycle: int, is_data: bool
    ) -> int:
        """L1 demand miss: probe L2 → LLC → DRAM, filling on the way back.

        Replays the reference ``CacheHierarchy.access`` miss path — same
        probe order, same fill/writeback cascade, same DRAM issue cycle.
        """
        latency = l1.hit_latency
        fill = self._fill
        l2 = self.l2
        l2.demand_accesses += 1
        idx = l2.index.get(block)
        if idx is not None:
            l2.demand_hits += 1
            clock = self.clock + 1
            self.clock = clock
            l2.stamps[idx] = clock
            if kind == 1:
                l2.dirty[idx] = 1
            latency += l2.hit_latency
            wb = fill(l1, block, kind)
            if wb >= 0:
                self._writeback_to_l2(wb, cycle)
            self.served_l2 += 1
            return latency
        pkm = l2.per_kind_misses
        pkm[kind] = pkm.get(kind, 0) + 1

        latency += l2.hit_latency
        if self.llc.access(block, pc, kind).hit:
            latency += self.llc.hit_latency
            self.served_llc += 1
        else:
            latency += self.llc.hit_latency
            latency += self.dram.read(block << self.block_bits, cycle + latency)
            if is_data:
                self.l1d_misses_to_dram += 1
            self._fill_llc(block, pc, kind, cycle)
            self.served_dram += 1

        wb = fill(l2, block, kind)
        if wb >= 0:
            self._writeback_to_llc(wb, cycle)
        wb = fill(l1, block, kind)
        if wb >= 0:
            self._writeback_to_l2(wb, cycle)
        return latency

    # -- the composed hot loop ------------------------------------------------

    def run(self, core: CoreModel, trace: Trace, start: int, stop: int) -> None:
        """Stream records [start, stop) through the machine.

        Replaces the reference ``_run_accesses`` four-call chain with one
        loop over hoisted locals; the core model is inlined (same float
        operation order as :meth:`CoreModel.step`). All shared state is
        folded back into the core and the live stats objects on exit, so
        callers may interleave ``run`` calls with state inspection.
        """
        addrs = trace.addrs[start:stop].tolist()
        pcs = trace.pcs[start:stop].tolist()
        kinds = trace.kinds[start:stop].tolist()
        gaps = trace.gaps[start:stop].tolist()

        cfg = core.config
        width = cfg.dispatch_width
        rob = cfg.rob_size
        mshrs = cfg.max_outstanding_misses
        inflight = core._inflight
        popleft = inflight.popleft
        append = inflight.append
        cstats = core.stats
        cycle = core._cycle
        instr = core._instr
        rob_stall = cstats.rob_stall_cycles
        mshr_stall = cstats.mshr_stall_cycles
        loads = cstats.load_accesses
        load_lat = cstats.total_load_latency

        l1d = self.l1d
        l1i = self.l1i
        d_get = l1d.index.get
        i_get = l1i.index.get
        d_stamps = l1d.stamps
        i_stamps = l1i.stamps
        d_dirty = l1d.dirty
        d_lat = l1d.hit_latency
        i_lat = l1i.hit_latency
        d_pkm = l1d.per_kind_misses
        i_pkm = l1i.per_kind_misses
        d_acc = l1d.demand_accesses
        d_hits = l1d.demand_hits
        i_acc = l1i.demand_accesses
        i_hits = l1i.demand_hits
        served_l1 = self.served_l1
        l1d_misses = self.l1d_misses
        clock = self.clock
        bbits = self.block_bits
        miss = self._miss

        for addr, pc, kind, gap in zip(addrs, pcs, kinds, gaps):
            block = addr >> bbits
            if kind <= 1:  # LOAD / STORE → L1D
                d_acc += 1
                idx = d_get(block)
                if idx is not None:
                    d_hits += 1
                    clock += 1
                    d_stamps[idx] = clock
                    if kind == 1:
                        d_dirty[idx] = 1
                    served_l1 += 1
                    latency = d_lat
                else:
                    d_pkm[kind] = d_pkm.get(kind, 0) + 1
                    l1d_misses += 1
                    self.clock = clock
                    latency = miss(l1d, block, pc, kind, int(cycle), True)
                    clock = self.clock
            else:  # IFETCH (eligibility guarantees kind == 2) → L1I
                i_acc += 1
                idx = i_get(block)
                if idx is not None:
                    i_hits += 1
                    clock += 1
                    i_stamps[idx] = clock
                    served_l1 += 1
                    latency = i_lat
                else:
                    i_pkm[2] = i_pkm.get(2, 0) + 1
                    self.clock = clock
                    latency = miss(l1i, block, pc, 2, int(cycle), False)
                    clock = self.clock

            # Inlined CoreModel.step — identical arithmetic order.
            instr += gap
            cycle += gap / width
            horizon = instr - rob
            while inflight and inflight[0][0] < horizon:
                done = popleft()[1]
                if done > cycle:
                    rob_stall += done - cycle
                    cycle = done
            if kind != 1:  # LOAD or IFETCH occupy the window; stores do not
                if len(inflight) >= mshrs:
                    done = popleft()[1]
                    if done > cycle:
                        mshr_stall += done - cycle
                        cycle = done
                loads += 1
                load_lat += latency
                append((instr, cycle + latency))

        self.clock = clock
        l1d.demand_accesses = d_acc
        l1d.demand_hits = d_hits
        l1i.demand_accesses = i_acc
        l1i.demand_hits = i_hits
        self.served_l1 = served_l1
        self.l1d_misses = l1d_misses
        core._cycle = cycle
        core._instr = instr
        cstats.rob_stall_cycles = rob_stall
        cstats.mshr_stall_cycles = mshr_stall
        cstats.load_accesses = loads
        cstats.total_load_latency = load_lat
        self.publish()

    def run_with_telemetry(
        self,
        core: CoreModel,
        trace: Trace,
        start: int,
        stop: int,
        collector: TelemetryCollector,
    ) -> None:
        """Telemetry-armed variant: chunked between interval boundaries.

        The reference loop compares ``core.instructions`` to the next
        boundary after *every* record; instruction counts are just the
        prefix sums of the gap stream, so the first record to cross a
        boundary can be found with a binary search instead. Each chunk
        runs at full speed and ends exactly one record past a boundary
        crossing — the same close/realign sequence the per-record check
        produces, including multi-interval jumps from one long gap.
        ``run`` publishes counters and syncs the core before returning,
        so ``collector.on_boundary`` observes exactly what it would have
        mid-loop in the reference engine.
        """
        boundary = collector.begin(core)
        n = stop - start
        if n <= 0:
            return
        cum = np.cumsum(trace.gaps[start:stop], dtype=np.int64)
        base = core._instr
        pos = 0
        while pos < n:
            crossing = int(np.searchsorted(cum, boundary - base, side="left"))
            chunk_end = crossing + 1 if crossing < n else n
            self.run(core, trace, start + pos, start + chunk_end)
            pos = chunk_end
            if core._instr >= boundary:
                boundary = collector.on_boundary(core)


def fastpath_eligible(hierarchy: CacheHierarchy, trace: Trace) -> bool:
    """Whether the fast engine models this machine/trace combination.

    Conservative by design: anything outside the fast path's model —
    prefetching, inclusive mode, attached sanitizers, telemetry taps on
    upper levels, non-LRU upper-level policies, or trace records beyond
    LOAD/STORE/IFETCH — selects the reference engine instead. The LLC
    policy is never constrained (the LLC stays a real :class:`Cache`).
    """
    if hierarchy.l2_prefetcher is not None or hierarchy.inclusive:
        return False
    if hierarchy._sanitizer is not None or hierarchy.llc._sanitizer is not None:
        return False
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2):
        if type(cache.policy) is not LRUPolicy:
            return False
        if cache._sanitizer is not None or cache._telemetry is not None:
            return False
    if len(trace) and int(trace.kinds.max()) > 2:  # beyond IFETCH
        return False
    return True
