"""Three-level cache hierarchy with a DRAM backend.

Models the ChampSim/Cascade-Lake organization the paper simulates:
split 32 KB L1I/L1D, a 1 MB private L2, a 1.375 MB LLC slice, DDR4 main
memory. By default the hierarchy is non-inclusive ("NINE", as Cascade
Lake's actually is): levels fill independently, evictions do not
back-invalidate, and dirty victims are written back to the next level
(write-allocate on writeback miss, as in ChampSim). An ``inclusive``
mode is available for sensitivity studies: LLC evictions then
back-invalidate upper-level copies, flushing dirty data to memory.

The LLC's replacement policy is the experiment variable; L1s and L2 run
LRU, as in the paper's setup. An optional L2 prefetcher can be attached
for sensitivity studies (the headline experiments run without one).

:meth:`CacheHierarchy.access` returns the demand latency in core cycles
and the level that served the access, so the core model can account for
overlap and the harness can report where accesses were served.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..trace.record import AccessKind
from .cache import Cache
from .dram import DRAM
from .prefetcher import Prefetcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Mapping

    from ..lint.sanitize import HierarchySanitizer
    from ..telemetry.collector import CacheTap


class ServiceLevel(enum.IntEnum):
    """The hierarchy level that ultimately served a demand access."""

    L1 = 0
    L2 = 1
    LLC = 2
    DRAM = 3


@dataclass
class HierarchyStats:
    """Cross-level counters the per-cache stats cannot express."""

    #: Demand accesses that missed the L1D *and* were served by DRAM —
    #: numerator of the paper's 78.6 % statistic.
    l1d_misses_to_dram: int = 0
    #: All demand accesses that missed the L1D.
    l1d_misses: int = 0
    #: Inclusive mode: LLC evictions that snooped the upper levels.
    back_invalidations: int = 0
    #: Demand accesses served per level.
    served_by: dict[int, int] = field(
        default_factory=lambda: dict.fromkeys(ServiceLevel, 0)
    )

    @property
    def l1d_miss_dram_fraction(self) -> float:
        """Fraction of L1D misses that required a DRAM access."""
        if self.l1d_misses == 0:
            return 0.0
        return self.l1d_misses_to_dram / self.l1d_misses


class CacheHierarchy:
    """L1I + L1D -> L2 -> LLC -> DRAM, with writeback propagation."""

    def __init__(
        self,
        l1i: Cache,
        l1d: Cache,
        l2: Cache,
        llc: Cache,
        dram: DRAM,
        l2_prefetcher: Prefetcher | None = None,
        inclusive: bool = False,
    ) -> None:
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.llc = llc
        self.dram = dram
        self.l2_prefetcher = l2_prefetcher
        self.inclusive = inclusive
        self.stats = HierarchyStats()
        self.block_bits = l1d.block_bits
        self._sanitizer: HierarchySanitizer | None = None

    def attach_sanitizer(self, sanitizer: HierarchySanitizer) -> None:
        """Arm opt-in cross-level invariant checks (inclusion sweeps)."""
        self._sanitizer = sanitizer

    def attach_telemetry(self, taps: Mapping[str, CacheTap | None]) -> None:
        """Attach (or, with ``None`` values, detach) telemetry taps by level name."""
        caches = self.caches
        for name, tap in taps.items():
            caches[name].attach_telemetry(tap)

    @property
    def caches(self) -> dict[str, Cache]:
        """The four cache levels keyed by their names."""
        return {c.name: c for c in (self.l1i, self.l1d, self.l2, self.llc)}

    # -- writeback path ----------------------------------------------------------

    def _writeback_to_l2(self, block: int, cycle: int) -> None:  # hot
        result = self.l2.access(block, 0, AccessKind.WRITEBACK)
        if result.hit:
            return
        fill = self.l2.fill(block, 0, AccessKind.WRITEBACK)
        if fill.victim_dirty and fill.victim_block is not None:
            self._writeback_to_llc(fill.victim_block, cycle)

    def _writeback_to_llc(self, block: int, cycle: int) -> None:  # hot
        result = self.llc.access(block, 0, AccessKind.WRITEBACK)
        if result.hit:
            return
        fill = self.llc.fill(block, 0, AccessKind.WRITEBACK)
        if fill.bypassed or (fill.victim_dirty and fill.victim_block is not None):
            # A bypassed writeback goes straight to memory; a dirty victim
            # is written back. Either way DRAM sees one write.
            victim = block if fill.bypassed else fill.victim_block
            self.dram.write(victim << self.block_bits, cycle)

    def _fill_l1(self, l1: Cache, block: int, pc: int, kind: int, cycle: int) -> None:  # hot
        fill = l1.fill(block, pc, kind)
        if fill.victim_dirty and fill.victim_block is not None:
            self._writeback_to_l2(fill.victim_block, cycle)

    def _fill_l2(self, block: int, pc: int, kind: int, cycle: int) -> None:  # hot
        fill = self.l2.fill(block, pc, kind)
        if fill.victim_dirty and fill.victim_block is not None:
            self._writeback_to_llc(fill.victim_block, cycle)

    def _back_invalidate(self, block: int, cycle: int) -> bool:
        """Inclusive mode: an LLC eviction removes upper-level copies.

        A dirty upper-level copy holds the freshest data; its contents go
        straight to memory, as a real inclusive hierarchy's back-snoop
        would force. Returns whether such a flush happened, so the LLC
        fill path never issues a second (stale) writeback for the same
        block.
        """
        dirty = False
        for cache in (self.l1i, self.l1d, self.l2):
            set_index = cache.set_index(block)
            way = cache.lookup(block)
            if way >= 0:
                dirty = dirty or cache._dirty[set_index][way]
                cache.invalidate(block)
        if dirty:
            self.dram.write(block << self.block_bits, cycle)
        self.stats.back_invalidations += 1
        return dirty

    def _fill_llc(self, block: int, pc: int, kind: int, cycle: int) -> None:  # hot
        fill = self.llc.fill(block, pc, kind)
        victim = fill.victim_block
        if victim is None:
            return
        upper_dirty = False
        if self.inclusive:
            upper_dirty = self._back_invalidate(victim, cycle)
        # One DRAM write per evicted block: the back-snoop flush carries
        # the freshest (upper-level) data, so a dirty LLC victim only
        # writes back when no upper copy already did.
        if fill.victim_dirty and not upper_dirty:
            self.dram.write(victim << self.block_bits, cycle)

    # -- prefetching -------------------------------------------------------------

    def _run_l2_prefetcher(self, block: int, pc: int, hit: bool, cycle: int) -> None:
        assert self.l2_prefetcher is not None
        for pf_block in self.l2_prefetcher.observe(block, pc, hit):
            # Probe through access() so the L2's prefetch_accesses /
            # prefetch_hits counters both move and the hit rate means
            # something; a prefetch that is already resident is a hit
            # (and refreshes its recency), not an untracked no-op.
            if self.l2.access(pf_block, pc, AccessKind.PREFETCH).hit:
                continue
            probe = self.llc.access(pf_block, pc, AccessKind.PREFETCH)
            if not probe.hit:
                self.dram.read(pf_block << self.block_bits, cycle)
                self._fill_llc(pf_block, pc, AccessKind.PREFETCH, cycle)
            self._fill_l2(pf_block, pc, AccessKind.PREFETCH, cycle)

    # -- the demand path -----------------------------------------------------------

    def access(self, addr: int, pc: int, kind: int, cycle: int) -> tuple[int, ServiceLevel]:  # hot
        """One demand access; returns (latency in cycles, serving level)."""
        if self._sanitizer is not None:
            self._sanitizer.on_access(self)
        block = addr >> self.block_bits
        l1 = self.l1i if kind == AccessKind.IFETCH else self.l1d
        is_data = l1 is self.l1d

        if l1.access(block, pc, kind).hit:
            self.stats.served_by[ServiceLevel.L1] += 1
            return l1.hit_latency, ServiceLevel.L1
        if is_data:
            self.stats.l1d_misses += 1

        latency = l1.hit_latency
        l2_result = self.l2.access(block, pc, kind)
        if self.l2_prefetcher is not None:
            self._run_l2_prefetcher(block, pc, l2_result.hit, cycle)
        if l2_result.hit:
            latency += self.l2.hit_latency
            self._fill_l1(l1, block, pc, kind, cycle)
            self.stats.served_by[ServiceLevel.L2] += 1
            return latency, ServiceLevel.L2

        latency += self.l2.hit_latency
        if self.llc.access(block, pc, kind).hit:
            latency += self.llc.hit_latency
            self._fill_l2(block, pc, kind, cycle)
            self._fill_l1(l1, block, pc, kind, cycle)
            self.stats.served_by[ServiceLevel.LLC] += 1
            return latency, ServiceLevel.LLC

        latency += self.llc.hit_latency
        latency += self.dram.read(block << self.block_bits, cycle + latency)
        if is_data:
            self.stats.l1d_misses_to_dram += 1
        self._fill_llc(block, pc, kind, cycle)
        self._fill_l2(block, pc, kind, cycle)
        self._fill_l1(l1, block, pc, kind, cycle)
        self.stats.served_by[ServiceLevel.DRAM] += 1
        return latency, ServiceLevel.DRAM
