"""DDR4 main-memory model.

Models the timing behaviour that matters at MPKI/IPC granularity: bank
parallelism, row-buffer locality, and bank busy time. Addresses map to
(channel, bank, row) with row-interleaved bank bits so sequential streams
spread across banks; each bank tracks its open row and the cycle at which
it next becomes free.

Latencies are expressed in *core* cycles. Defaults model DDR4-2933 under
a 4 GHz core: tRCD = tRP = tCAS ≈ 13.75 ns ≈ 55 core cycles, plus a burst
transfer and fixed controller overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DRAMConfig:
    """Timing and geometry of the memory system (core-cycle units)."""

    channels: int = 1
    banks_per_channel: int = 16
    row_bytes: int = 8192
    t_cas: int = 55  # column access (row-buffer hit portion)
    t_rcd: int = 55  # row activate
    t_rp: int = 55  # precharge
    t_burst: int = 8  # data transfer of one 64 B block
    controller_overhead: int = 20  # queueing/arbitration floor

    @property
    def row_hit_latency(self) -> int:
        """Latency when the row is already open."""
        return self.controller_overhead + self.t_cas + self.t_burst

    @property
    def row_closed_latency(self) -> int:
        """Latency when the bank is idle (row must be activated)."""
        return self.controller_overhead + self.t_rcd + self.t_cas + self.t_burst

    @property
    def row_conflict_latency(self) -> int:
        """Latency when another row is open (precharge + activate)."""
        return (
            self.controller_overhead + self.t_rp + self.t_rcd + self.t_cas + self.t_burst
        )


@dataclass
class DRAMStats:
    """Access counters for the memory system."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    row_closed: int = 0
    total_read_latency: int = 0

    @property
    def accesses(self) -> int:
        """Total read + write transactions."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of transactions that hit an open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_read_latency(self) -> float:
        """Average latency observed by reads, in core cycles."""
        return self.total_read_latency / self.reads if self.reads else 0.0


@dataclass
class _Bank:
    open_row: int = -1
    next_free: int = 0


class DRAM:
    """Bank-aware DDR4 timing model.

    :meth:`read` returns the latency, in core cycles, of a demand fill
    issued at ``cycle``; :meth:`write` models writebacks, which occupy the
    bank but complete off the critical path (no latency returned).
    """

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        n = self.config.channels * self.config.banks_per_channel
        self._banks = [_Bank() for _ in range(n)]
        self.stats = DRAMStats()

    def _locate(self, addr: int) -> tuple[_Bank, int]:
        """Map a byte address to its bank and row."""
        cfg = self.config
        row = addr // cfg.row_bytes
        bank_index = row % len(self._banks)
        return self._banks[bank_index], row

    def _service(self, addr: int, cycle: int) -> int:
        cfg = self.config
        bank, row = self._locate(addr)
        start = max(cycle, bank.next_free)
        queue_wait = start - cycle
        if bank.open_row == row:
            self.stats.row_hits += 1
            service = cfg.row_hit_latency
        elif bank.open_row == -1:
            self.stats.row_closed += 1
            service = cfg.row_closed_latency
        else:
            self.stats.row_conflicts += 1
            service = cfg.row_conflict_latency
        bank.open_row = row
        bank.next_free = start + service
        return queue_wait + service

    def rebase(self, cycle: int) -> None:
        """Shift the bank clocks so ``cycle`` becomes the new time origin.

        The simulation driver resets the core to cycle 0 at the
        warm-up/measurement boundary; without a matching shift here, the
        banks' ``next_free`` timestamps would still be expressed on the
        warm-up clock and the first measured reads would pay the entire
        warm-up duration as spurious queue wait. Rebasing preserves the
        *residual* bank busy time (a bank still ``k`` cycles from free
        stays ``k`` cycles from free) and keeps open-row state intact —
        exactly what a continuously-running memory system would show at
        that instant.
        """
        if cycle < 0:
            raise ValueError(f"rebase cycle must be non-negative, got {cycle}")
        for bank in self._banks:
            residual = bank.next_free - cycle
            bank.next_free = residual if residual > 0 else 0

    def read(self, addr: int, cycle: int) -> int:
        """A demand read at ``cycle``; returns total latency in cycles."""
        latency = self._service(addr, cycle)
        self.stats.reads += 1
        self.stats.total_read_latency += latency
        return latency

    def write(self, addr: int, cycle: int) -> None:
        """A writeback at ``cycle``; occupies the bank, returns nothing."""
        self._service(addr, cycle)
        self.stats.writes += 1
