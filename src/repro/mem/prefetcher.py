"""Hardware prefetchers.

Two classic designs, attachable to any cache level through the
hierarchy's prefetch hook:

* :class:`NextLinePrefetcher` — fetch block N+1 (and optionally further)
  on every demand access; cheap spatial coverage.
* :class:`IPStridePrefetcher` — per-PC stride detection with a confidence
  counter, the design shipped (in spirit) as the L2 stream/stride
  prefetcher of the Cascade Lake machine the paper models.

The paper's headline experiments run with prefetching *disabled* (the
replacement policies are the variable under study); prefetchers are
provided for the sensitivity analyses and as library functionality.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class Prefetcher(abc.ABC):
    """Interface: observe demand accesses, propose blocks to prefetch."""

    name: str = "base"

    @abc.abstractmethod
    def observe(self, block: int, pc: int, hit: bool) -> list[int]:
        """Called on each demand access; returns block addresses to prefetch."""

    def reset(self) -> None:
        """Clear learned state."""


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential blocks on every access."""

    name = "next_line"

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree

    def observe(self, block: int, pc: int, hit: bool) -> list[int]:
        return [block + d for d in range(1, self.degree + 1)]

    def reset(self) -> None:
        pass


@dataclass
class _StrideEntry:
    last_block: int = -1
    stride: int = 0
    confidence: int = 0


class IPStridePrefetcher(Prefetcher):
    """Per-PC stride prefetcher with 2-bit confidence.

    A table indexed by hashed PC remembers the last block and the last
    observed stride per instruction. Two consecutive accesses with the
    same non-zero stride raise confidence; confident entries prefetch
    ``degree`` blocks ahead along the stride.
    """

    name = "ip_stride"

    TABLE_BITS = 8
    CONFIDENCE_MAX = 3
    CONFIDENCE_THRESHOLD = 2

    def __init__(self, degree: int = 2) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self._table: list[_StrideEntry] = [
            _StrideEntry() for _ in range(1 << self.TABLE_BITS)
        ]

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> self.TABLE_BITS)) & ((1 << self.TABLE_BITS) - 1)

    def observe(self, block: int, pc: int, hit: bool) -> list[int]:
        entry = self._table[self._index(pc)]
        prefetches: list[int] = []
        if entry.last_block >= 0:
            stride = block - entry.last_block
            if stride != 0 and stride == entry.stride:
                if entry.confidence < self.CONFIDENCE_MAX:
                    entry.confidence += 1
            else:
                entry.stride = stride
                entry.confidence = 0
            if entry.confidence >= self.CONFIDENCE_THRESHOLD and entry.stride != 0:
                prefetches = [
                    block + entry.stride * d for d in range(1, self.degree + 1)
                ]
        entry.last_block = block
        return [b for b in prefetches if b >= 0]

    def reset(self) -> None:
        for entry in self._table:
            entry.last_block = -1
            entry.stride = 0
            entry.confidence = 0
