"""Name-based policy registry.

The harness, benchmarks and examples refer to policies by their canonical
lowercase names (``"lru"``, ``"srrip"``, ``"hawkeye"``, ...). The registry
maps each name to a zero-argument factory producing a fresh, unattached
policy instance. Belady's OPT is deliberately *not* constructible here —
it needs a recorded future and is built by
:func:`repro.core.oracle.simulate_with_opt`.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownPolicyError
from .base import ReplacementPolicy
from .basic import FIFOPolicy, LRUPolicy, MRUPolicy, NRUPolicy, RandomPolicy, TreePLRUPolicy
from .dip import BIPPolicy, DIPPolicy, LIPPolicy
from .glider import GliderPolicy
from .hawkeye import HawkeyePolicy
from .mpppb import MPPPBPolicy
from .rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from .ship import SHiPPolicy

_REGISTRY: dict[str, Callable[[], ReplacementPolicy]] = {}


def register_policy(name: str, factory: Callable[[], ReplacementPolicy]) -> None:
    """Register (or replace) a policy factory under ``name``."""
    _REGISTRY[name.lower()] = factory


def make_policy(name: str) -> ReplacementPolicy:
    """Create a fresh instance of the policy registered as ``name``."""
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise UnknownPolicyError(
            f"unknown replacement policy {name!r}; available: {', '.join(available_policies())}"
        )
    return factory()


def available_policies() -> list[str]:
    """Sorted list of registered policy names."""
    return sorted(_REGISTRY)


#: The six policies the paper evaluates, in its presentation order.
PAPER_POLICIES = ("srrip", "drrip", "ship", "hawkeye", "glider", "mpppb")

#: The paper's baseline.
BASELINE_POLICY = "lru"

#: Policy classes deliberately outside the warm-state checkpoint
#: protocol (``checkpoint_tables``/``restore_tables``): their only
#: cross-line state is a relabeling-invariant recency clock (or, for
#: Random, a seeded RNG stream), which the sampling executor's recency
#: synthesis rebuilds through the fill path. Every registered policy
#: class must either implement the protocol or appear here — enforced
#: statically by the ``warm-state-protocol`` lint rule.
WARM_STATE_EXCLUDED = (
    "BIPPolicy",
    "FIFOPolicy",
    "LIPPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "NRUPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
)


for _name, _factory in [
    ("lru", LRUPolicy),
    ("mru", MRUPolicy),
    ("fifo", FIFOPolicy),
    ("random", RandomPolicy),
    ("nru", NRUPolicy),
    ("plru", TreePLRUPolicy),
    ("lip", LIPPolicy),
    ("bip", BIPPolicy),
    ("dip", DIPPolicy),
    ("srrip", SRRIPPolicy),
    ("brrip", BRRIPPolicy),
    ("drrip", DRRIPPolicy),
    ("ship", SHiPPolicy),
    ("hawkeye", HawkeyePolicy),
    ("glider", GliderPolicy),
    ("mpppb", MPPPBPolicy),
]:
    register_policy(_name, _factory)
