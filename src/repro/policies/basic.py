"""Classic replacement policies: LRU, FIFO, Random, NRU, Tree-PLRU, MRU.

LRU is the paper's baseline — every speed-up in Figure 3 is measured
against it. The others serve as reference points and as substrates for
tests (Random gives a policy-insensitive floor, PLRU approximates LRU the
way real hardware does).
"""

from __future__ import annotations

import numpy as np

from .base import PolicyAccess, ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Implemented with monotonic timestamps: each hit or fill stamps the
    line with a global counter, and the victim is the way with the oldest
    stamp. Exact LRU (not an approximation), matching ChampSim's ``lru``.
    """

    name = "lru"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        stamps = self._stamp[set_index]
        victim = 0
        oldest = stamps[0]
        for way in range(1, self.num_ways):
            if stamps[way] < oldest:
                oldest = stamps[way]
                victim = way
        return victim

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._touch(set_index, way)

    def snapshot_state(self) -> dict[str, object]:
        # Clock minus the globally oldest stamp bounds how stale the
        # recency state is; it grows when some line is never touched.
        oldest = min(min(row) for row in self._stamp)
        return {"clock": self._clock, "oldest_stamp_age": self._clock - oldest}


class MRUPolicy(LRUPolicy):
    """Most-recently-used eviction — an intentionally bad policy.

    Useful as an adversarial reference in tests: on a cyclic working set
    slightly larger than the cache, MRU beats LRU, demonstrating that the
    harness really exercises the policy hook.
    """

    name = "mru"

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        stamps = self._stamp[set_index]
        victim = 0
        newest = stamps[0]
        for way in range(1, self.num_ways):
            if stamps[way] > newest:
                newest = stamps[way]
                victim = way
        return victim


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: victim is the oldest *fill*, hits do not refresh."""

    name = "fifo"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        stamps = self._stamp[set_index]
        victim = 0
        oldest = stamps[0]
        for way in range(1, self.num_ways):
            if stamps[way] < oldest:
                oldest = stamps[way]
                victim = way
        return victim

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        pass  # FIFO ignores hits by definition

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def snapshot_state(self) -> dict[str, object]:
        oldest = min(min(row) for row in self._stamp)
        return {"clock": self._clock, "oldest_stamp_age": self._clock - oldest}


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection (seeded, reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0xCACE) -> None:
        super().__init__()
        self._seed = seed

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rng = np.random.default_rng(self._seed)

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        return int(self._rng.integers(0, self.num_ways))

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        pass

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        pass

    def snapshot_state(self) -> dict[str, object]:
        # The generator position pins the whole draw history: two runs
        # with equal seed and state word have made identical decisions.
        raw = self._rng.bit_generator.state["state"]["state"]
        return {"seed": self._seed, "rng_state_word": int(raw) & 0xFFFFFFFFFFFFFFFF}


class NRUPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per line.

    Hits and fills set the bit; the victim is the lowest-index way with a
    clear bit. When every bit in the set is set, all are cleared first —
    the classic second-chance scheme used by several real L1 designs.
    """

    name = "nru"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._ref = [[0] * num_ways for _ in range(num_sets)]

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        bits = self._ref[set_index]
        for way in range(self.num_ways):
            if not bits[way]:
                return way
        for way in range(self.num_ways):
            bits[way] = 0
        return 0

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._ref[set_index][way] = 1

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._ref[set_index][way] = 1

    def snapshot_state(self) -> dict[str, object]:
        return {"ref_bits_set": sum(sum(row) for row in self._ref)}


class TreePLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU, the LRU approximation used in real L1/L2s.

    Maintains ``ways - 1`` tree bits per set arranged as an implicit
    binary tree; each access flips the path bits away from the touched
    way, and the victim is found by following the bits. Requires a
    power-of-two way count; non-power-of-two caches should use
    :class:`LRUPolicy`.
    """

    name = "plru"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        if num_ways & (num_ways - 1):
            raise ValueError(
                f"Tree-PLRU requires a power-of-two way count, got {num_ways}"
            )
        self._bits = [[0] * max(1, num_ways - 1) for _ in range(num_sets)]
        self._levels = num_ways.bit_length() - 1

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        bits = self._bits[set_index]
        node = 0
        for _ in range(self._levels):
            node = 2 * node + 1 + bits[node]
        return node - (self.num_ways - 1)

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = way + (self.num_ways - 1)
        while node:
            parent = (node - 1) // 2
            went_right = node == 2 * parent + 2
            # Point the bit away from the path we just took.
            bits[parent] = 0 if went_right else 1
            node = parent

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._touch(set_index, way)

    def snapshot_state(self) -> dict[str, object]:
        return {"tree_bits_set": sum(sum(row) for row in self._bits)}
