"""Glider replacement (Shi, Huang, Jain & Lin, MICRO 2019) — practical ISVM.

Glider's offline study trains an attention-based LSTM and distills the
insight that *the unordered set of recent PCs* predicts reuse better than
the single triggering PC. Its practical hardware design — implemented
here — replaces Hawkeye's counter table with a table of Integer Support
Vector Machines (ISVMs): one ISVM per (hashed) triggering PC, each with 16
small integer weights indexed by hashes of the PCs in a 5-entry PC History
Register (PCHR). Predictions sum the weights of the current history;
training uses the same OPTgen verdicts as Hawkeye, with a fixed margin
(updates stop once the sum exceeds the training threshold).

Structure sizes follow the paper's hardware budget: 2048 ISVMs of 16
weights, 5-PC history, thresholds 0 (averse/friendly) and 60 (high
confidence), training margin 100.
"""

from __future__ import annotations

from collections import deque

from ..trace.record import AccessKind
from .base import PolicyAccess, ReplacementPolicy
from .hawkeye import HAWKEYE_RRPV_MAX
from .optgen import SetSampler

_KIND_WRITEBACK = int(AccessKind.WRITEBACK)

ISVM_TABLE_BITS = 11
ISVM_TABLE_SIZE = 1 << ISVM_TABLE_BITS
ISVM_WEIGHTS = 16
PCHR_LENGTH = 5
WEIGHT_MIN, WEIGHT_MAX = -31, 31

#: Prediction sum below this is cache-averse.
THRESHOLD_AVERSE = 0
#: Prediction sum at or above this is high-confidence friendly.
THRESHOLD_CONFIDENT = 60
#: Training stops (margin reached) once the sum passes this.
TRAINING_MARGIN = 100


def isvm_index(pc: int) -> int:
    """Select the ISVM for the triggering PC."""
    return (pc ^ (pc >> ISVM_TABLE_BITS) ^ (pc >> (2 * ISVM_TABLE_BITS))) & (
        ISVM_TABLE_SIZE - 1
    )


def weight_index(history_pc: int) -> int:
    """Hash a history PC into one of the 16 ISVM weight slots."""
    return (history_pc ^ (history_pc >> 4) ^ (history_pc >> 8)) & (ISVM_WEIGHTS - 1)


class GliderPolicy(ReplacementPolicy):
    """ISVM-over-PC-history reuse prediction trained by OPTgen."""

    name = "glider"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rrpv = [[HAWKEYE_RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._line_friendly = [[False] * num_ways for _ in range(num_sets)]
        self._line_features = [
            [((0, ()))] * num_ways for _ in range(num_sets)
        ]  # (isvm index, weight indices) of the last touch
        self._isvms = [[0] * ISVM_WEIGHTS for _ in range(ISVM_TABLE_SIZE)]
        self._pchr: deque[int] = deque(maxlen=PCHR_LENGTH)
        # Per-slot occupancy of the PCHR plus the cached sorted distinct
        # slot tuple, maintained incrementally by _push_history so
        # _features need not rehash the whole history on every touch.
        self._pchr_slot_counts = [0] * ISVM_WEIGHTS
        self._pchr_slots: tuple[int, ...] = ()
        self._sampler = SetSampler(num_sets, num_ways)
        self.stat_friendly_fills = 0
        self.stat_averse_fills = 0

    # -- features & prediction -----------------------------------------------

    def _push_history(self, pc: int) -> None:
        """Append ``pc`` to the PCHR, maintaining the slot-set cache.

        The slot tuple only changes when a ``weight_index`` value enters
        or leaves the history's support set, so the sorted rebuild runs
        on that transition rather than on every feature computation.
        """
        counts = self._pchr_slot_counts
        pchr = self._pchr
        changed = False
        if len(pchr) == PCHR_LENGTH:
            oldest = weight_index(pchr[0])
            counts[oldest] -= 1
            if not counts[oldest]:
                changed = True
        slot = weight_index(pc)
        counts[slot] += 1
        if counts[slot] == 1:
            changed = True
        pchr.append(pc)
        if changed:
            self._pchr_slots = tuple(
                s for s in range(ISVM_WEIGHTS) if counts[s]
            )

    def _features(self, pc: int) -> tuple[int, tuple[int, ...]]:
        """The (ISVM, weight-slot) feature tuple for the current history."""
        return isvm_index(pc), self._pchr_slots

    def _sum(self, features: tuple[int, tuple[int, ...]]) -> int:
        table, slots = features
        weights = self._isvms[table]
        return sum(map(weights.__getitem__, slots))

    def _train(self, features: tuple[int, tuple[int, ...]], opt_hit: bool) -> None:
        table, slots = features
        weights = self._isvms[table]
        total = sum(map(weights.__getitem__, slots))
        if opt_hit:
            if total < TRAINING_MARGIN:  # margin: stop once confidently positive
                for s in slots:
                    if weights[s] < WEIGHT_MAX:
                        weights[s] += 1
        else:
            if total > -TRAINING_MARGIN:
                for s in slots:
                    if weights[s] > WEIGHT_MIN:
                        weights[s] -= 1

    # -- sampling ---------------------------------------------------------------

    def _sample(
        self, set_index: int, access: PolicyAccess, features: tuple[int, tuple[int, ...]]
    ) -> None:
        decided, previous, evicted = self._sampler.observe(
            set_index, access.block, access.pc, context=features
        )
        if decided and previous is not None and previous.context is not None:
            self._train(previous.context, previous.opt_hit)  # type: ignore[attr-defined]
        if evicted is not None and evicted.context is not None:
            self._train(evicted.context, opt_hit=False)

    # -- replacement hooks --------------------------------------------------------

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        rrpv = self._rrpv[set_index]
        for way in range(self.num_ways):
            if rrpv[way] == HAWKEYE_RRPV_MAX:
                return way
        victim = 0
        max_rrpv = rrpv[0]
        for way in range(1, self.num_ways):
            if rrpv[way] > max_rrpv:
                max_rrpv = rrpv[way]
                victim = way
        if self._line_friendly[set_index][victim]:
            # Evicting a line we promised to keep: detrain its features.
            self._train(self._line_features[set_index][victim], opt_hit=False)
        return victim

    def _touch(self, set_index: int, way: int, access: PolicyAccess, is_fill: bool) -> None:
        if access.kind == _KIND_WRITEBACK:
            self._line_friendly[set_index][way] = False
            self._line_features[set_index][way] = (0, ())
            self._rrpv[set_index][way] = HAWKEYE_RRPV_MAX
            return
        features = self._features(access.pc)
        self._sample(set_index, access, features)
        total = self._sum(features)
        self._push_history(access.pc)
        self._line_features[set_index][way] = features
        if total < THRESHOLD_AVERSE:
            self._line_friendly[set_index][way] = False
            self._rrpv[set_index][way] = HAWKEYE_RRPV_MAX
            if is_fill:
                self.stat_averse_fills += 1
            return
        self._line_friendly[set_index][way] = True
        if is_fill:
            self.stat_friendly_fills += 1
            rrpv = self._rrpv[set_index]
            for w in range(self.num_ways):
                if w != way and rrpv[w] < HAWKEYE_RRPV_MAX - 1:
                    rrpv[w] += 1
        # High-confidence friendly lines are pinned at 0; low-confidence
        # ones start slightly aged so they yield to confident lines.
        self._rrpv[set_index][way] = 0 if total >= THRESHOLD_CONFIDENT else 2

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._touch(set_index, way, access, is_fill=False)

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._touch(set_index, way, access, is_fill=True)

    # -- warm-state protocol ------------------------------------------------------

    def checkpoint_tables(self) -> dict[str, object]:
        return {
            "isvms": [list(weights) for weights in self._isvms],
            "pchr": list(self._pchr),
            "sampler": self._sampler.checkpoint(),
            "friendly_fills": self.stat_friendly_fills,
            "averse_fills": self.stat_averse_fills,
        }

    def restore_tables(self, tables: dict[str, object]) -> None:
        isvms = tables["isvms"]
        if len(isvms) != ISVM_TABLE_SIZE:  # type: ignore[arg-type]
            raise ValueError(
                f"ISVM checkpoint has {len(isvms)} tables, "  # type: ignore[arg-type]
                f"expected {ISVM_TABLE_SIZE}"
            )
        for weights, recorded in zip(self._isvms, isvms):  # type: ignore[arg-type]
            weights[:] = recorded
        # Rebuild the PCHR and its incrementally-maintained slot caches
        # from scratch so they agree by construction.
        self._pchr = deque(tables["pchr"], maxlen=PCHR_LENGTH)  # type: ignore[arg-type]
        counts = [0] * ISVM_WEIGHTS
        for pc in self._pchr:
            counts[weight_index(pc)] += 1
        self._pchr_slot_counts = counts
        self._pchr_slots = tuple(s for s in range(ISVM_WEIGHTS) if counts[s])
        self._sampler.restore(tables["sampler"])  # type: ignore[arg-type]
        self.stat_friendly_fills = int(tables["friendly_fills"])  # type: ignore[arg-type]
        self.stat_averse_fills = int(tables["averse_fills"])  # type: ignore[arg-type]

    @property
    def optgen_hit_rate(self) -> float:
        """OPT hit rate reconstructed on the sampled sets."""
        return self._sampler.aggregate_opt_hit_rate()

    def snapshot_state(self) -> dict[str, object]:
        positive = negative = 0
        for weights in self._isvms:
            for weight in weights:
                if weight > 0:
                    positive += 1
                elif weight < 0:
                    negative += 1
        rrpv_hist = [0] * (HAWKEYE_RRPV_MAX + 1)
        for row in self._rrpv:
            for value in row:
                rrpv_hist[value] += 1
        return {
            "isvm_positive_weights": positive,
            "isvm_negative_weights": negative,
            "isvm_total_weights": ISVM_TABLE_SIZE * ISVM_WEIGHTS,
            "rrpv_histogram": rrpv_hist,
            "friendly_lines": sum(sum(row) for row in self._line_friendly),
            "pchr_depth": len(self._pchr),
            "pchr_distinct_slots": len(self._pchr_slots),
            "pchr_slot_counts": list(self._pchr_slot_counts),
            "friendly_fills": self.stat_friendly_fills,
            "averse_fills": self.stat_averse_fills,
            "optgen_hit_rate": self.optgen_hit_rate,
        }
