"""Re-Reference Interval Prediction policies (Jaleel et al., ISCA 2010).

SRRIP, BRRIP and the set-duelling hybrid DRRIP. Each cache line carries an
M-bit re-reference prediction value (RRPV); 0 means "re-referenced soon",
``2^M - 1`` means "re-referenced in the distant future". Victims are lines
with the maximum RRPV; if none exists, all RRPVs in the set are aged until
one does.

Constants follow the paper and the ChampSim reference implementation:
2-bit RRPVs, hit-priority (HP) promotion, BRRIP long-interval insertion
with probability 1/32, DRRIP with 10-bit PSEL and 32 leader sets per
component selected by the standard complement-select scheme.
"""

from __future__ import annotations

import numpy as np

from .base import PolicyAccess, ReplacementPolicy

#: Width of the re-reference prediction value in bits.
RRPV_BITS = 2
#: Maximum ("distant future") RRPV.
RRPV_MAX = (1 << RRPV_BITS) - 1
#: BRRIP inserts with long re-reference interval once every N fills.
BRRIP_LONG_PERIOD = 32


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion.

    Fills insert at ``RRPV_MAX - 1`` ("long"), hits promote to 0
    ("near-immediate"). This single change over LRU makes one-shot scans
    evictable before the resident working set — the scan-resistance that
    gives RRIP its wins on scan-heavy workloads.
    """

    name = "srrip"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        rrpv = self._rrpv[set_index]
        while True:
            for way in range(self.num_ways):
                if rrpv[way] == RRPV_MAX:
                    return way
            for way in range(self.num_ways):
                rrpv[way] += 1

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._rrpv[set_index][way] = self._insertion_rrpv(set_index, access)

    def _insertion_rrpv(self, set_index: int, access: PolicyAccess) -> int:
        return RRPV_MAX - 1

    def checkpoint_tables(self) -> dict[str, object]:
        # SRRIP's only state is per-line RRPVs, which the sampling
        # executor rebuilds through the fill path: protocol implemented,
        # nothing global to carry.
        return {}

    def restore_tables(self, tables: dict[str, object]) -> None:
        pass

    def snapshot_state(self) -> dict[str, object]:
        hist = [0] * (RRPV_MAX + 1)
        for row in self._rrpv:
            for value in row:
                hist[value] += 1
        return {"rrpv_histogram": hist}


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: inserts at distant RRPV, rarely at long.

    Most fills get ``RRPV_MAX`` so a thrashing working set keeps only a
    trickle of lines resident — the bimodal-insertion idea of BIP applied
    to RRPVs.
    """

    name = "brrip"

    def __init__(self, seed: int = 0xB1D) -> None:
        super().__init__()
        self._seed = seed

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._fill_count = 0

    def _insertion_rrpv(self, set_index: int, access: PolicyAccess) -> int:
        self._fill_count += 1
        if self._fill_count % BRRIP_LONG_PERIOD == 0:
            return RRPV_MAX - 1
        return RRPV_MAX

    def checkpoint_tables(self) -> dict[str, object]:
        tables = super().checkpoint_tables()
        tables["fill_count"] = self._fill_count
        return tables

    def restore_tables(self, tables: dict[str, object]) -> None:
        super().restore_tables(tables)
        self._fill_count = int(tables["fill_count"])  # type: ignore[arg-type]

    def snapshot_state(self) -> dict[str, object]:
        state = super().snapshot_state()
        state["fill_count"] = self._fill_count
        return state


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: set-duelling between SRRIP and BRRIP insertion.

    A small number of leader sets is statically dedicated to each
    component; misses in SRRIP leaders increment a saturating PSEL
    counter, misses in BRRIP leaders decrement it, and follower sets adopt
    whichever component's leaders are missing less. Leader selection uses
    the complement-select scheme from the original paper.
    """

    name = "drrip"

    PSEL_BITS = 10
    NUM_LEADER_BITS = 5  # 32 leader sets per component

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._psel_max = (1 << self.PSEL_BITS) - 1
        self._psel = self._psel_max // 2
        self._fill_count = 0
        self._leader = [self._classify_set(s, num_sets) for s in range(num_sets)]

    def _classify_set(self, set_index: int, num_sets: int) -> int:
        """Return +1 for SRRIP leaders, -1 for BRRIP leaders, 0 for followers.

        Complement-select: with ``k = NUM_LEADER_BITS``, a set leads SRRIP
        when its low-order k bits equal its next k bits, and leads BRRIP
        when they equal the bitwise complement of those bits. For caches
        with fewer than 2k index bits, fall back to a modulo scheme.
        """
        index_bits = max(1, (num_sets - 1).bit_length())
        k = self.NUM_LEADER_BITS
        if index_bits < 2 * k:
            if set_index % 32 == 0:
                return 1
            if set_index % 32 == 1:
                return -1
            return 0
        low = set_index & ((1 << k) - 1)
        high = (set_index >> k) & ((1 << k) - 1)
        if low == high:
            return 1
        if low == (~high & ((1 << k) - 1)):
            return -1
        return 0

    def record_demand_miss(self, set_index: int) -> None:
        """PSEL update: called by the cache on every demand miss."""
        role = self._leader[set_index]
        if role > 0 and self._psel < self._psel_max:
            self._psel += 1
        elif role < 0 and self._psel > 0:
            self._psel -= 1

    def _brrip_insertion(self) -> int:
        self._fill_count += 1
        if self._fill_count % BRRIP_LONG_PERIOD == 0:
            return RRPV_MAX - 1
        return RRPV_MAX

    def _insertion_rrpv(self, set_index: int, access: PolicyAccess) -> int:
        role = self._leader[set_index]
        if role > 0:
            return RRPV_MAX - 1  # SRRIP leader
        if role < 0:
            return self._brrip_insertion()  # BRRIP leader
        # Follower: low PSEL means SRRIP leaders miss less.
        if self._psel < (self._psel_max + 1) // 2:
            return RRPV_MAX - 1
        return self._brrip_insertion()

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        if not access.is_writeback and not access.is_prefetch:
            self.record_demand_miss(set_index)
        super().on_fill(set_index, way, access)

    def checkpoint_tables(self) -> dict[str, object]:
        tables = super().checkpoint_tables()
        tables["psel"] = self._psel
        tables["fill_count"] = self._fill_count
        return tables

    def restore_tables(self, tables: dict[str, object]) -> None:
        super().restore_tables(tables)
        self._psel = int(tables["psel"])  # type: ignore[arg-type]
        self._fill_count = int(tables["fill_count"])  # type: ignore[arg-type]

    def snapshot_state(self) -> dict[str, object]:
        state = super().snapshot_state()
        state["psel"] = self._psel
        state["psel_max"] = self._psel_max
        state["fill_count"] = self._fill_count
        # Below midpoint: followers insert like SRRIP (its leaders miss less).
        state["winning_component"] = (
            "srrip" if self._psel < (self._psel_max + 1) // 2 else "brrip"
        )
        return state
