"""Insertion-policy family: LIP, BIP and DIP (Qureshi et al., ISCA 2007).

The direct ancestors of the RRIP family, included as reference baselines:

* **LIP** — LRU Insertion Policy: new blocks insert at the *LRU*
  position instead of MRU, so a non-reused block is the next victim.
* **BIP** — Bimodal Insertion Policy: LIP, but once every
  ``BIP_EPSILON_PERIOD`` fills the block inserts at MRU, letting a slow
  trickle of a thrashing working set become resident.
* **DIP** — Dynamic Insertion Policy: set-duelling between classic LRU
  insertion and BIP with a saturating PSEL counter, exactly the
  mechanism DRRIP later applied to RRPVs.

All three preserve LRU's *promotion* (hits move to MRU) and differ only
in insertion, which is the historically important observation: insertion
position, not eviction choice, is where thrash-resistance comes from.
"""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy

#: BIP inserts at MRU once every this many fills.
BIP_EPSILON_PERIOD = 32


class LIPPolicy(ReplacementPolicy):
    """LRU Insertion Policy: insert at LRU, promote to MRU on hit."""

    name = "lip"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        stamps = self._stamp[set_index]
        victim = 0
        oldest = stamps[0]
        for way in range(1, self.num_ways):
            if stamps[way] < oldest:
                oldest = stamps[way]
                victim = way
        return victim

    def _mru_stamp(self) -> int:
        self._clock += 1
        return self._clock

    def _lru_stamp(self, set_index: int) -> int:
        # One tick older than the current LRU line, i.e. next victim.
        return min(self._stamp[set_index]) - 1

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._stamp[set_index][way] = self._mru_stamp()

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._stamp[set_index][way] = self._insertion_stamp(set_index, access)

    def _insertion_stamp(self, set_index: int, access: PolicyAccess) -> int:
        return self._lru_stamp(set_index)

    def snapshot_state(self) -> dict[str, object]:
        oldest = min(min(row) for row in self._stamp)
        return {"clock": self._clock, "oldest_stamp_age": self._clock - oldest}


class BIPPolicy(LIPPolicy):
    """Bimodal Insertion Policy: LIP with an epsilon of MRU insertions."""

    name = "bip"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._fill_count = 0

    def _insertion_stamp(self, set_index: int, access: PolicyAccess) -> int:
        self._fill_count += 1
        if self._fill_count % BIP_EPSILON_PERIOD == 0:
            return self._mru_stamp()
        return self._lru_stamp(set_index)

    def snapshot_state(self) -> dict[str, object]:
        state = super().snapshot_state()
        state["fill_count"] = self._fill_count
        return state


class DIPPolicy(BIPPolicy):
    """Dynamic Insertion Policy: set-duelling between LRU and BIP.

    Leader selection reuses DRRIP's complement-select scheme (via the
    same modulo fallback for small caches); misses in LRU leader sets
    increment PSEL, misses in BIP leaders decrement it, and followers
    insert like whichever component's leaders miss less.
    """

    name = "dip"

    PSEL_BITS = 10
    NUM_LEADER_BITS = 5

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._psel_max = (1 << self.PSEL_BITS) - 1
        self._psel = self._psel_max // 2
        self._leader = [self._classify_set(s, num_sets) for s in range(num_sets)]

    def _classify_set(self, set_index: int, num_sets: int) -> int:
        index_bits = max(1, (num_sets - 1).bit_length())
        k = self.NUM_LEADER_BITS
        if index_bits < 2 * k:
            if set_index % 32 == 0:
                return 1  # LRU leader
            if set_index % 32 == 1:
                return -1  # BIP leader
            return 0
        low = set_index & ((1 << k) - 1)
        high = (set_index >> k) & ((1 << k) - 1)
        if low == high:
            return 1
        if low == (~high & ((1 << k) - 1)):
            return -1
        return 0

    def record_demand_miss(self, set_index: int) -> None:
        """PSEL update on a demand miss in a leader set."""
        role = self._leader[set_index]
        if role > 0 and self._psel < self._psel_max:
            self._psel += 1
        elif role < 0 and self._psel > 0:
            self._psel -= 1

    def _insertion_stamp(self, set_index: int, access: PolicyAccess) -> int:
        role = self._leader[set_index]
        if role > 0:
            return self._mru_stamp()  # LRU-insertion leader
        if role < 0:
            return super()._insertion_stamp(set_index, access)  # BIP leader
        if self._psel < (self._psel_max + 1) // 2:
            return self._mru_stamp()
        return super()._insertion_stamp(set_index, access)

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        if not access.is_writeback and not access.is_prefetch:
            self.record_demand_miss(set_index)
        super().on_fill(set_index, way, access)

    def checkpoint_tables(self) -> dict[str, object]:
        # DIP implements the protocol directly (LIP/BIP stay excluded:
        # their only global state is the relabeling-invariant stamp
        # clock). The duel counter is the learned state worth carrying;
        # clock and fill phase ride along for exactness.
        return {
            "psel": self._psel,
            "fill_count": self._fill_count,
            "clock": self._clock,
        }

    def restore_tables(self, tables: dict[str, object]) -> None:
        self._psel = int(tables["psel"])  # type: ignore[arg-type]
        self._fill_count = int(tables["fill_count"])  # type: ignore[arg-type]
        # Never rewind: stamps handed out earlier must stay in the past.
        self._clock = max(self._clock, int(tables["clock"]))  # type: ignore[arg-type]

    def snapshot_state(self) -> dict[str, object]:
        state = super().snapshot_state()  # clock/stamp staleness + fill count
        state["psel"] = self._psel
        state["psel_max"] = self._psel_max
        # Below midpoint: followers insert at MRU (LRU leaders miss less).
        state["winning_component"] = (
            "lru" if self._psel < (self._psel_max + 1) // 2 else "bip"
        )
        return state
