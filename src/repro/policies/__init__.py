"""LLC replacement policies evaluated by the paper, plus references.

The six policies of Figure 3 — SRRIP, DRRIP, SHiP, Hawkeye, Glider,
MPPPB — against the LRU baseline, together with classic reference
policies (FIFO, Random, NRU, Tree-PLRU, MRU) and the offline Belady OPT
oracle used for headroom analysis.
"""

from .base import BYPASS, PolicyAccess, ReplacementPolicy
from .basic import FIFOPolicy, LRUPolicy, MRUPolicy, NRUPolicy, RandomPolicy, TreePLRUPolicy
from .belady import NEVER, BeladyPolicy, compute_next_use
from .dip import BIPPolicy, DIPPolicy, LIPPolicy
from .glider import GliderPolicy
from .hawkeye import HawkeyePolicy
from .mpppb import MPPPBPolicy
from .optgen import OptGen, SetSampler
from .registry import (
    BASELINE_POLICY,
    PAPER_POLICIES,
    available_policies,
    make_policy,
    register_policy,
)
from .rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from .ship import SHiPPolicy

__all__ = [
    "BYPASS",
    "NEVER",
    "BASELINE_POLICY",
    "PAPER_POLICIES",
    "PolicyAccess",
    "ReplacementPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "NRUPolicy",
    "TreePLRUPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "DIPPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "SHiPPolicy",
    "HawkeyePolicy",
    "GliderPolicy",
    "MPPPBPolicy",
    "BeladyPolicy",
    "OptGen",
    "SetSampler",
    "compute_next_use",
    "available_policies",
    "make_policy",
    "register_policy",
]
