"""OPTgen and the sampled-set infrastructure shared by Hawkeye and Glider.

OPTgen (Jain & Lin, ISCA 2016) reconstructs, online, the decisions
Belady's optimal policy *would have made* for a small sample of cache
sets. For each sampled set it keeps an occupancy ("liveness") vector over
a sliding window of time quanta (one quantum per access to the set). When
a block is re-referenced, OPT would have hit iff the occupancy in the
whole usage interval stayed below the set's capacity; in that case the
interval's occupancy is incremented to account for the line OPT would
have kept.

The verdicts train a PC-indexed predictor (Hawkeye) or an ISVM over PC
history (Glider).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Occupancy-vector length, in quanta. The reference implementation uses
#: 8x the associativity; 128 covers a 16-way set and works well for 11.
OPTGEN_VECTOR_SIZE = 128

#: Number of sampled sets trained on (matches the CRC2 reference).
NUM_SAMPLED_SETS = 64

#: Sampler entries kept per sampled set (8x a 16-way associativity).
SAMPLER_WAYS_FACTOR = 8


class OptGen:
    """Per-set OPT-decision reconstruction over a sliding window.

    ``capacity`` is the number of ways in the modelled set. Quanta wrap
    around :data:`OPTGEN_VECTOR_SIZE`; usage intervals longer than the
    window cannot be decided and are treated as OPT misses by the caller.
    """

    def __init__(self, capacity: int, vector_size: int = OPTGEN_VECTOR_SIZE) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.vector_size = vector_size
        self._liveness = [0] * vector_size
        self.num_accesses = 0  # absolute quanta count
        self.opt_hits = 0
        self.opt_misses = 0

    @property
    def current_quantum(self) -> int:
        """Absolute index of the next access's quantum."""
        return self.num_accesses

    def add_access(self) -> int:
        """Open a new quantum for an incoming access; returns its absolute index."""
        slot = self.num_accesses % self.vector_size
        self._liveness[slot] = 0
        quantum = self.num_accesses
        self.num_accesses += 1
        return quantum

    def in_window(self, last_quantum: int) -> bool:
        """Whether a previous quantum is still inside the sliding window."""
        return self.num_accesses - last_quantum < self.vector_size

    def should_cache(self, current_quantum: int, last_quantum: int) -> bool:
        """Decide whether OPT would have kept the block over the interval.

        Must be called with ``current_quantum`` freshly returned by
        :meth:`add_access` and ``last_quantum`` inside the window. On an
        OPT hit the interval occupancy is updated.
        """
        if not self.in_window(last_quantum):
            self.opt_misses += 1
            return False
        i = last_quantum % self.vector_size
        end = current_quantum % self.vector_size
        while i != end:
            if self._liveness[i] >= self.capacity:
                self.opt_misses += 1
                return False
            i = (i + 1) % self.vector_size
        i = last_quantum % self.vector_size
        while i != end:
            self._liveness[i] += 1
            i = (i + 1) % self.vector_size
        self.opt_hits += 1
        return True

    @property
    def hit_rate(self) -> float:
        """Fraction of decided usage intervals that were OPT hits."""
        total = self.opt_hits + self.opt_misses
        return self.opt_hits / total if total else 0.0

    def checkpoint(self) -> dict[str, Any]:
        """Deep copy of the sliding window and verdict counters."""
        return {
            "liveness": list(self._liveness),
            "num_accesses": self.num_accesses,
            "opt_hits": self.opt_hits,
            "opt_misses": self.opt_misses,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore :meth:`checkpoint` output (copying, never aliasing)."""
        liveness = state["liveness"]
        if len(liveness) != self.vector_size:
            raise ValueError(
                f"OPTgen checkpoint has vector size {len(liveness)}, "
                f"this instance uses {self.vector_size}"
            )
        self._liveness[:] = liveness
        self.num_accesses = int(state["num_accesses"])
        self.opt_hits = int(state["opt_hits"])
        self.opt_misses = int(state["opt_misses"])


@dataclass
class SamplerEntry:
    """Sampled-cache entry tracking the last access to one block."""

    block: int
    quantum: int
    pc: int
    context: Any = None  # policy-specific snapshot (e.g. Glider's PCHR)
    lru: int = 0


@dataclass
class SampledSet:
    """A sampled set: its OPTgen instance plus a small LRU sampler cache."""

    optgen: OptGen
    entries: dict[int, SamplerEntry] = field(default_factory=dict)
    max_entries: int = 0
    lru_clock: int = 0


class SetSampler:
    """Selects and manages the sampled sets for OPTgen training.

    Sets are sampled with a fixed stride so samples spread across the
    index space; each sampled set owns an :class:`OptGen` and a sampler
    cache of ``SAMPLER_WAYS_FACTOR x ways`` entries evicted in LRU order.
    """

    def __init__(self, num_sets: int, num_ways: int, num_sampled: int = NUM_SAMPLED_SETS) -> None:
        num_sampled = min(num_sampled, num_sets)
        stride = max(1, num_sets // num_sampled)
        self._sampled: dict[int, SampledSet] = {}
        for i in range(num_sampled):
            set_index = (i * stride) % num_sets
            self._sampled[set_index] = SampledSet(
                optgen=OptGen(capacity=num_ways),
                max_entries=SAMPLER_WAYS_FACTOR * num_ways,
            )

    def get(self, set_index: int) -> SampledSet | None:
        """The sampled-set record for ``set_index``, or None if unsampled."""
        return self._sampled.get(set_index)

    @property
    def sampled_sets(self) -> list[int]:
        """Indices of the sampled sets."""
        return sorted(self._sampled)

    def observe(
        self, set_index: int, block: int, pc: int, context: Any = None
    ) -> tuple[bool, SamplerEntry | None, SamplerEntry | None]:
        """Record an access to a sampled set and return the OPT verdict.

        Returns ``(decided, previous_entry, evicted_entry)``:

        * ``decided`` — True if the block had a previous access inside the
          window, in which case ``previous_entry`` carries the PC/context
          of that access and the caller should train with
          ``previous_entry.opt_hit`` (stored on the entry as ``context``
          consumers see fit — the OPT verdict itself is returned via the
          entry's ``quantum`` handling below).
        * ``evicted_entry`` — a sampler entry that fell out of the sampler
          cache (LRU), whose PC the caller may wish to detrain.

        The OPT verdict for a decided access is available as the
        ``opt_hit`` attribute set on ``previous_entry``.
        """
        sampled = self._sampled.get(set_index)
        if sampled is None:
            return False, None, None
        optgen = sampled.optgen
        quantum = optgen.add_access()
        sampled.lru_clock += 1

        previous = sampled.entries.get(block)
        decided = False
        if previous is not None:
            opt_hit = optgen.should_cache(quantum, previous.quantum)
            previous.opt_hit = opt_hit  # type: ignore[attr-defined]
            decided = True
            # Refresh the entry in place for the new access.
            prev_snapshot = SamplerEntry(
                block=previous.block,
                quantum=previous.quantum,
                pc=previous.pc,
                context=previous.context,
            )
            prev_snapshot.opt_hit = opt_hit  # type: ignore[attr-defined]
            previous.quantum = quantum
            previous.pc = pc
            previous.context = context
            previous.lru = sampled.lru_clock
            return decided, prev_snapshot, None

        evicted = None
        if len(sampled.entries) >= sampled.max_entries:
            lru_block = min(sampled.entries, key=lambda b: sampled.entries[b].lru)
            evicted = sampled.entries.pop(lru_block)
        sampled.entries[block] = SamplerEntry(
            block=block, quantum=quantum, pc=pc, context=context, lru=sampled.lru_clock
        )
        return False, None, evicted

    def checkpoint(self) -> dict[str, Any]:
        """Deep snapshot of every sampled set (OPTgen + sampler cache).

        Entries are recorded as ordered lists so :meth:`restore` rebuilds
        each sampler-cache dict with identical iteration order — LRU
        eviction ties (impossible while ``lru`` values stay unique, but
        cheap to keep exact) and repr stability then match the original.
        ``context`` values are shared, not copied: policies store
        immutable tuples there.
        """
        return {
            "sets": {
                set_index: {
                    "optgen": sampled.optgen.checkpoint(),
                    "lru_clock": sampled.lru_clock,
                    "entries": [
                        (entry.block, entry.quantum, entry.pc, entry.context, entry.lru)
                        for entry in sampled.entries.values()
                    ],
                }
                for set_index, sampled in self._sampled.items()
            }
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore :meth:`checkpoint` output into this sampler."""
        sets = state["sets"]
        if set(sets) != set(self._sampled):
            raise ValueError(
                "sampler checkpoint covers different sampled sets than "
                "this instance (geometry mismatch)"
            )
        for set_index, recorded in sets.items():
            sampled = self._sampled[set_index]
            sampled.optgen.restore(recorded["optgen"])
            sampled.lru_clock = int(recorded["lru_clock"])
            sampled.entries = {
                block: SamplerEntry(
                    block=block, quantum=quantum, pc=pc, context=context, lru=lru
                )
                for block, quantum, pc, context, lru in recorded["entries"]
            }

    def aggregate_opt_hit_rate(self) -> float:
        """OPTgen hit rate pooled over all sampled sets."""
        hits = sum(s.optgen.opt_hits for s in self._sampled.values())
        misses = sum(s.optgen.opt_misses for s in self._sampled.values())
        total = hits + misses
        return hits / total if total else 0.0
