"""Hardware-cost accounting for replacement policies.

The paper's conclusion contrasts the *benefit* of advanced policies on
big-data workloads with their "very high hardware complexity". This
module quantifies that complexity: per-line metadata bits plus global
table bits, per policy, for a given cache geometry — following the
storage budgets each policy's original paper reports (the Cache
Replacement Championship budget discipline).

The numbers are storage estimates for the structures *as implemented in
this library* (which follow the reference designs), not gate counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import UnknownPolicyError


@dataclass(frozen=True)
class HardwareBudget:
    """Storage cost of one policy at one cache geometry."""

    policy: str
    per_line_bits: float
    table_bits: int
    num_sets: int
    num_ways: int

    @property
    def line_storage_bits(self) -> float:
        """Total per-line metadata across the cache."""
        return self.per_line_bits * self.num_sets * self.num_ways

    @property
    def total_bits(self) -> float:
        """Per-line plus global-table storage."""
        return self.line_storage_bits + self.table_bits

    @property
    def total_kib(self) -> float:
        """Total storage in KiB."""
        return self.total_bits / 8 / 1024

    def overhead_vs(self, other: "HardwareBudget") -> float:
        """This policy's storage as a multiple of another's."""
        if other.total_bits == 0:
            return math.inf
        return self.total_bits / other.total_bits


def _sampler_bits(num_ways: int, num_sampled_sets: int = 64) -> int:
    """Storage of the Hawkeye/Glider sampled-set infrastructure.

    Per sampled set: an OPTgen occupancy vector (128 quanta x 4-bit
    counters) plus 8x-associativity sampler entries of (16-bit partial
    tag, 13-bit PC signature, 7-bit quantum, 3-bit LRU).
    """
    optgen = 128 * 4
    entries = 8 * num_ways * (16 + 13 + 7 + 3)
    return num_sampled_sets * (optgen + entries)


def estimate_budget(policy: str, num_sets: int, num_ways: int) -> HardwareBudget:
    """Storage budget of a registry policy at the given geometry."""
    name = policy.lower()
    rank_bits = math.ceil(math.log2(max(num_ways, 2)))

    per_line: float
    table = 0
    if name in ("lru", "mru"):
        per_line = rank_bits  # recency rank per line
    elif name == "fifo":
        per_line = 0.0
        table = num_sets * rank_bits  # one insertion pointer per set
    elif name == "random":
        per_line = 0.0
        table = 32  # an LFSR
    elif name == "nru":
        per_line = 1.0
    elif name == "plru":
        per_line = 0.0
        table = num_sets * (num_ways - 1)  # tree bits
    elif name in ("lip", "bip"):
        per_line = rank_bits
        table = 6 if name == "bip" else 0  # BIP's epsilon counter
    elif name == "dip":
        per_line = rank_bits
        table = 6 + 10  # epsilon counter + PSEL
    elif name == "srrip":
        per_line = 2.0
    elif name == "brrip":
        per_line = 2.0
        table = 6
    elif name == "drrip":
        per_line = 2.0
        table = 6 + 10
    elif name == "ship":
        per_line = 2.0 + 14 + 1  # RRPV + signature + outcome bit
        table = (1 << 14) * 2  # SHCT
    elif name == "hawkeye":
        per_line = 3.0 + 13 + 1  # RRPV + PC signature + friendly bit
        table = (1 << 13) * 3 + _sampler_bits(num_ways)
    elif name == "glider":
        per_line = 3.0 + 1  # RRPV + friendly bit (features live in the sampler)
        table = 2048 * 16 * 6 + 5 * 16 + _sampler_bits(num_ways)
    elif name == "mpppb":
        # dead bit + recency rank + sampled feature vector slots
        per_line = 1.0 + rank_bits + 7 * 8 / 8  # feature indices on sampled lines
        table = 7 * 256 * 6
    else:
        raise UnknownPolicyError(
            f"no hardware-budget model for policy {policy!r}"
        )
    return HardwareBudget(
        policy=name,
        per_line_bits=per_line,
        table_bits=table,
        num_sets=num_sets,
        num_ways=num_ways,
    )


def budget_table(
    policies: list[str], num_sets: int, num_ways: int
) -> list[HardwareBudget]:
    """Budgets for several policies at one geometry, input order."""
    return [estimate_budget(p, num_sets, num_ways) for p in policies]
