"""Hawkeye replacement (Jain & Lin, ISCA 2016).

Hawkeye learns from what Belady's OPT *would have done*: an online OPTgen
reconstruction over 64 sampled sets produces hit/miss verdicts for past
usage intervals, and those verdicts train a PC-indexed table of 3-bit
saturating counters. Loads whose PC the predictor deems "cache-friendly"
insert at RRPV 0 and are kept; "cache-averse" loads insert at RRPV 7 and
are evicted first. When no averse line exists the oldest friendly line is
evicted and its PC is detrained, bounding mispredictions.

This is a port of the CRC2 reference implementation with the same
structure sizes: 3-bit RRPVs, 8K-entry predictor with 3-bit counters,
64 sampled sets, 128-quanta OPTgen vectors.
"""

from __future__ import annotations

from ..trace.record import AccessKind
from .base import PolicyAccess, ReplacementPolicy
from .optgen import SetSampler

_KIND_WRITEBACK = int(AccessKind.WRITEBACK)

#: Hawkeye uses 3-bit RRPVs (unlike the RRIP family's 2-bit).
HAWKEYE_RRPV_MAX = 7

PREDICTOR_BITS = 13
PREDICTOR_SIZE = 1 << PREDICTOR_BITS
COUNTER_MAX = 7  # 3-bit saturating counters
FRIENDLY_THRESHOLD = (COUNTER_MAX + 1) // 2  # counter >= 4 => friendly


def predictor_index(pc: int) -> int:
    """Hash a PC into the predictor table (fold-and-mask)."""
    return (pc ^ (pc >> PREDICTOR_BITS) ^ (pc >> (2 * PREDICTOR_BITS))) & (
        PREDICTOR_SIZE - 1
    )


class HawkeyePolicy(ReplacementPolicy):
    """OPTgen-trained PC-based reuse prediction at the LLC."""

    name = "hawkeye"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rrpv = [[HAWKEYE_RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._line_friendly = [[False] * num_ways for _ in range(num_sets)]
        self._line_pc = [[0] * num_ways for _ in range(num_sets)]
        self._counters = [FRIENDLY_THRESHOLD] * PREDICTOR_SIZE  # weakly friendly
        self._sampler = SetSampler(num_sets, num_ways)
        self.stat_friendly_fills = 0
        self.stat_averse_fills = 0

    # -- predictor ------------------------------------------------------------

    def _predict_friendly(self, pc: int) -> bool:
        return self._counters[predictor_index(pc)] >= FRIENDLY_THRESHOLD

    def _train(self, pc: int, opt_hit: bool) -> None:
        idx = predictor_index(pc)
        if opt_hit:
            if self._counters[idx] < COUNTER_MAX:
                self._counters[idx] += 1
        elif self._counters[idx] > 0:
            self._counters[idx] -= 1

    def _detrain(self, pc: int) -> None:
        idx = predictor_index(pc)
        if self._counters[idx] > 0:
            self._counters[idx] -= 1

    # -- sampling -------------------------------------------------------------

    def _sample(self, set_index: int, access: PolicyAccess) -> None:
        if access.kind == _KIND_WRITEBACK:
            return  # writebacks are invisible to OPTgen, as in the reference
        decided, previous, evicted = self._sampler.observe(
            set_index, access.block, access.pc
        )
        if decided and previous is not None:
            self._train(previous.pc, previous.opt_hit)  # type: ignore[attr-defined]
        if evicted is not None:
            # The evicted sampler entry was never reused inside the window:
            # OPT would not have kept it, so detrain its PC.
            self._detrain(evicted.pc)

    # -- replacement hooks ------------------------------------------------------

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        rrpv = self._rrpv[set_index]
        for way in range(self.num_ways):
            if rrpv[way] == HAWKEYE_RRPV_MAX:
                return way
        # No cache-averse line: evict the oldest friendly line and detrain
        # its PC — the predictor said "keep", OPT-in-hindsight disagrees.
        victim = 0
        max_rrpv = rrpv[0]
        for way in range(1, self.num_ways):
            if rrpv[way] > max_rrpv:
                max_rrpv = rrpv[way]
                victim = way
        if self._line_friendly[set_index][victim]:
            self._detrain(self._line_pc[set_index][victim])
        return victim

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._sample(set_index, access)
        if access.kind == _KIND_WRITEBACK:
            return
        friendly = self._predict_friendly(access.pc)
        self._line_friendly[set_index][way] = friendly
        self._line_pc[set_index][way] = access.pc
        self._rrpv[set_index][way] = 0 if friendly else HAWKEYE_RRPV_MAX

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._sample(set_index, access)
        if access.kind == _KIND_WRITEBACK:
            # Writebacks carry no PC: insert averse so they leave quickly.
            self._line_friendly[set_index][way] = False
            self._line_pc[set_index][way] = 0
            self._rrpv[set_index][way] = HAWKEYE_RRPV_MAX
            return
        friendly = self._predict_friendly(access.pc)
        self._line_friendly[set_index][way] = friendly
        self._line_pc[set_index][way] = access.pc
        if friendly:
            self.stat_friendly_fills += 1
            # Age every other line so relative insertion order among
            # friendly lines is preserved (the reference's saturating age).
            rrpv = self._rrpv[set_index]
            for w in range(self.num_ways):
                if w != way and rrpv[w] < HAWKEYE_RRPV_MAX - 1:
                    rrpv[w] += 1
            rrpv[way] = 0
        else:
            self.stat_averse_fills += 1
            self._rrpv[set_index][way] = HAWKEYE_RRPV_MAX

    # -- warm-state protocol ------------------------------------------------------

    def checkpoint_tables(self) -> dict[str, object]:
        return {
            "counters": list(self._counters),
            "sampler": self._sampler.checkpoint(),
            "friendly_fills": self.stat_friendly_fills,
            "averse_fills": self.stat_averse_fills,
        }

    def restore_tables(self, tables: dict[str, object]) -> None:
        counters = tables["counters"]
        if len(counters) != PREDICTOR_SIZE:  # type: ignore[arg-type]
            raise ValueError(
                f"predictor checkpoint has {len(counters)} entries, "  # type: ignore[arg-type]
                f"expected {PREDICTOR_SIZE}"
            )
        self._counters[:] = counters  # type: ignore[assignment]
        self._sampler.restore(tables["sampler"])  # type: ignore[arg-type]
        self.stat_friendly_fills = int(tables["friendly_fills"])  # type: ignore[arg-type]
        self.stat_averse_fills = int(tables["averse_fills"])  # type: ignore[arg-type]

    # -- introspection -----------------------------------------------------------

    @property
    def optgen_hit_rate(self) -> float:
        """OPT hit rate reconstructed on the sampled sets."""
        return self._sampler.aggregate_opt_hit_rate()

    def snapshot_state(self) -> dict[str, object]:
        hist = [0] * (COUNTER_MAX + 1)
        for counter in self._counters:
            hist[counter] += 1
        rrpv_hist = [0] * (HAWKEYE_RRPV_MAX + 1)
        for row in self._rrpv:
            for value in row:
                rrpv_hist[value] += 1
        return {
            "predictor_histogram": hist,
            "predictor_friendly_fraction": (
                sum(hist[FRIENDLY_THRESHOLD:]) / PREDICTOR_SIZE
            ),
            "rrpv_histogram": rrpv_hist,
            "friendly_lines": sum(sum(row) for row in self._line_friendly),
            "friendly_fills": self.stat_friendly_fills,
            "averse_fills": self.stat_averse_fills,
            "optgen_hit_rate": self.optgen_hit_rate,
        }
