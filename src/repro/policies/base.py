"""Replacement-policy interface.

The interface mirrors ChampSim's replacement-policy hooks so that each
policy in :mod:`repro.policies` is a direct port of its reference
implementation:

* ``initialize`` — called once when the policy is attached to a cache
  (ChampSim: ``initialize_replacement``).
* ``find_victim`` — choose a way to evict for an incoming fill, or return
  :data:`BYPASS` to not cache the block at all (ChampSim allows this for
  the LLC; Hawkeye and MPPPB use it).
* ``on_hit`` / ``on_fill`` — update recency/prediction state (ChampSim
  folds both into ``update_replacement_state`` with a ``hit`` flag).
* ``on_eviction`` — notification that a victim left the cache, used by
  policies that train on eviction outcomes (SHiP, MPPPB).

Policies see the *block address* (byte address without the offset bits),
the PC of the triggering instruction, and the access kind. Writebacks
arriving from an upper cache level carry no meaningful PC, matching real
hardware; PC-based policies must tolerate ``pc == 0``.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

from ..trace.record import AccessKind

#: Sentinel returned by ``find_victim`` to request bypassing the fill.
BYPASS = -1


class PolicyAccess(NamedTuple):
    """The slice of an access visible to a replacement policy."""

    block: int  # block address (byte address >> block_bits)
    pc: int  # program counter, 0 for writebacks
    kind: int  # AccessKind value

    @property
    def is_prefetch(self) -> bool:
        """Whether this access is a prefetch fill."""
        return self.kind == AccessKind.PREFETCH

    @property
    def is_writeback(self) -> bool:
        """Whether this access is a writeback from an upper level."""
        return self.kind == AccessKind.WRITEBACK


class ReplacementPolicy(abc.ABC):
    """Abstract base class for cache replacement policies.

    Subclasses must set :attr:`name` (the registry identifier) and
    implement :meth:`find_victim`, :meth:`on_hit` and :meth:`on_fill`.
    State must be allocated in :meth:`initialize`, which receives the
    cache geometry; a policy instance is attached to exactly one cache.
    """

    #: Registry name, e.g. ``"srrip"``. Overridden per subclass.
    name: str = "base"

    #: Whether the policy may return :data:`BYPASS` from ``find_victim``.
    supports_bypass: bool = False

    def __init__(self) -> None:
        self.num_sets = 0
        self.num_ways = 0

    def initialize(self, num_sets: int, num_ways: int) -> None:
        """Allocate per-set/per-way state for a cache of this geometry."""
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def find_victim(
        self, set_index: int, access: PolicyAccess, tags: list[int]
    ) -> int:
        """Pick the way to evict in ``set_index`` for the incoming block.

        ``tags`` holds the current block addresses per way (``-1`` marks an
        invalid way); the cache fills invalid ways itself, so this is only
        called when the set is full. Returns a way index, or
        :data:`BYPASS` if :attr:`supports_bypass`.
        """

    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        """Update state after a hit on ``way``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        """Update state after filling the incoming block into ``way``."""

    def on_eviction(
        self, set_index: int, way: int, victim_block: int
    ) -> None:
        """Notification that ``victim_block`` was evicted from ``way``.

        Default: no-op; override in policies that learn from evictions.
        """

    def snapshot_state(self) -> dict[str, object]:
        """A JSON-serializable summary of the policy's internal state.

        Called by the telemetry collector (:mod:`repro.telemetry`) at
        interval boundaries, so it must be cheap relative to the interval
        length and must not mutate any state. Override to expose
        aggregate predictor/recency statistics (RRPV histograms, SHCT
        confidence, predictor counters); the default exposes nothing.
        """
        return {}

    # -- warm-state protocol (representative-interval sampling) ---------------
    #
    # Sampled simulation (:mod:`repro.sampling`) skips most of the trace,
    # so a policy's *global* predictor tables (SHCT, OPTgen samplers,
    # perceptron weights, duel counters) would otherwise be missing the
    # training history of the skipped regions. Policies that carry such
    # tables implement this pair; per-line metadata needs no hook — the
    # executor rebuilds it through the normal fill path. Policies whose
    # only global state is a relabeling-invariant recency clock are
    # listed in :data:`repro.policies.registry.WARM_STATE_EXCLUDED`
    # instead (the ``warm-state-protocol`` lint rule enforces that every
    # registered policy does one or the other).

    def checkpoint_tables(self) -> dict[str, object] | None:
        """Deep snapshot of the policy's global predictor tables.

        Returns a dict fully owned by the caller (no live aliases into
        policy state), or ``None`` when the policy does not implement
        the warm-state protocol. An empty dict means "implements the
        protocol, no global tables" (e.g. SRRIP, whose only state is
        per-line RRPVs).
        """
        return None

    def restore_tables(self, tables: dict[str, object]) -> None:
        """Restore global tables from :meth:`checkpoint_tables` output.

        Restores by copying values in (never by aliasing the checkpoint
        dict), so a checkpoint can be restored repeatedly. Monotonic
        clocks are restored with ``max(current, checkpointed)`` so time
        never runs backwards for per-line stamps allocated earlier.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not implement the warm-state "
            "checkpoint protocol"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(sets={self.num_sets}, ways={self.num_ways})"
