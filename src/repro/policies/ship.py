"""SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).

SHiP extends SRRIP with a Signature History Counter Table (SHCT) indexed
by a hashed PC signature. Each cache line remembers the signature that
filled it and an *outcome* bit recording whether it was ever re-referenced.
On eviction of a never-reused line the signature's counter is decremented;
on a hit it is incremented. Fills whose signature counter is zero insert
at distant RRPV (the line is predicted dead on arrival), everything else
inserts at long RRPV like SRRIP.

Constants follow the SHiP-mem configuration evaluated in the paper and
ChampSim's ``ship`` replacement: 14-bit signatures (16K-entry SHCT) and
2-bit saturating counters.
"""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .rrip import RRPV_MAX

SIGNATURE_BITS = 14
SHCT_SIZE = 1 << SIGNATURE_BITS
SHCT_MAX = 3  # 2-bit saturating counters


def pc_signature(pc: int) -> int:
    """Hash a PC into a 14-bit SHCT signature (fold-and-mask)."""
    return (pc ^ (pc >> SIGNATURE_BITS) ^ (pc >> (2 * SIGNATURE_BITS))) & (
        SHCT_SIZE - 1
    )


class SHiPPolicy(ReplacementPolicy):
    """SRRIP base policy plus the SHCT-driven insertion predictor."""

    name = "ship"

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._line_sig = [[0] * num_ways for _ in range(num_sets)]
        self._line_reused = [[False] * num_ways for _ in range(num_sets)]
        self._line_valid = [[False] * num_ways for _ in range(num_sets)]
        self._shct = [SHCT_MAX // 2 + 1] * SHCT_SIZE  # weakly reusable start

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        rrpv = self._rrpv[set_index]
        while True:
            for way in range(self.num_ways):
                if rrpv[way] == RRPV_MAX:
                    return way
            for way in range(self.num_ways):
                rrpv[way] += 1

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        if access.is_writeback:
            # Writeback touches carry no PC and are invisible to the
            # predictor in the ChampSim reference: neither promote the
            # line nor train the SHCT on them.
            return
        self._rrpv[set_index][way] = 0
        if self._line_valid[set_index][way] and not self._line_reused[set_index][way]:
            self._line_reused[set_index][way] = True
            sig = self._line_sig[set_index][way]
            if self._shct[sig] < SHCT_MAX:
                self._shct[sig] += 1

    def on_eviction(self, set_index: int, way: int, victim_block: int) -> None:
        if self._line_valid[set_index][way] and not self._line_reused[set_index][way]:
            sig = self._line_sig[set_index][way]
            if self._shct[sig] > 0:
                self._shct[sig] -= 1
        self._line_valid[set_index][way] = False

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        sig = pc_signature(access.pc)
        self._line_sig[set_index][way] = sig
        self._line_reused[set_index][way] = False
        self._line_valid[set_index][way] = True
        if access.is_writeback:
            # Writebacks carry no PC; insert at distant RRPV, as in the
            # ChampSim reference, so they cannot pollute the SHCT.
            self._rrpv[set_index][way] = RRPV_MAX
            self._line_valid[set_index][way] = False
            return
        if self._shct[sig] == 0:
            self._rrpv[set_index][way] = RRPV_MAX
        else:
            self._rrpv[set_index][way] = RRPV_MAX - 1

    def checkpoint_tables(self) -> dict[str, object]:
        return {"shct": list(self._shct)}

    def restore_tables(self, tables: dict[str, object]) -> None:
        shct = tables["shct"]
        if len(shct) != SHCT_SIZE:  # type: ignore[arg-type]
            raise ValueError(
                f"SHCT checkpoint has {len(shct)} entries, expected {SHCT_SIZE}"  # type: ignore[arg-type]
            )
        self._shct[:] = shct  # type: ignore[assignment]

    def snapshot_state(self) -> dict[str, object]:
        shct_hist = [0] * (SHCT_MAX + 1)
        for counter in self._shct:
            shct_hist[counter] += 1
        rrpv_hist = [0] * (RRPV_MAX + 1)
        for row in self._rrpv:
            for value in row:
                rrpv_hist[value] += 1
        tracked = sum(sum(row) for row in self._line_valid)
        reused = sum(
            1
            for vrow, rrow in zip(self._line_valid, self._line_reused)
            for valid, hit in zip(vrow, rrow)
            if valid and hit
        )
        return {
            "shct_histogram": shct_hist,
            # Signatures predicted dead-on-arrival (counter saturated at 0).
            "shct_dead_fraction": shct_hist[0] / SHCT_SIZE,
            "rrpv_histogram": rrpv_hist,
            "tracked_lines": tracked,
            "tracked_reused_lines": reused,
        }
