"""Belady's OPT — the offline optimal replacement oracle.

OPT evicts the line whose next use lies farthest in the future. It is not
implementable in hardware but gives the headroom bound the paper's E4
experiment reports: if even OPT barely beats LRU on a workload, no
replacement policy can help.

Because OPT needs the future, it runs in a two-pass harness
(:func:`repro.core.oracle.simulate_with_opt`): pass 1 records the exact
access stream reaching the LLC (which is independent of the LLC's own
policy in a non-inclusive hierarchy), pass 2 replays the simulation with
this policy armed with the precomputed next-use indices.

The policy checks, on every event, that the stream it sees matches the
recorded one — a mismatch means the harness invariant broke, and raises
:class:`~repro.errors.SimulationError` instead of silently mis-seeking.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .base import BYPASS, PolicyAccess, ReplacementPolicy

#: Next-use index meaning "never used again".
NEVER = np.iinfo(np.int64).max


def compute_next_use(blocks: np.ndarray) -> np.ndarray:
    """For each position i, the next index j > i with ``blocks[j] == blocks[i]``.

    Positions with no later use get :data:`NEVER`. O(n) via a last-seen map
    walked backwards.
    """
    n = len(blocks)
    next_use = np.full(n, NEVER, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        block = int(blocks[i])
        nxt = last_seen.get(block)
        if nxt is not None:
            next_use[i] = nxt
        last_seen[block] = i
    return next_use


class BeladyPolicy(ReplacementPolicy):
    """Offline OPT over a pre-recorded LLC access stream.

    Parameters
    ----------
    blocks:
        The block-address stream the LLC will observe, in order.
    allow_bypass:
        If True (default), an incoming block whose next use is farther
        than every resident line's is not cached at all — true Belady MIN
        for a non-inclusive cache. With False, OPT is restricted to
        replacement decisions only.
    """

    name = "opt"
    supports_bypass = True

    def __init__(self, blocks: np.ndarray, allow_bypass: bool = True) -> None:
        super().__init__()
        self._blocks = np.asarray(blocks, dtype=np.uint64)
        self._next_use = compute_next_use(self._blocks)
        self._allow_bypass = allow_bypass
        self._idx = 0

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._line_next = [[NEVER] * num_ways for _ in range(num_sets)]
        self._idx = 0

    def _check_stream(self, access: PolicyAccess) -> None:
        if self._idx >= len(self._blocks):
            raise SimulationError(
                "OPT oracle exhausted its recorded stream: the replay saw "
                f"more than {len(self._blocks)} LLC accesses"
            )
        expected = int(self._blocks[self._idx])
        if expected != access.block:
            raise SimulationError(
                f"OPT oracle stream mismatch at access {self._idx}: "
                f"recorded block {expected:#x}, replay saw {access.block:#x}"
            )

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        self._check_stream(access)
        incoming_next = int(self._next_use[self._idx])
        line_next = self._line_next[set_index]
        victim = 0
        farthest = line_next[0]
        for way in range(1, self.num_ways):
            if line_next[way] > farthest:
                farthest = line_next[way]
                victim = way
        if self._allow_bypass and incoming_next > farthest and not access.is_writeback:
            self._idx += 1  # this access consumes its stream slot here
            return BYPASS
        return victim

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._check_stream(access)
        self._line_next[set_index][way] = int(self._next_use[self._idx])
        self._idx += 1

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._check_stream(access)
        self._line_next[set_index][way] = int(self._next_use[self._idx])
        self._idx += 1

    @property
    def position(self) -> int:
        """How many LLC accesses the oracle has consumed."""
        return self._idx

    def snapshot_state(self) -> dict[str, object]:
        known = sum(
            1 for row in self._line_next for nxt in row if nxt != NEVER
        )
        return {"stream_position": self.position, "lines_with_future_use": known}
