"""MPPPB: Multiperspective Placement, Promotion and Bypass
(Jiménez & Teran, MICRO 2017 — "Multiperspective Reuse Prediction").

MPPPB predicts, on every LLC touch, whether the block will be reused
before eviction, by summing small integer weights drawn from several
feature tables ("perspectives"): hashes of the triggering PC at several
shifts, a fold of recent PC history, the block's page number and its
offset within the page. A high sum means "dead": dead-on-arrival fills
are bypassed, dead-on-touch lines become preferred victims; otherwise the
underlying recency order (LRU stamps) decides.

Training is perceptron-style with a margin: sampled sets remember the
feature vector of each line's last touch; a hit trains toward "live", an
eviction without reuse trains toward "dead", and weights only move when
the prediction was wrong or under-confident.

This port keeps the paper's architecture (multiple orthogonal
perspectives, margin training, sampled training sets, bypass + placement)
with a reduced feature set of 7 perspectives sized to the LLC modelled
here; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

from collections import deque

from ..trace.record import AccessKind
from .base import BYPASS, PolicyAccess, ReplacementPolicy

_KIND_WRITEBACK = int(AccessKind.WRITEBACK)

TABLE_BITS = 8
TABLE_SIZE = 1 << TABLE_BITS
WEIGHT_MIN, WEIGHT_MAX = -32, 31

#: Prediction sum at or above this bypasses the fill entirely.
THETA_BYPASS = 10
#: Prediction sum at or above this marks the line dead (preferred victim).
THETA_DEAD = 4
#: Margin for perceptron training.
THETA_TRAIN = 8

#: Every Nth set is a training set (the paper samples ~1/32 of sets).
SAMPLE_STRIDE = 8

NUM_FEATURES = 7
PC_HISTORY_LENGTH = 4


def _mask(value: int) -> int:
    return value & (TABLE_SIZE - 1)


class MPPPBPolicy(ReplacementPolicy):
    """Multiperspective perceptron reuse predictor with bypass."""

    name = "mpppb"
    supports_bypass = True

    def initialize(self, num_sets: int, num_ways: int) -> None:
        super().initialize(num_sets, num_ways)
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0
        self._line_dead = [[False] * num_ways for _ in range(num_sets)]
        self._line_features = [[None] * num_ways for _ in range(num_sets)]
        self._line_reused = [[True] * num_ways for _ in range(num_sets)]
        self._weights = [[0] * TABLE_SIZE for _ in range(NUM_FEATURES)]
        self._pc_history: deque[int] = deque(maxlen=PC_HISTORY_LENGTH)
        self.stat_bypasses = 0
        self.stat_fills = 0

    # -- features ---------------------------------------------------------------

    def _features(self, access: PolicyAccess) -> tuple[int, ...]:
        """Compute the 7 perspective indices for this access."""
        mask = TABLE_SIZE - 1
        pc = access.pc
        block = access.block
        history_fold = 0
        for i, h in enumerate(self._pc_history):
            history_fold ^= h >> (i + 1)
        page = block >> 6  # 4 KiB page of a 64 B block
        return (
            pc & mask,
            (pc >> 4) & mask,
            (pc >> 8) & mask,
            (pc ^ (pc >> TABLE_BITS)) & mask,
            history_fold & mask,
            (page ^ (page >> TABLE_BITS)) & mask,
            block & mask,  # offset bits within the page + low page bits
        )

    def _sum(self, features: tuple[int, ...]) -> int:
        w = self._weights
        f0, f1, f2, f3, f4, f5, f6 = features
        return (
            w[0][f0] + w[1][f1] + w[2][f2] + w[3][f3]
            + w[4][f4] + w[5][f5] + w[6][f6]
        )

    def _train(self, features: tuple[int, ...], dead: bool) -> None:
        """Perceptron update toward ``dead`` (+1) or live (-1), with margin."""
        total = self._sum(features)
        if dead and total < THETA_TRAIN:
            for i, f in enumerate(features):
                if self._weights[i][f] < WEIGHT_MAX:
                    self._weights[i][f] += 1
        elif not dead and total > -THETA_TRAIN:
            for i, f in enumerate(features):
                if self._weights[i][f] > WEIGHT_MIN:
                    self._weights[i][f] -= 1

    def _is_sampled(self, set_index: int) -> bool:
        return set_index % SAMPLE_STRIDE == 0

    # -- replacement hooks ----------------------------------------------------------

    def find_victim(self, set_index: int, access: PolicyAccess, tags: list[int]) -> int:
        # Bypass dead-on-arrival demand fills (never bypass writebacks: the
        # block must land somewhere to preserve its dirty data).
        if access.kind != _KIND_WRITEBACK:
            features = self._features(access)
            if self._sum(features) >= THETA_BYPASS:
                self.stat_bypasses += 1
                return BYPASS
        # Prefer a predicted-dead line; fall back to LRU.
        dead = self._line_dead[set_index]
        stamps = self._stamp[set_index]
        victim = -1
        oldest = None
        for way in range(self.num_ways):
            if dead[way] and (oldest is None or stamps[way] < oldest):
                victim = way
                oldest = stamps[way]
        if victim >= 0:
            return victim
        victim = 0
        oldest = stamps[0]
        for way in range(1, self.num_ways):
            if stamps[way] < oldest:
                oldest = stamps[way]
                victim = way
        return victim

    def _touch(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self._clock += 1
        self._stamp[set_index][way] = self._clock
        if access.kind == _KIND_WRITEBACK:
            self._line_dead[set_index][way] = True
            self._line_features[set_index][way] = None
            self._line_reused[set_index][way] = True
            return
        features = self._features(access)
        self._line_dead[set_index][way] = self._sum(features) >= THETA_DEAD
        if self._is_sampled(set_index):
            self._line_features[set_index][way] = features
        self._pc_history.append(access.pc)

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        if self._is_sampled(set_index):
            prior = self._line_features[set_index][way]
            if prior is not None:
                self._train(prior, dead=False)  # the line was reused: live
        self._line_reused[set_index][way] = True
        self._touch(set_index, way, access)

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self.stat_fills += 1
        self._line_reused[set_index][way] = False
        self._touch(set_index, way, access)

    def on_eviction(self, set_index: int, way: int, victim_block: int) -> None:
        if self._is_sampled(set_index):
            prior = self._line_features[set_index][way]
            if prior is not None and not self._line_reused[set_index][way]:
                self._train(prior, dead=True)  # evicted untouched: dead
        self._line_features[set_index][way] = None

    # -- warm-state protocol ------------------------------------------------------

    def checkpoint_tables(self) -> dict[str, object]:
        return {
            "weights": [list(table) for table in self._weights],
            "pc_history": list(self._pc_history),
            "clock": self._clock,
            "bypasses": self.stat_bypasses,
            "fills": self.stat_fills,
        }

    def restore_tables(self, tables: dict[str, object]) -> None:
        weights = tables["weights"]
        if len(weights) != NUM_FEATURES:  # type: ignore[arg-type]
            raise ValueError(
                f"weight checkpoint has {len(weights)} tables, "  # type: ignore[arg-type]
                f"expected {NUM_FEATURES}"
            )
        for table, recorded in zip(self._weights, weights):  # type: ignore[arg-type]
            table[:] = recorded
        self._pc_history = deque(
            tables["pc_history"], maxlen=PC_HISTORY_LENGTH  # type: ignore[arg-type]
        )
        # Never rewind: stamps handed out earlier must stay in the past.
        self._clock = max(self._clock, int(tables["clock"]))  # type: ignore[arg-type]
        self.stat_bypasses = int(tables["bypasses"])  # type: ignore[arg-type]
        self.stat_fills = int(tables["fills"])  # type: ignore[arg-type]

    @property
    def bypass_rate(self) -> float:
        """Fraction of fill attempts that were bypassed."""
        total = self.stat_fills + self.stat_bypasses
        return self.stat_bypasses / total if total else 0.0

    def snapshot_state(self) -> dict[str, object]:
        positive = negative = 0
        for table in self._weights:
            for weight in table:
                if weight > 0:
                    positive += 1
                elif weight < 0:
                    negative += 1
        oldest = min(min(row) for row in self._stamp)
        return {
            "weight_positive": positive,
            "weight_negative": negative,
            "weight_total": NUM_FEATURES * TABLE_SIZE,
            "clock": self._clock,
            "oldest_stamp_age": self._clock - oldest,
            "dead_lines": sum(sum(row) for row in self._line_dead),
            "reused_lines": sum(sum(row) for row in self._line_reused),
            "pc_history_depth": len(self._pc_history),
            "bypasses": self.stat_bypasses,
            "fills": self.stat_fills,
            "bypass_rate": self.bypass_rate,
        }
