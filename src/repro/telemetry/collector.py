"""Opt-in, zero-overhead-when-off run instrumentation.

The :class:`TelemetryCollector` observes a simulation from the outside:
the driver (:func:`repro.core.simulator.simulate`) runs its normal hot
loop when telemetry is off (no collector object exists, so the disabled
path is *identical* to the uninstrumented one), and an instrumented
variant when a collector is armed. The collector

* snapshots every cumulative counter (core, per-level cache stats, DRAM)
  at instruction-interval boundaries and records the integer *deltas*,
  so the interval series sums back to the aggregate result bit-exactly;
* attaches a lightweight :class:`CacheTap` to the LLC that counts
  per-set evictions and feeds an online 3C :class:`MissClassifier`
  (one ``is None`` test on the cache hot path when detached — the same
  cost model as the invariant sanitizer);
* captures :meth:`~repro.policies.base.ReplacementPolicy.snapshot_state`
  at each boundary, making RRIP RRPV distributions, SHiP SHCT confidence
  and Hawkeye/Glider predictor state inspectable mid-run.

Telemetry is pure observation: it never mutates simulator state, so an
instrumented run produces bit-identical ``SimulationResult`` counters to
an uninstrumented one (plus the profile riding in ``result.info``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from ..trace.record import AccessKind
from .profile import IntervalSample, PolicySnapshot, TelemetryProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cpu import CoreModel
    from ..mem.hierarchy import CacheHierarchy

#: Access kinds that count as demand for the miss classifier.
_DEMAND_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.IFETCH)


@dataclass(frozen=True)
class TelemetryConfig:
    """What to record and how often.

    The configuration is part of the sweep engine's cache key (two runs
    with different telemetry settings produce different ``result.info``),
    so it must serialize canonically — :meth:`to_json_dict`.
    """

    #: Interval length in committed instructions.
    interval_instructions: int = 10_000
    #: Record per-set LLC eviction counts + occupancy histograms.
    per_set: bool = True
    #: Run the online 3C classifier over LLC demand accesses.
    classify_misses: bool = True
    #: Capture ``Policy.snapshot_state()`` at each interval boundary.
    policy_snapshots: bool = True

    def __post_init__(self) -> None:
        if self.interval_instructions <= 0:
            raise ConfigurationError(
                f"interval_instructions must be positive, got {self.interval_instructions}"
            )

    def to_json_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form (cache keys and profile embedding)."""
        return asdict(self)


class MissClassifier:
    """Online 3C classification of one level's demand stream.

    Tracks every block ever demanded (compulsory detection) and models a
    fully-associative LRU cache of the same capacity with an ordered
    dict (capacity-vs-conflict split): a set-associative miss that the
    fully-associative model would have hit is a conflict miss; one it
    would also miss, on a previously-seen block, is a capacity miss.

    The classifier observes only the measured window (it is attached
    after warm-up), so "compulsory" means *first touch within the
    measured window* — see docs/telemetry.md.
    """

    __slots__ = ("capacity_blocks", "compulsory", "capacity", "conflict",
                 "demand_accesses", "demand_hits", "_fa", "_seen")

    def __init__(self, capacity_blocks: int) -> None:
        self.capacity_blocks = capacity_blocks
        self.compulsory = 0
        self.capacity = 0
        self.conflict = 0
        self.demand_accesses = 0
        self.demand_hits = 0
        self._fa: OrderedDict[int, None] = OrderedDict()
        self._seen: set[int] = set()

    def observe(self, block: int, sa_hit: bool) -> None:
        """Feed one demand access (block address, set-associative outcome)."""
        self.demand_accesses += 1
        fa = self._fa
        fa_hit = block in fa
        if fa_hit:
            fa.move_to_end(block)
        else:
            fa[block] = None
            if len(fa) > self.capacity_blocks:
                fa.popitem(last=False)
        new = block not in self._seen
        if new:
            self._seen.add(block)
        if sa_hit:
            self.demand_hits += 1
            return
        if new:
            self.compulsory += 1
        elif fa_hit:
            self.conflict += 1
        else:
            self.capacity += 1

    def counts(self) -> dict[str, int]:
        """The classification as a plain dict (profile embedding)."""
        return {
            "compulsory": self.compulsory,
            "capacity": self.capacity,
            "conflict": self.conflict,
            "demand_accesses": self.demand_accesses,
            "demand_hits": self.demand_hits,
        }


class CacheTap:
    """Per-cache telemetry sink consulted from the cache hot path.

    The cache pays one ``is None`` test per operation when no tap is
    attached; with a tap attached the callbacks are a few integer
    operations. Kind filtering happens here, not in the cache, to keep
    the disabled path free of extra branches.
    """

    __slots__ = ("evictions_per_set", "classifier")

    def __init__(self, num_sets: int, classifier: MissClassifier | None = None) -> None:
        self.evictions_per_set = [0] * num_sets
        self.classifier = classifier

    def on_access(self, block: int, kind: int, hit: bool) -> None:
        """Called by :meth:`Cache.access` for every probe."""
        if self.classifier is not None and kind in _DEMAND_KINDS:
            self.classifier.observe(block, hit)

    def on_eviction(self, set_index: int) -> None:
        """Called by :meth:`Cache.fill` when a valid victim is evicted."""
        self.evictions_per_set[set_index] += 1


class TelemetryCollector:
    """Samples one simulation run into a :class:`TelemetryProfile`.

    Lifecycle (driven by :func:`repro.core.simulator.simulate`):
    ``attach()`` after the warm-up statistics reset, ``begin(core)``
    before the measured loop (returns the first boundary),
    ``on_boundary(core)`` whenever the committed instruction count
    crosses it (returns the next boundary), and ``finalize(core)`` after
    the core drains — which closes the final partial interval and
    detaches the tap. ``profile()`` then freezes everything recorded.
    """

    def __init__(self, config: TelemetryConfig, hierarchy: "CacheHierarchy") -> None:
        self.config = config
        self.hierarchy = hierarchy
        llc = hierarchy.llc
        classifier = None
        if config.classify_misses:
            classifier = MissClassifier(llc.num_sets * llc.num_ways)
        self._classifier = classifier
        self._tap = CacheTap(llc.num_sets, classifier)
        self._samples: list[IntervalSample] = []
        self._snapshots: list[PolicySnapshot] = []
        self._last: dict[str, Any] | None = None

    # -- lifecycle ------------------------------------------------------------

    def attach(self) -> None:
        """Arm the LLC tap (call after the warm-up statistics reset)."""
        if self.config.per_set or self.config.classify_misses:
            self.hierarchy.attach_telemetry({"LLC": self._tap})

    def begin(self, core: "CoreModel") -> int:
        """Snapshot the measurement-window origin; returns the first boundary."""
        self._last = self._cumulative(core)
        return core.instructions + self.config.interval_instructions

    def on_boundary(self, core: "CoreModel") -> int:
        """Close the current interval; returns the next boundary."""
        self._close_interval(core)
        interval = self.config.interval_instructions
        # Re-align so one long-gap access cannot spawn empty intervals.
        return (core.instructions // interval + 1) * interval

    def finalize(self, core: "CoreModel") -> None:
        """Close the final partial interval and detach from the caches."""
        assert self._last is not None, "finalize() before begin()"
        if core.instructions > self._last["instructions"] or not self._samples:
            self._close_interval(core)
        self.hierarchy.attach_telemetry({"LLC": None})

    # -- sampling -------------------------------------------------------------

    def _cumulative(self, core: "CoreModel") -> dict[str, Any]:
        """Snapshot every cumulative counter the interval series derives from."""
        dram = self.hierarchy.dram.stats
        return {
            "instructions": core.instructions,
            "cycles": core.cycle,
            "levels": {
                name: (cache.stats.demand_accesses, cache.stats.demand_hits)
                for name, cache in self.hierarchy.caches.items()
            },
            "dram_reads": dram.reads,
            "dram_writes": dram.writes,
        }

    def _close_interval(self, core: "CoreModel") -> None:
        assert self._last is not None, "interval close before begin()"
        now = self._cumulative(core)
        last = self._last
        occupancy = None
        if self.config.per_set:
            llc = self.hierarchy.llc
            occupancy = [0] * (llc.num_ways + 1)
            for count in llc.set_occupancies():
                occupancy[count] += 1
        self._samples.append(
            IntervalSample(
                end_instructions=now["instructions"],
                end_cycles=now["cycles"],
                instructions=now["instructions"] - last["instructions"],
                cycles=now["cycles"] - last["cycles"],
                levels={
                    name: {
                        "demand_accesses": now["levels"][name][0] - last["levels"][name][0],
                        "demand_hits": now["levels"][name][1] - last["levels"][name][1],
                    }
                    for name in now["levels"]
                },
                dram_reads=now["dram_reads"] - last["dram_reads"],
                dram_writes=now["dram_writes"] - last["dram_writes"],
                llc_occupancy=occupancy,
            )
        )
        if self.config.policy_snapshots:
            self._snapshots.append(
                PolicySnapshot(
                    end_instructions=now["instructions"],
                    state=self.hierarchy.llc.policy.snapshot_state(),
                )
            )
        self._last = now

    # -- output ---------------------------------------------------------------

    def profile(self, workload: str, policy: str) -> TelemetryProfile:
        """Freeze everything recorded into a :class:`TelemetryProfile`."""
        return TelemetryProfile(
            workload=workload,
            policy=policy,
            interval_instructions=self.config.interval_instructions,
            intervals=list(self._samples),
            miss_classes=self._classifier.counts() if self._classifier else {},
            llc_evictions_per_set=(
                list(self._tap.evictions_per_set) if self.config.per_set else []
            ),
            policy_snapshots=list(self._snapshots),
            config=self.config.to_json_dict(),
        )
