"""The versioned telemetry profile: what one instrumented run recorded.

A :class:`TelemetryProfile` is the plain-data output of a run with
telemetry armed (:mod:`repro.telemetry.collector`): a per-interval time
series of the machine's counters, the LLC's per-set eviction pressure
and occupancy histograms, an online 3C miss classification, and the
policy-state snapshots taken at each interval boundary.

Every interval stores *integer deltas* of the underlying counters (plus
the cumulative instruction/cycle stamps at the interval's end), so the
series sums back to the run's aggregate counters **bit-exactly** —
:meth:`TelemetryProfile.validate_totals` checks exactly that against a
:class:`~repro.core.results.SimulationResult`. Profiles serialize to a
schema-versioned JSON document that rides inside ``result.info`` and
therefore flows unchanged through the result round-trip and the sweep
engine's on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SimulationError

#: Version of the JSON document produced by
#: :meth:`TelemetryProfile.to_json_dict`. Bump on any incompatible field
#: change; :meth:`TelemetryProfile.from_json_dict` refuses mismatches.
PROFILE_SCHEMA_VERSION = 1

#: The 3C miss classes, in reporting order.
MISS_CLASSES = ("compulsory", "capacity", "conflict")


@dataclass(frozen=True)
class IntervalSample:
    """Counter deltas over one measurement interval.

    ``end_instructions``/``end_cycles`` are cumulative stamps (measured
    window origin); everything else is the exact integer delta of the
    corresponding aggregate counter over the interval, so summing a
    field across all samples reproduces the run total bit-exactly.
    """

    end_instructions: int
    end_cycles: float
    instructions: int
    cycles: float
    #: Per-level ``{"demand_accesses": d, "demand_hits": d}`` deltas.
    levels: dict[str, dict[str, int]]
    dram_reads: int
    dram_writes: int
    #: LLC occupancy histogram at the interval's end: entry ``k`` counts
    #: sets holding exactly ``k`` valid lines (None when per-set
    #: telemetry is disabled).
    llc_occupancy: list[int] | None = None

    @property
    def ipc(self) -> float:
        """Instructions per cycle over this interval."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def demand_misses(self, level: str) -> int:
        """Demand misses at ``level`` during this interval."""
        counters = self.levels[level]
        return counters["demand_accesses"] - counters["demand_hits"]

    def mpki(self, level: str) -> float:
        """Demand MPKI at ``level`` over this interval."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses(level) / self.instructions

    def hit_rate(self, level: str) -> float:
        """Demand hit rate at ``level`` over this interval."""
        counters = self.levels[level]
        if counters["demand_accesses"] == 0:
            return 0.0
        return counters["demand_hits"] / counters["demand_accesses"]

    def to_json_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "end_instructions": self.end_instructions,
            "end_cycles": self.end_cycles,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "levels": {name: dict(c) for name, c in self.levels.items()},
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
        }
        if self.llc_occupancy is not None:
            doc["llc_occupancy"] = list(self.llc_occupancy)
        return doc

    @classmethod
    def from_json_dict(cls, doc: dict[str, Any]) -> "IntervalSample":
        return cls(
            end_instructions=doc["end_instructions"],
            end_cycles=doc["end_cycles"],
            instructions=doc["instructions"],
            cycles=doc["cycles"],
            levels={name: dict(c) for name, c in doc["levels"].items()},
            dram_reads=doc["dram_reads"],
            dram_writes=doc["dram_writes"],
            llc_occupancy=doc.get("llc_occupancy"),
        )


@dataclass(frozen=True)
class PolicySnapshot:
    """One :meth:`~repro.policies.base.ReplacementPolicy.snapshot_state`
    capture, stamped with the instruction count it was taken at."""

    end_instructions: int
    state: dict[str, Any]

    def to_json_dict(self) -> dict[str, Any]:
        return {"end_instructions": self.end_instructions, "state": dict(self.state)}

    @classmethod
    def from_json_dict(cls, doc: dict[str, Any]) -> "PolicySnapshot":
        return cls(end_instructions=doc["end_instructions"], state=dict(doc["state"]))


@dataclass(frozen=True)
class TelemetryProfile:
    """Everything one telemetry-armed run observed (measured window only)."""

    workload: str
    policy: str
    interval_instructions: int
    intervals: list[IntervalSample]
    #: Online 3C classification of LLC demand misses (empty when miss
    #: classification is disabled).
    miss_classes: dict[str, int] = field(default_factory=dict)
    #: Cumulative evictions per LLC set over the measured window (empty
    #: when per-set telemetry is disabled).
    llc_evictions_per_set: list[int] = field(default_factory=list)
    #: Policy snapshots taken at interval boundaries (empty when policy
    #: snapshots are disabled).
    policy_snapshots: list[PolicySnapshot] = field(default_factory=list)
    #: The telemetry configuration that produced this profile.
    config: dict[str, Any] = field(default_factory=dict)

    # -- series accessors -----------------------------------------------------

    @property
    def instructions(self) -> int:
        """Total measured instructions (sum of interval deltas)."""
        return sum(s.instructions for s in self.intervals)

    def total(self, level: str, counter: str) -> int:
        """Sum one per-level counter across all intervals."""
        return sum(s.levels[level][counter] for s in self.intervals)

    def total_demand_misses(self, level: str) -> int:
        """Total demand misses at ``level`` (sum of interval deltas)."""
        return sum(s.demand_misses(level) for s in self.intervals)

    def ipc_series(self) -> list[float]:
        """Per-interval IPC."""
        return [s.ipc for s in self.intervals]

    def mpki_series(self, level: str) -> list[float]:
        """Per-interval demand MPKI at one level."""
        return [s.mpki(level) for s in self.intervals]

    @property
    def eviction_skew(self) -> float:
        """Max-over-mean eviction pressure across LLC sets (1.0 = even)."""
        if not self.llc_evictions_per_set:
            return 0.0
        mean = sum(self.llc_evictions_per_set) / len(self.llc_evictions_per_set)
        return max(self.llc_evictions_per_set) / mean if mean else 0.0

    def hottest_sets(self, n: int = 5) -> list[tuple[int, int]]:
        """The ``n`` LLC sets with the most evictions: (set, count)."""
        ranked = sorted(
            enumerate(self.llc_evictions_per_set), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]

    # -- validation -----------------------------------------------------------

    def validate_totals(self, result: Any) -> list[str]:
        """Check bit-exact consistency against a finished result.

        Every interval series must sum back to the corresponding
        aggregate counter of the :class:`SimulationResult` the profile
        was recorded alongside. Returns a list of human-readable
        mismatch descriptions (empty = consistent).
        """
        problems: list[str] = []

        def expect(label: str, got: int, want: int) -> None:
            if got != want:
                problems.append(f"{label}: interval sum {got} != aggregate {want}")

        expect("instructions", self.instructions, result.instructions)
        for name, stats in result.levels.items():
            if not self.intervals or name not in self.intervals[0].levels:
                continue
            expect(
                f"{name}.demand_accesses",
                self.total(name, "demand_accesses"),
                stats.demand_accesses,
            )
            expect(
                f"{name}.demand_hits", self.total(name, "demand_hits"), stats.demand_hits
            )
            expect(
                f"{name}.demand_misses",
                self.total_demand_misses(name),
                stats.demand_misses,
            )
        expect("dram_reads", sum(s.dram_reads for s in self.intervals), result.dram_reads)
        expect(
            "dram_writes", sum(s.dram_writes for s in self.intervals), result.dram_writes
        )
        if self.llc_evictions_per_set:
            expect(
                "LLC.evictions",
                sum(self.llc_evictions_per_set),
                result.levels["LLC"].evictions,
            )
        if self.miss_classes:
            expect(
                "LLC 3C classes",
                sum(self.miss_classes.get(c, 0) for c in MISS_CLASSES),
                result.levels["LLC"].demand_misses,
            )
        return problems

    # -- serialization --------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """This profile as a schema-versioned JSON-serializable dict."""
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "workload": self.workload,
            "policy": self.policy,
            "interval_instructions": self.interval_instructions,
            "intervals": [s.to_json_dict() for s in self.intervals],
            "miss_classes": dict(self.miss_classes),
            "llc_evictions_per_set": list(self.llc_evictions_per_set),
            "policy_snapshots": [s.to_json_dict() for s in self.policy_snapshots],
            "config": dict(self.config),
        }

    @classmethod
    def from_json_dict(cls, doc: dict[str, Any]) -> "TelemetryProfile":
        """Rebuild a profile from :meth:`to_json_dict` output."""
        version = doc.get("schema_version")
        if version != PROFILE_SCHEMA_VERSION:
            raise SimulationError(
                f"telemetry profile has schema_version={version!r}, "
                f"this build reads {PROFILE_SCHEMA_VERSION}"
            )
        return cls(
            workload=doc["workload"],
            policy=doc["policy"],
            interval_instructions=doc["interval_instructions"],
            intervals=[IntervalSample.from_json_dict(s) for s in doc["intervals"]],
            miss_classes=dict(doc.get("miss_classes", {})),
            llc_evictions_per_set=list(doc.get("llc_evictions_per_set", [])),
            policy_snapshots=[
                PolicySnapshot.from_json_dict(s) for s in doc.get("policy_snapshots", [])
            ],
            config=dict(doc.get("config", {})),
        )

    @classmethod
    def from_result(cls, result: Any) -> "TelemetryProfile":
        """Extract the profile embedded in ``result.info['telemetry']``.

        Raises :class:`SimulationError` when the run was not telemetry-
        armed (the key is absent).
        """
        doc = result.info.get("telemetry")
        if doc is None:
            raise SimulationError(
                "result carries no telemetry profile; pass telemetry=... to simulate()"
            )
        return cls.from_json_dict(doc)
