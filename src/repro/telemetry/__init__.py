"""Opt-in, interval-resolved simulator observability.

Pass a :class:`TelemetryConfig` to :func:`repro.core.simulator.simulate`
(or ``run_matrix``/the sweep engine/``repro profile``) to record a
:class:`TelemetryProfile`: per-interval IPC / MPKI / hit-rate / DRAM
series, per-set LLC eviction and occupancy histograms, an online 3C miss
classification, and mid-run policy-state snapshots. When no config is
passed, none of this code runs — the simulator's hot path is unchanged.
"""

from .collector import CacheTap, MissClassifier, TelemetryCollector, TelemetryConfig
from .profile import (
    MISS_CLASSES,
    PROFILE_SCHEMA_VERSION,
    IntervalSample,
    PolicySnapshot,
    TelemetryProfile,
)

__all__ = [
    "MISS_CLASSES",
    "PROFILE_SCHEMA_VERSION",
    "CacheTap",
    "IntervalSample",
    "MissClassifier",
    "PolicySnapshot",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryProfile",
]
