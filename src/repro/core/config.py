"""Machine configuration.

The default :func:`cascade_lake` configuration reproduces the paper's
Table I / Section I-C setup: one Cascade Lake core with 32 KB L1I and
L1D, a 1 MB L2, a 1.375 MB LLC slice, and 8 GB of DDR4-2933.

Configurations are plain frozen dataclasses validated at construction;
use :func:`dataclasses.replace` to derive variants (the LLC-size
sensitivity experiment does exactly that).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from ..errors import ConfigurationError
from ..mem.dram import DRAMConfig

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    num_ways: int
    hit_latency: int
    block_bits: int = 6

    def __post_init__(self) -> None:
        block = 1 << self.block_bits
        if self.size_bytes <= 0 or self.num_ways <= 0 or self.hit_latency < 0:
            raise ConfigurationError(f"{self.name}: invalid cache parameters")
        if self.size_bytes % (block * self.num_ways):
            raise ConfigurationError(
                f"{self.name}: {self.size_bytes} B is not sets*ways*{block}"
            )
        sets = self.size_bytes // (block * self.num_ways)
        if sets & (sets - 1):
            raise ConfigurationError(
                f"{self.name}: set count {sets} is not a power of two"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the geometry."""
        return self.size_bytes // ((1 << self.block_bits) * self.num_ways)


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of the simplified out-of-order core model."""

    frequency_ghz: float = 4.0
    dispatch_width: int = 4
    rob_size: int = 224  # Skylake/Cascade Lake reorder buffer
    max_outstanding_misses: int = 16  # L1D MSHRs

    def __post_init__(self) -> None:
        if self.dispatch_width < 1 or self.rob_size < 1:
            raise ConfigurationError("core width and ROB must be >= 1")
        if self.max_outstanding_misses < 1:
            raise ConfigurationError("MSHR count must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine: core + caches + DRAM."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * KIB, 8, hit_latency=4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * KIB, 8, hit_latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2C", 1 * MIB, 16, hit_latency=14)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 1408 * KIB, 11, hit_latency=24)
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def with_llc_scale(self, factor: int) -> "MachineConfig":
        """A variant with the LLC scaled by an integer factor (same ways)."""
        if factor < 1:
            raise ConfigurationError(f"LLC scale factor must be >= 1, got {factor}")
        llc = replace(self.llc, size_bytes=self.llc.size_bytes * factor)
        return replace(self, llc=llc)

    def to_json_dict(self) -> dict:
        """Every machine parameter as a nested plain dict.

        This is the canonical form the sweep engine hashes into cache
        keys: two configs with equal parameters serialize identically,
        regardless of how they were constructed.
        """
        return asdict(self)

    def describe(self) -> list[tuple[str, str]]:
        """Human-readable (component, description) rows — the paper's Table I."""
        return [
            (
                "Core",
                f"1 core, {self.core.frequency_ghz:.1f} GHz, "
                f"{self.core.dispatch_width}-wide, {self.core.rob_size}-entry ROB",
            ),
            ("L1I", _cache_row(self.l1i)),
            ("L1D", _cache_row(self.l1d)),
            ("L2", _cache_row(self.l2)),
            ("LLC", _cache_row(self.llc)),
            (
                "DRAM",
                f"DDR4, {self.dram.channels} channel(s), "
                f"{self.dram.banks_per_channel} banks, "
                f"{self.dram.row_bytes} B rows",
            ),
        ]


def _cache_row(cfg: CacheConfig) -> str:
    size = (
        f"{cfg.size_bytes // MIB} MiB"
        if cfg.size_bytes % MIB == 0
        else f"{cfg.size_bytes / MIB:.3f} MiB"
        if cfg.size_bytes >= MIB
        else f"{cfg.size_bytes // KIB} KiB"
    )
    return (
        f"{size}, {cfg.num_ways}-way, {cfg.num_sets} sets, "
        f"{1 << cfg.block_bits} B blocks, {cfg.hit_latency}-cycle hit"
    )


def cascade_lake() -> MachineConfig:
    """The paper's simulated machine (Section I-C)."""
    return MachineConfig()


def small_test_machine() -> MachineConfig:
    """A tiny machine for fast unit tests: 4 KB L1s, 16 KB L2, 32 KB LLC."""
    return MachineConfig(
        l1i=CacheConfig("L1I", 4 * KIB, 4, hit_latency=2),
        l1d=CacheConfig("L1D", 4 * KIB, 4, hit_latency=2),
        l2=CacheConfig("L2C", 16 * KIB, 8, hit_latency=8),
        llc=CacheConfig("LLC", 32 * KIB, 8, hit_latency=16),
    )
