"""Two-pass harness for Belady's OPT at the LLC.

OPT needs the future. In a non-inclusive hierarchy the stream of accesses
arriving at the LLC is determined entirely by the levels above it — the
LLC's own replacement decisions never change *which* blocks the L2
requests or writes back. That invariant makes an exact offline oracle
possible:

1. **Record pass** — simulate normally (any LLC policy; LRU is used) with
   a recording wrapper that logs the block address of every LLC access,
   in order.
2. **Replay pass** — recompute next-use indices over the recorded stream
   and re-simulate with :class:`~repro.policies.belady.BeladyPolicy`,
   which follows the stream and always evicts the line used farthest in
   the future.

:class:`~repro.policies.belady.BeladyPolicy` verifies the replay stream
matches the recording access-by-access, so a violation of the invariant
(e.g. a future hierarchy change that makes L2 behaviour depend on the
LLC) fails loudly instead of corrupting results.
"""

from __future__ import annotations

import numpy as np

from ..mem.prefetcher import Prefetcher
from ..policies.base import PolicyAccess
from ..policies.basic import LRUPolicy
from ..policies.belady import BeladyPolicy
from ..trace.trace import Trace
from .config import MachineConfig, cascade_lake
from .results import SimulationResult
from .simulator import DEFAULT_WARMUP_FRACTION, build_hierarchy, simulate


class RecordingLRUPolicy(LRUPolicy):
    """LRU that also logs the block address of every LLC access."""

    name = "lru+record"

    def __init__(self) -> None:
        super().__init__()
        self.recorded: list[int] = []

    def on_hit(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self.recorded.append(access.block)
        super().on_hit(set_index, way, access)

    def on_fill(self, set_index: int, way: int, access: PolicyAccess) -> None:
        self.recorded.append(access.block)
        super().on_fill(set_index, way, access)

    def snapshot_state(self) -> dict[str, object]:
        state = super().snapshot_state()
        state["recorded_accesses"] = len(self.recorded)
        return state


def record_llc_stream(
    trace: Trace,
    config: MachineConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    l2_prefetcher: Prefetcher | None = None,
) -> tuple[np.ndarray, SimulationResult]:
    """Run the record pass; returns (LLC block stream, the LRU result).

    The returned result is a normal LRU simulation of ``trace`` and can
    serve directly as the baseline for OPT-headroom comparisons.
    """
    if config is None:
        config = cascade_lake()
    recorder = RecordingLRUPolicy()
    hierarchy = build_hierarchy(config, recorder, l2_prefetcher)
    result = simulate(
        trace,
        config=config,
        warmup_fraction=warmup_fraction,
        hierarchy=hierarchy,
    )
    stream = np.array(recorder.recorded, dtype=np.uint64)
    return stream, result


def simulate_with_opt(
    trace: Trace,
    config: MachineConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    allow_bypass: bool = True,
    l2_prefetcher: Prefetcher | None = None,
) -> tuple[SimulationResult, SimulationResult]:
    """Simulate ``trace`` under Belady's OPT at the LLC.

    Returns ``(opt_result, lru_result)`` — the oracle run and the LRU
    baseline produced as a by-product of the record pass.
    """
    if config is None:
        config = cascade_lake()
    stream, lru_result = record_llc_stream(
        trace, config, warmup_fraction, l2_prefetcher
    )
    oracle = BeladyPolicy(stream, allow_bypass=allow_bypass)
    hierarchy = build_hierarchy(config, oracle, l2_prefetcher)
    opt_result = simulate(
        trace,
        config=config,
        warmup_fraction=warmup_fraction,
        hierarchy=hierarchy,
    )
    return opt_result, lru_result
