"""The simulation driver.

:func:`simulate` is the library's main entry point: it builds a machine
from a :class:`~repro.core.config.MachineConfig`, attaches the requested
LLC replacement policy, streams a trace through the core + hierarchy with
a ChampSim-style warm-up phase, and returns a frozen
:class:`~repro.core.results.SimulationResult`.

Warm-up runs the first fraction of the trace with all structures live but
statistics discarded, so measured MPKI/IPC reflect steady-state behaviour
rather than cold caches — the same methodology ChampSim uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..mem.cache import Cache, CacheStats
from ..mem.dram import DRAM, DRAMStats
from ..mem.fastpath import FastMachine, fastpath_eligible
from ..mem.hierarchy import CacheHierarchy, HierarchyStats
from ..mem.prefetcher import Prefetcher
from ..policies.base import ReplacementPolicy
from ..policies.registry import make_policy
from ..telemetry.collector import TelemetryCollector, TelemetryConfig
from ..trace.trace import Trace
from .config import CacheConfig, MachineConfig, cascade_lake
from .cpu import CoreModel
from .results import SimulationResult, snapshot_result

if TYPE_CHECKING:
    from ..sampling.spec import SamplingSpec

#: Default fraction of the trace used to warm the hierarchy.
DEFAULT_WARMUP_FRACTION = 0.2


def _build_cache(cfg: CacheConfig, policy: ReplacementPolicy) -> Cache:
    return Cache(
        name=cfg.name,
        size_bytes=cfg.size_bytes,
        num_ways=cfg.num_ways,
        policy=policy,
        hit_latency=cfg.hit_latency,
        block_bits=cfg.block_bits,
    )


def build_hierarchy(
    config: MachineConfig,
    llc_policy: ReplacementPolicy | str = "lru",
    l2_prefetcher: Prefetcher | None = None,
    inclusive: bool = False,
) -> CacheHierarchy:
    """Construct the cache hierarchy for ``config``.

    L1s and L2 always run LRU (the paper varies only the LLC policy);
    ``llc_policy`` may be a registry name or an unattached policy
    instance. ``inclusive`` switches the default NINE hierarchy to an
    inclusive LLC (back-invalidating evictions).
    """
    if isinstance(llc_policy, str):
        llc_policy = make_policy(llc_policy)
    return CacheHierarchy(
        l1i=_build_cache(config.l1i, make_policy("lru")),
        l1d=_build_cache(config.l1d, make_policy("lru")),
        l2=_build_cache(config.l2, make_policy("lru")),
        llc=_build_cache(config.llc, llc_policy),
        dram=DRAM(config.dram),
        l2_prefetcher=l2_prefetcher,
        inclusive=inclusive,
    )


def _reset_statistics(hierarchy: CacheHierarchy, boundary_cycle: int) -> None:
    """Discard warm-up statistics, keeping all cache/policy state.

    ``boundary_cycle`` is the warm-up core's final cycle. The measured
    core restarts at cycle 0, so the DRAM bank clocks are rebased to the
    same origin — otherwise the banks' ``next_free`` timestamps (still
    expressed on the warm-up clock) would charge the first measured DRAM
    reads the entire warm-up duration as spurious queue wait.
    """
    for cache in hierarchy.caches.values():
        cache.stats = CacheStats()
    hierarchy.dram.rebase(boundary_cycle)
    hierarchy.dram.stats = DRAMStats()
    hierarchy.stats = HierarchyStats()


def _run_accesses(
    hierarchy: CacheHierarchy, core: CoreModel, trace: Trace, start: int, stop: int
) -> None:
    """The hot loop: stream records [start, stop) through the machine."""
    # .tolist() converts to plain Python ints once, which is far faster
    # than per-element numpy scalar conversion inside the loop.
    addrs = trace.addrs[start:stop].tolist()
    pcs = trace.pcs[start:stop].tolist()
    kinds = trace.kinds[start:stop].tolist()
    gaps = trace.gaps[start:stop].tolist()
    access = hierarchy.access
    step = core.step
    for addr, pc, kind, gap in zip(addrs, pcs, kinds, gaps):
        latency, _ = access(addr, pc, kind, int(core.cycle))
        step(gap, kind, latency)


def _run_accesses_telemetry(
    hierarchy: CacheHierarchy,
    core: CoreModel,
    trace: Trace,
    start: int,
    stop: int,
    collector: TelemetryCollector,
) -> None:
    """Instrumented variant of :func:`_run_accesses`.

    Kept separate so the telemetry-off hot loop is byte-identical to the
    uninstrumented one; the only additions here are a boundary compare
    per record and an interval close whenever it trips.
    """
    addrs = trace.addrs[start:stop].tolist()
    pcs = trace.pcs[start:stop].tolist()
    kinds = trace.kinds[start:stop].tolist()
    gaps = trace.gaps[start:stop].tolist()
    access = hierarchy.access
    step = core.step
    boundary = collector.begin(core)
    for addr, pc, kind, gap in zip(addrs, pcs, kinds, gaps):
        latency, _ = access(addr, pc, kind, int(core.cycle))
        step(gap, kind, latency)
        if core.instructions >= boundary:
            boundary = collector.on_boundary(core)


def simulate(
    trace: Trace,
    config: MachineConfig | None = None,
    llc_policy: ReplacementPolicy | str = "lru",
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    l2_prefetcher: Prefetcher | None = None,
    hierarchy: CacheHierarchy | None = None,
    sanitize: bool = False,
    telemetry: TelemetryConfig | None = None,
    engine: str = "fast",
    sampling: SamplingSpec | None = None,
) -> SimulationResult:
    """Simulate ``trace`` on a machine and return measured statistics.

    Parameters
    ----------
    trace:
        The memory-access trace to run.
    config:
        Machine description; defaults to the paper's Cascade Lake setup.
    llc_policy:
        LLC replacement policy — a registry name (``"lru"``, ``"hawkeye"``,
        ...) or a policy instance.
    warmup_fraction:
        Leading fraction of the trace whose statistics are discarded.
    l2_prefetcher:
        Optional prefetcher attached at the L2 (default: none, as in the
        paper's headline experiments).
    hierarchy:
        Pre-built hierarchy to reuse (the OPT oracle harness passes one);
        overrides ``config``/``llc_policy``/``l2_prefetcher``.
    sanitize:
        Arm the runtime invariant sanitizer
        (:mod:`repro.lint.sanitize`) on every cache level. Violations
        raise :class:`~repro.lint.sanitize.SanitizerError`; the number
        of checks executed lands in ``result.info["sanitizer_checks"]``.
    telemetry:
        Arm interval-resolved observability (:mod:`repro.telemetry`) on
        the measured window. The recorded
        :class:`~repro.telemetry.profile.TelemetryProfile` lands in
        ``result.info["telemetry"]`` as a versioned JSON document; with
        the default ``None``, no telemetry code runs at all.
    engine:
        ``"fast"`` (default) routes eligible runs through the optimized
        execution path (:mod:`repro.mem.fastpath`), falling back to the
        reference hot loop for configurations it does not model;
        ``"reference"`` always runs the original four-call chain. Both
        engines produce bit-identical :class:`SimulationResult` values
        (``repro verify-fastpath`` proves this), so ``engine`` is
        deliberately *not* recorded in ``result.info``.
    sampling:
        Run under representative-interval sampling
        (:mod:`repro.sampling`) instead of simulating every access: the
        trace is windowed, clustered, and only weighted representative
        intervals are simulated, the per-interval results recombined
        into a full-run *estimate*. Sampled results carry the spec and
        executed plan in ``result.info`` and are subject to the error
        budget gated in CI (docs/sampling.md). Incompatible with
        ``telemetry``, ``sanitize``, ``l2_prefetcher`` and a pre-built
        ``hierarchy`` — those paths need every access.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    if engine not in ("fast", "reference"):
        raise ConfigurationError(
            f'engine must be "fast" or "reference", got {engine!r}'
        )
    if sampling is not None:
        if telemetry is not None:
            raise ConfigurationError(
                "sampling and telemetry are mutually exclusive: interval "
                "telemetry needs the full measured region"
            )
        if sanitize:
            raise ConfigurationError(
                "sampling and sanitize are mutually exclusive: the "
                "sanitizer checks invariants over every access"
            )
        if l2_prefetcher is not None or hierarchy is not None:
            raise ConfigurationError(
                "sampling does not support a prefetcher or a pre-built "
                "hierarchy; pass config/llc_policy instead"
            )
        from ..sampling.executor import simulate_sampled

        return simulate_sampled(
            trace,
            config=config,
            llc_policy=llc_policy,
            warmup_fraction=warmup_fraction,
            sampling=sampling,
            engine=engine,
        )
    if config is None:
        config = cascade_lake()
    if hierarchy is None:
        hierarchy = build_hierarchy(config, llc_policy, l2_prefetcher)
    sanitizers = None
    if sanitize:
        from ..lint.sanitize import attach_sanitizers

        sanitizers = attach_sanitizers(hierarchy)
    policy_name = hierarchy.llc.policy.name

    warmup_end = int(len(trace) * warmup_fraction)

    fast: FastMachine | None = None
    if engine == "fast" and fastpath_eligible(hierarchy, trace):
        fast = FastMachine(hierarchy)

    warmup_core = CoreModel(config.core)
    if fast is not None:
        fast.run(warmup_core, trace, 0, warmup_end)
    else:
        _run_accesses(hierarchy, warmup_core, trace, 0, warmup_end)
    warmup_core.drain()
    _reset_statistics(hierarchy, int(warmup_core.cycle))
    if fast is not None:
        fast.reset_counters()

    core = CoreModel(config.core)
    if telemetry is None:
        collector = None
        if fast is not None:
            fast.run(core, trace, warmup_end, len(trace))
        else:
            _run_accesses(hierarchy, core, trace, warmup_end, len(trace))
    else:
        collector = TelemetryCollector(telemetry, hierarchy)
        collector.attach()
        if fast is not None:
            fast.run_with_telemetry(core, trace, warmup_end, len(trace), collector)
        else:
            _run_accesses_telemetry(
                hierarchy, core, trace, warmup_end, len(trace), collector
            )
    core_stats = core.drain()
    if collector is not None:
        collector.finalize(core)
    if fast is not None:
        fast.checkin()

    info = {
        "warmup_accesses": warmup_end,
        "measured_accesses": len(trace) - warmup_end,
        **trace.info,
    }
    if sanitizers is not None:
        info["sanitizer_checks"] = sanitizers.total_checks
        info["sanitizer_evictions_verified"] = sanitizers.evictions_verified
    if collector is not None:
        info["telemetry"] = collector.profile(trace.name, policy_name).to_json_dict()
    return snapshot_result(
        workload=trace.name,
        policy=policy_name,
        hierarchy=hierarchy,
        core_stats=core_stats,
        info=info,
    )
