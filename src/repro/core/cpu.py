"""Simplified out-of-order core timing model.

A full cycle-accurate OoO pipeline is not needed to rank replacement
policies — what matters is that memory latency translates into stall
cycles in a way that respects instruction-level and memory-level
parallelism. This model captures the three first-order effects:

* The front end retires ``dispatch_width`` instructions per cycle when
  nothing blocks.
* A load miss occupies a reorder-buffer slot until its data returns; the
  core can run ahead at most ``rob_size`` instructions past the oldest
  incomplete load, so long-latency misses stall the window exactly when a
  real ROB would fill ("ROB-occupancy" / interval analysis model).
* At most ``max_outstanding_misses`` loads can be in flight (L1D MSHRs),
  bounding memory-level parallelism.

Stores retire through a write buffer and never stall the window (they
still occupy DRAM banks through the hierarchy). The result is a
deterministic cycle count, hence IPC, per (trace, hierarchy) pair.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..trace.record import AccessKind
from .config import CoreConfig


@dataclass
class CoreStats:
    """Cycle-accounting output of one run through the core model."""

    instructions: int = 0
    cycles: float = 0.0
    load_accesses: int = 0
    total_load_latency: int = 0
    rob_stall_cycles: float = 0.0
    mshr_stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mean_load_latency(self) -> float:
        """Average load latency observed, in cycles."""
        if self.load_accesses == 0:
            return 0.0
        return self.total_load_latency / self.load_accesses


class CoreModel:
    """ROB-occupancy timing model; drive with :meth:`step`, then :meth:`drain`."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._cycle = 0.0
        self._instr = 0
        # (instruction position, completion cycle) of incomplete loads.
        self._inflight: deque[tuple[int, float]] = deque()
        self.stats = CoreStats()

    @property
    def cycle(self) -> float:
        """Current front-end cycle."""
        return self._cycle

    @property
    def instructions(self) -> int:
        """Instructions retired so far."""
        return self._instr

    def _retire_older_than(self, instr_horizon: int) -> None:
        """Stall until loads older than the ROB horizon complete."""
        while self._inflight and self._inflight[0][0] < instr_horizon:
            _, done = self._inflight.popleft()
            if done > self._cycle:
                self.stats.rob_stall_cycles += done - self._cycle
                self._cycle = done

    def step(self, gap: int, kind: int, latency: int) -> None:
        """Advance by one trace record.

        ``gap`` instructions retire (the memory access itself included),
        then the access's ``latency`` is accounted according to its kind.
        """
        width = self.config.dispatch_width
        self._instr += gap
        self._cycle += gap / width

        # ROB limit: the front end cannot be more than rob_size
        # instructions past the oldest incomplete load.
        self._retire_older_than(self._instr - self.config.rob_size)

        if kind == AccessKind.LOAD or kind == AccessKind.IFETCH:
            # MSHR limit: wait for a free miss slot.
            if len(self._inflight) >= self.config.max_outstanding_misses:
                _, done = self._inflight.popleft()
                if done > self._cycle:
                    self.stats.mshr_stall_cycles += done - self._cycle
                    self._cycle = done
            self.stats.load_accesses += 1
            self.stats.total_load_latency += latency
            self._inflight.append((self._instr, self._cycle + latency))
        # Stores: write-buffered, no window stall.

    def drain(self) -> CoreStats:
        """Wait for all in-flight loads and return the final statistics."""
        while self._inflight:
            _, done = self._inflight.popleft()
            if done > self._cycle:
                self._cycle = done
        self.stats.instructions = self._instr
        self.stats.cycles = self._cycle
        return self.stats
