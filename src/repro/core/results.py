"""Simulation result containers.

A :class:`SimulationResult` is a plain-data snapshot of everything one
(workload, machine, LLC-policy) run produced: per-level cache statistics,
DRAM behaviour, core timing, and the derived metrics the paper reports
(MPKI per level, IPC, the L1D-miss-to-DRAM fraction). Results are
detached from the simulator objects so they can be collected in bulk by
the harness and compared across runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from ..errors import SimulationError
from ..mem.cache import CacheStats
from ..mem.dram import DRAMStats
from ..mem.hierarchy import CacheHierarchy, ServiceLevel
from .cpu import CoreStats

#: The levels Figure 2 reports MPKI for, in presentation order.
MPKI_LEVELS = ("L1D", "L2C", "LLC")

#: Version of the JSON representation produced by
#: :meth:`SimulationResult.to_json_dict`. Bump on any incompatible field
#: change; :meth:`SimulationResult.from_json_dict` refuses mismatches so
#: stale on-disk documents (e.g. sweep-cache entries) fail loudly.
RESULT_SCHEMA_VERSION = 1


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays and mappings into plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (int, float, str, bool)):
        return value.item()  # numpy scalar
    return value


@dataclass(frozen=True)
class LevelStats:
    """Frozen per-level counters extracted from a live cache."""

    name: str
    demand_accesses: int
    demand_hits: int
    writeback_accesses: int
    prefetch_accesses: int
    prefetch_hits: int
    evictions: int
    dirty_evictions: int
    bypasses: int

    @property
    def demand_misses(self) -> int:
        """Demand accesses that missed this level."""
        return self.demand_accesses - self.demand_hits

    @property
    def demand_hit_rate(self) -> float:
        """Demand hit rate at this level."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    def mpki(self, instructions: int) -> float:
        """Demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses / instructions

    @classmethod
    def from_cache_stats(cls, name: str, stats: CacheStats) -> "LevelStats":
        """Snapshot a live :class:`~repro.mem.cache.CacheStats`."""
        return cls(
            name=name,
            demand_accesses=stats.demand_accesses,
            demand_hits=stats.demand_hits,
            writeback_accesses=stats.writeback_accesses,
            prefetch_accesses=stats.prefetch_accesses,
            prefetch_hits=stats.prefetch_hits,
            evictions=stats.evictions,
            dirty_evictions=stats.dirty_evictions,
            bypasses=stats.bypasses,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run measured."""

    workload: str
    policy: str
    instructions: int
    cycles: float
    levels: dict[str, LevelStats]
    served_by: dict[ServiceLevel, int]
    l1d_misses: int
    l1d_misses_to_dram: int
    dram_reads: int
    dram_writes: int
    dram_row_hit_rate: float
    mean_load_latency: float
    rob_stall_cycles: float = 0.0
    info: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the measurement window."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, level: str) -> float:
        """Demand MPKI at a named level ("L1D", "L2C", "LLC", "L1I")."""
        return self.levels[level].mpki(self.instructions)

    @property
    def llc_mpki(self) -> float:
        """Demand MPKI at the last-level cache."""
        return self.mpki("LLC")

    @property
    def l1d_miss_dram_fraction(self) -> float:
        """Fraction of L1D misses that went all the way to DRAM."""
        if self.l1d_misses == 0:
            return 0.0
        return self.l1d_misses_to_dram / self.l1d_misses

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio vs a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup compares runs of the same workload: "
                f"{self.workload!r} vs {baseline.workload!r}"
            )
        return self.ipc / baseline.ipc if baseline.ipc else 0.0

    def to_json_dict(self) -> dict[str, Any]:
        """This result as a JSON-serializable dict (schema-versioned).

        The document round-trips bit-identically through
        :meth:`from_json_dict`: every counter is an int, every float is
        preserved exactly by JSON's shortest-repr encoding, and
        ``served_by`` is keyed by :class:`ServiceLevel` names.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "workload": self.workload,
            "policy": self.policy,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "levels": {name: asdict(stats) for name, stats in self.levels.items()},
            "served_by": {level.name: count for level, count in self.served_by.items()},
            "l1d_misses": self.l1d_misses,
            "l1d_misses_to_dram": self.l1d_misses_to_dram,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "dram_row_hit_rate": self.dram_row_hit_rate,
            "mean_load_latency": self.mean_load_latency,
            "rob_stall_cycles": self.rob_stall_cycles,
            "info": _jsonify(self.info),
        }

    @classmethod
    def from_json_dict(cls, doc: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        version = doc.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise SimulationError(
                f"result document has schema_version={version!r}, "
                f"this build reads {RESULT_SCHEMA_VERSION}"
            )
        return cls(
            workload=doc["workload"],
            policy=doc["policy"],
            instructions=doc["instructions"],
            cycles=doc["cycles"],
            levels={
                name: LevelStats(**stats) for name, stats in doc["levels"].items()
            },
            served_by={
                ServiceLevel[name]: count for name, count in doc["served_by"].items()
            },
            l1d_misses=doc["l1d_misses"],
            l1d_misses_to_dram=doc["l1d_misses_to_dram"],
            dram_reads=doc["dram_reads"],
            dram_writes=doc["dram_writes"],
            dram_row_hit_rate=doc["dram_row_hit_rate"],
            mean_load_latency=doc["mean_load_latency"],
            rob_stall_cycles=doc["rob_stall_cycles"],
            info=dict(doc.get("info", {})),
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        mpkis = ", ".join(
            f"{lvl}={self.mpki(lvl):.1f}" for lvl in MPKI_LEVELS if lvl in self.levels
        )
        return (
            f"{self.workload} [{self.policy}] IPC={self.ipc:.3f} "
            f"MPKI({mpkis}) dram_frac={self.l1d_miss_dram_fraction:.1%}"
        )


def snapshot_result(
    workload: str,
    policy: str,
    hierarchy: CacheHierarchy,
    core_stats: CoreStats,
    info: dict | None = None,
) -> SimulationResult:
    """Freeze the state of a finished simulation into a result object."""
    levels = {
        name: LevelStats.from_cache_stats(name, cache.stats)
        for name, cache in hierarchy.caches.items()
    }
    dram_stats: DRAMStats = hierarchy.dram.stats
    return SimulationResult(
        workload=workload,
        policy=policy,
        instructions=core_stats.instructions,
        cycles=core_stats.cycles,
        levels=levels,
        served_by=dict(hierarchy.stats.served_by),
        l1d_misses=hierarchy.stats.l1d_misses,
        l1d_misses_to_dram=hierarchy.stats.l1d_misses_to_dram,
        dram_reads=dram_stats.reads,
        dram_writes=dram_stats.writes,
        dram_row_hit_rate=dram_stats.row_hit_rate,
        mean_load_latency=core_stats.mean_load_latency,
        rob_stall_cycles=core_stats.rob_stall_cycles,
        info=dict(info or {}),
    )
