"""Simulation result containers.

A :class:`SimulationResult` is a plain-data snapshot of everything one
(workload, machine, LLC-policy) run produced: per-level cache statistics,
DRAM behaviour, core timing, and the derived metrics the paper reports
(MPKI per level, IPC, the L1D-miss-to-DRAM fraction). Results are
detached from the simulator objects so they can be collected in bulk by
the harness and compared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mem.cache import CacheStats
from ..mem.dram import DRAMStats
from ..mem.hierarchy import CacheHierarchy, ServiceLevel
from .cpu import CoreStats

#: The levels Figure 2 reports MPKI for, in presentation order.
MPKI_LEVELS = ("L1D", "L2C", "LLC")


@dataclass(frozen=True)
class LevelStats:
    """Frozen per-level counters extracted from a live cache."""

    name: str
    demand_accesses: int
    demand_hits: int
    writeback_accesses: int
    prefetch_accesses: int
    prefetch_hits: int
    evictions: int
    dirty_evictions: int
    bypasses: int

    @property
    def demand_misses(self) -> int:
        """Demand accesses that missed this level."""
        return self.demand_accesses - self.demand_hits

    @property
    def demand_hit_rate(self) -> float:
        """Demand hit rate at this level."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    def mpki(self, instructions: int) -> float:
        """Demand misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses / instructions

    @classmethod
    def from_cache_stats(cls, name: str, stats: CacheStats) -> "LevelStats":
        """Snapshot a live :class:`~repro.mem.cache.CacheStats`."""
        return cls(
            name=name,
            demand_accesses=stats.demand_accesses,
            demand_hits=stats.demand_hits,
            writeback_accesses=stats.writeback_accesses,
            prefetch_accesses=stats.prefetch_accesses,
            prefetch_hits=stats.prefetch_hits,
            evictions=stats.evictions,
            dirty_evictions=stats.dirty_evictions,
            bypasses=stats.bypasses,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run measured."""

    workload: str
    policy: str
    instructions: int
    cycles: float
    levels: dict[str, LevelStats]
    served_by: dict[ServiceLevel, int]
    l1d_misses: int
    l1d_misses_to_dram: int
    dram_reads: int
    dram_writes: int
    dram_row_hit_rate: float
    mean_load_latency: float
    rob_stall_cycles: float = 0.0
    info: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the measurement window."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, level: str) -> float:
        """Demand MPKI at a named level ("L1D", "L2C", "LLC", "L1I")."""
        return self.levels[level].mpki(self.instructions)

    @property
    def llc_mpki(self) -> float:
        """Demand MPKI at the last-level cache."""
        return self.mpki("LLC")

    @property
    def l1d_miss_dram_fraction(self) -> float:
        """Fraction of L1D misses that went all the way to DRAM."""
        if self.l1d_misses == 0:
            return 0.0
        return self.l1d_misses_to_dram / self.l1d_misses

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio vs a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup compares runs of the same workload: "
                f"{self.workload!r} vs {baseline.workload!r}"
            )
        return self.ipc / baseline.ipc if baseline.ipc else 0.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        mpkis = ", ".join(
            f"{lvl}={self.mpki(lvl):.1f}" for lvl in MPKI_LEVELS if lvl in self.levels
        )
        return (
            f"{self.workload} [{self.policy}] IPC={self.ipc:.3f} "
            f"MPKI({mpkis}) dram_frac={self.l1d_miss_dram_fraction:.1%}"
        )


def snapshot_result(
    workload: str,
    policy: str,
    hierarchy: CacheHierarchy,
    core_stats: CoreStats,
    info: dict | None = None,
) -> SimulationResult:
    """Freeze the state of a finished simulation into a result object."""
    levels = {
        name: LevelStats.from_cache_stats(name, cache.stats)
        for name, cache in hierarchy.caches.items()
    }
    dram_stats: DRAMStats = hierarchy.dram.stats
    return SimulationResult(
        workload=workload,
        policy=policy,
        instructions=core_stats.instructions,
        cycles=core_stats.cycles,
        levels=levels,
        served_by=dict(hierarchy.stats.served_by),
        l1d_misses=hierarchy.stats.l1d_misses,
        l1d_misses_to_dram=hierarchy.stats.l1d_misses_to_dram,
        dram_reads=dram_stats.reads,
        dram_writes=dram_stats.writes,
        dram_row_hit_rate=dram_stats.row_hit_rate,
        mean_load_latency=core_stats.mean_load_latency,
        rob_stall_cycles=core_stats.rob_stall_cycles,
        info=dict(info or {}),
    )
