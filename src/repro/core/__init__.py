"""Simulation core: machine configuration, timing model, driver, oracle."""

from .config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    cascade_lake,
    small_test_machine,
)
from .cpu import CoreModel, CoreStats
from .oracle import record_llc_stream, simulate_with_opt
from .results import LevelStats, SimulationResult, snapshot_result
from .simulator import build_hierarchy, simulate

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "MachineConfig",
    "cascade_lake",
    "small_test_machine",
    "CoreModel",
    "CoreStats",
    "LevelStats",
    "SimulationResult",
    "snapshot_result",
    "build_hierarchy",
    "simulate",
    "record_llc_stream",
    "simulate_with_opt",
]
