"""repro — a trace-driven cache-hierarchy simulator reproducing
*"Characterizing the impact of last-level cache replacement policies on
big-data workloads"* (Jamet, Alvarez, Jiménez, Casas — IISWC 2020).

The package models a single-core Cascade Lake machine (split L1s, 1 MB
L2, 1.375 MB LLC, DDR4-2933), implements the paper's six evaluated LLC
replacement policies (SRRIP, DRRIP, SHiP, Hawkeye, Glider, MPPPB)
against the LRU baseline plus a Belady OPT oracle, and generates the
paper's workloads: the six GAP graph kernels traced over CSR graphs, and
synthetic proxies for the SPEC CPU 2006/2017 suites.

Quick start::

    from repro import gap, simulate

    traces = gap.gap_suite(scale=14, max_accesses=100_000)
    result = simulate(traces["pr.kron14"], llc_policy="hawkeye")
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from . import analysis, core, gap, graphs, harness, mem, policies, spec, trace
from .core.config import MachineConfig, cascade_lake, small_test_machine
from .core.oracle import simulate_with_opt
from .core.results import SimulationResult
from .core.simulator import build_hierarchy, simulate
from .errors import (
    ConfigurationError,
    GraphError,
    PolicyError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownPolicyError,
    WorkloadError,
)
from .harness.runner import RunMatrix, run_matrix
from .policies.registry import (
    BASELINE_POLICY,
    PAPER_POLICIES,
    available_policies,
    make_policy,
)
from .trace.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "analysis",
    "core",
    "gap",
    "graphs",
    "harness",
    "mem",
    "policies",
    "spec",
    "trace",
    # primary entry points
    "simulate",
    "simulate_with_opt",
    "build_hierarchy",
    "run_matrix",
    "RunMatrix",
    "SimulationResult",
    "MachineConfig",
    "cascade_lake",
    "small_test_machine",
    "Trace",
    "make_policy",
    "available_policies",
    "PAPER_POLICIES",
    "BASELINE_POLICY",
    # errors
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "PolicyError",
    "UnknownPolicyError",
    "GraphError",
    "WorkloadError",
    "SimulationError",
]
