"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows without writing a script:

* ``simulate`` — trace one workload and run it under one policy;
* ``sweep`` — a (workload x policy) matrix with speed-ups over LRU,
  fanned out over ``--jobs`` worker processes with on-disk caching;
  ``--retries``/``--cell-timeout`` arm the fault-tolerance layer; every
  cached run is journalled so an interrupted sweep (SIGTERM, SIGINT,
  even ``kill -9``) resumes with ``--resume <run_id>``; exit code 75
  means "interrupted but resumable";
* ``profile`` — run one cell with interval-resolved telemetry armed and
  render (or dump as JSON) its profile;
* ``sample`` — inspect a workload's representative-interval sampling
  plan, or (``--validate``) measure sampled-vs-full error over whole
  suites;
* ``cache`` — inspect/verify/clear/prune the sweep engine's result cache;
* ``chaos`` — deterministic fault injection (worker crashes, hangs,
  corrupt cache entries, truncated traces) over a small GAP sweep,
  asserting every recovery path end-to-end; ``--scenario v2`` adds
  whole-process SIGKILL + resume, disk-full and memory-bomb scenarios;
* ``experiment`` — regenerate one of the paper's tables/figures;
* ``lint`` — run the policy-contract static analyzer (and, with
  ``--sanitize-selftest``, the runtime invariant sanitizer);
* ``verify-fastpath`` — prove the fast and reference execution engines
  bit-identical across policies x traces (telemetry off and on).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .analysis.tables import format_table
from .core.config import cascade_lake
from .core.simulator import simulate
from .errors import ReproError
from .gap.suite import GAP_KERNELS, GapWorkloadSpec, build_graph, run_kernel
from .harness import experiments as exp
from .harness.runner import run_matrix
from .policies.registry import BASELINE_POLICY, PAPER_POLICIES, available_policies
from .spec.suite import build_spec_workload, spec06_workloads, spec17_workloads

EXPERIMENTS = {
    "table1": exp.experiment_table1,
    "fig2": exp.experiment_fig2,
    "fig3": exp.experiment_fig3,
    "e1": exp.experiment_llc_mpki,
    "e2": exp.experiment_pc_characterization,
    "e3": exp.experiment_reuse_distance,
    "e4": exp.experiment_opt_headroom,
    "e5": exp.experiment_dram_traffic,
    "e6": exp.experiment_llc_sensitivity,
    "e7": exp.experiment_policy_ablation,
    "e8": exp.experiment_prefetch_sensitivity,
    "e9": exp.experiment_graph_family,
    "e10": exp.experiment_miss_classification,
    "e11": exp.experiment_hardware_budget,
}


def _build_trace(workload: str, window: int):
    """Resolve 'gap.<kernel>[.scaleN]' or 'spec06/17.<name>' to a trace."""
    parts = workload.split(".")
    if parts[0] == "gap":
        if len(parts) < 2 or parts[1] not in GAP_KERNELS:
            raise ReproError(
                f"gap workload must be gap.<kernel>, kernels: {', '.join(GAP_KERNELS)}"
            )
        scale = int(parts[2]) if len(parts) > 2 else 16
        spec = GapWorkloadSpec(kernel=parts[1], graph_name="kron", scale=scale, degree=16)
        graph = build_graph(spec)
        return run_kernel(parts[1], graph, trace_name=spec.name, max_accesses=window).trace
    if parts[0] in ("spec06", "spec17"):
        if len(parts) != 2:
            names = spec06_workloads() if parts[0] == "spec06" else spec17_workloads()
            raise ReproError(
                f"{parts[0]} workload must be {parts[0]}.<name>, names: {', '.join(names)}"
            )
        return build_spec_workload(parts[0], parts[1], num_accesses=window)
    raise ReproError(
        f"unknown workload {workload!r}; use gap.<kernel>[.scale], "
        "spec06.<name> or spec17.<name>"
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    """Trace one workload and simulate it under one policy."""
    trace = _build_trace(args.workload, args.window)
    result = simulate(trace, config=cascade_lake(), llc_policy=args.policy,
                      sanitize=args.sanitize)
    print(result.summary())
    print(format_table(
        ["level", "demand accesses", "hit rate", "MPKI"],
        [
            [lvl, result.levels[lvl].demand_accesses,
             result.levels[lvl].demand_hit_rate, result.mpki(lvl)]
            for lvl in ("L1I", "L1D", "L2C", "LLC")
        ],
    ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one cell with telemetry armed and render its profile."""
    import json

    from .harness.report import render_profile
    from .telemetry import TelemetryConfig, TelemetryProfile

    trace = _build_trace(args.workload, args.window)
    result = simulate(
        trace,
        config=cascade_lake(),
        llc_policy=args.policy,
        telemetry=TelemetryConfig(interval_instructions=args.interval),
    )
    profile = TelemetryProfile.from_result(result)
    problems = profile.validate_totals(result)
    if problems:  # cannot happen unless the collector is broken
        for problem in problems:
            print(f"telemetry inconsistency: {problem}", file=sys.stderr)
        return 1
    if args.json:
        Path(args.json).write_text(
            json.dumps(profile.to_json_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    print(render_profile(profile, markdown=args.markdown))
    return 0


def _sampling_spec_from(args: argparse.Namespace):
    """A SamplingSpec from ``--sampling``, or None when sampling is off."""
    if not getattr(args, "sampling", None):
        return None
    from .sampling import SamplingSpec

    return SamplingSpec.from_string(args.sampling)


def cmd_sample(args: argparse.Namespace) -> int:
    """Inspect a sampling plan, or validate sampled-vs-full accuracy."""
    import json

    from .sampling import SamplingSpec, build_plan, run_validation

    spec = SamplingSpec.from_string(args.spec)
    if args.validate:
        report = run_validation(
            suites=tuple(args.suites),
            spec=spec,
            progress=lambda cell: print(f"  validating {cell} ...", file=sys.stderr),
        )
        if args.json:
            Path(args.json).write_text(
                json.dumps(report.to_json_dict(), indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.json}", file=sys.stderr)
        print(report.render())
        return 0
    if not args.workloads:
        raise ReproError("sample needs at least one workload (or --validate)")
    for workload in args.workloads:
        trace = _build_trace(workload, args.window)
        plan = build_plan(trace, spec)
        print(plan.summary())
        if args.verbose:
            for interval in plan.intervals:
                print(
                    f"  interval {interval.index}: records "
                    f"[{interval.start}, {interval.stop}) "
                    f"warm from {interval.warm_start}, "
                    f"weight {interval.weight} (cluster {interval.cluster})"
                )
        if args.json:
            Path(args.json).write_text(
                json.dumps(plan.to_json_dict(), indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _default_cache_dir() -> Path:
    """The CLI's cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path("~/.cache/repro/sweeps").expanduser()


def _default_journal_dir() -> Path:
    """The CLI's run-journal root: ``REPRO_JOURNAL_DIR`` or ``~/.cache/repro/journal``.

    A sibling of the cache root, never inside it — ``repro cache clear``
    must not destroy resume state.
    """
    env = os.environ.get("REPRO_JOURNAL_DIR", "").strip()
    if env:
        return Path(env)
    return Path("~/.cache/repro/journal").expanduser()


def _retry_policy_from(args: argparse.Namespace):
    """A RetryPolicy from CLI flags, or None when resilience is off."""
    if not args.retries and args.cell_timeout is None:
        return None
    from .resilience import RetryPolicy

    return RetryPolicy(
        max_attempts=args.retries + 1,
        cell_timeout=args.cell_timeout,
        seed=args.retry_seed,
    )


def _add_retry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--retries", type=int, default=0,
                        help="retry transient cell failures up to N times "
                             "with deterministic backoff (default: 0, off)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per cell, enforced by a "
                             "watchdog (forces worker processes; default: none)")
    parser.add_argument("--retry-seed", type=int, default=0,
                        help="seed of the deterministic backoff jitter "
                             "(default: 0)")


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (workload x policy) matrix and print speed-ups over LRU."""
    from .errors import SweepInterrupted
    from .harness.engine import SweepEngine
    from .resilience.durability import (
        EXIT_INTERRUPTED,
        RunJournal,
        ShutdownCoordinator,
    )

    journal_dir = (
        Path(args.journal_dir) if args.journal_dir else _default_journal_dir()
    )
    if not args.workloads and not args.resume:
        raise ReproError("at least one workload is required (or --resume RUN_ID)")
    if args.resume:
        if args.no_cache:
            raise ReproError(
                "--resume needs the result cache (the journal records "
                "which cells finished; the cache holds their results) — "
                "drop --no-cache"
            )
        parsed = RunJournal.load(RunJournal.find(journal_dir, args.resume))
        if not parsed.context:
            raise ReproError(
                f"journal {args.resume} carries no CLI context; it was "
                "written by the API, not `repro sweep` — resume it from "
                "the same API call instead"
            )
        for key in ("workloads", "policies", "window", "sanitize",
                    "engine", "sampling"):
            setattr(args, key, parsed.context[key])
        print(
            f"resuming run {args.resume}: "
            f"{len(parsed.completed_cells)} cell(s) already journalled",
            file=sys.stderr,
        )

    traces = {w: _build_trace(w, args.window) for w in args.workloads}
    policies = [BASELINE_POLICY, *(args.policies or PAPER_POLICIES)]
    use_journal = not args.no_cache and not args.no_journal
    cache_max_bytes = args.cache_max_bytes
    if cache_max_bytes is None:
        raw_budget = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
        cache_max_bytes = int(raw_budget) if raw_budget else None
    engine = SweepEngine(
        cache_dir=None if args.no_cache else _default_cache_dir(),
        jobs=args.jobs,
        journal_dir=journal_dir if use_journal else None,
        cache_max_bytes=cache_max_bytes,
    )
    # Everything `--resume` needs to rebuild this invocation rides in the
    # journal header; same arguments => same spec => same run id.
    journal_context = {
        "workloads": list(args.workloads),
        "policies": list(args.policies) if args.policies else None,
        "window": args.window,
        "sanitize": bool(args.sanitize),
        "engine": args.engine,
        "sampling": args.sampling,
    }
    shutdown = ShutdownCoordinator()
    try:
        with shutdown:
            matrix = run_matrix(
                traces, policies, config=cascade_lake(),
                progress=lambda w, p: print(f"  running {w} x {p} ...",
                                            file=sys.stderr),
                sanitize=args.sanitize,
                engine=engine,
                retry=_retry_policy_from(args),
                cell_engine=args.engine,
                sampling=_sampling_spec_from(args),
                memory_budget_mb=args.memory_budget_mb,
                shutdown=shutdown,
                drain_timeout=args.drain_timeout,
                journal_context=journal_context,
                failure_report_path=args.failure_report,
            )
    except SweepInterrupted as interrupted:
        print(f"sweep interrupted: {interrupted}", file=sys.stderr)
        if interrupted.run_id:
            print(f"resume with: repro sweep --resume {interrupted.run_id}",
                  file=sys.stderr)
        return EXIT_INTERRUPTED
    rows = [
        [w, *[matrix.speedup(w, p) for p in policies[1:]]]
        for w in matrix.workloads
    ]
    print(format_table(["workload", *policies[1:]], rows,
                       title="Speed-up over LRU"))
    stats = matrix.sweep_stats
    if stats is not None:
        resumed = f", {stats.resumed} resumed" if stats.resumed else ""
        print(
            f"engine: {stats.cells} cells, {stats.hits} from cache, "
            f"{stats.simulated} simulated{resumed} ({args.jobs} jobs)",
            file=sys.stderr,
        )
    if matrix.run_id is not None:
        print(f"run {matrix.run_id} journalled at {matrix.journal_path}",
              file=sys.stderr)
    if matrix.failure_report is not None and matrix.failure_report.cells:
        from .harness.report import render_failure_report

        print(render_failure_report(matrix.failure_report), file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain the sweep engine's on-disk result cache."""
    import json

    from .harness.engine import ResultCache, simulator_salt

    if args.action == "salt":
        print(simulator_salt())
        return 0
    cache = ResultCache(args.cache_dir or _default_cache_dir())
    if args.action == "stats":
        print(cache.stats().render())
    elif args.action == "verify":
        report = cache.verify()
        if args.json:
            print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        if report.quarantined:
            print(
                f"quarantined entries moved to "
                f"{cache.root / 'quarantine'}; they will be re-simulated",
                file=sys.stderr,
            )
        # Non-zero whenever the cache holds corrupt state — including
        # entries quarantined by *earlier* runs that nobody acted on.
        if not report.clean:
            return 1
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries")
    elif args.action == "prune":
        removed = cache.prune()
        print(f"pruned {removed} stale entries (current salt {cache.salt})")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault injection over a small GAP sweep (see docs/resilience.md)."""
    import json

    from .resilience import RetryPolicy, run_chaos
    from .resilience.chaos import CHAOS_V2_SCENARIOS, run_chaos_v2

    if args.scenario != "classic":
        scenarios = (
            CHAOS_V2_SCENARIOS if args.scenario == "v2"
            else (args.scenario,)
        )
        report = run_chaos_v2(
            seed=args.seed,
            scenarios=scenarios,
            kernels=tuple(args.kernels),
            policies=tuple(args.policies or ("lru", "srrip")),
            max_accesses=args.window,
            jobs=args.jobs,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
        )
        if args.json:
            Path(args.json).write_text(
                json.dumps(report.to_json_dict(), indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.json}", file=sys.stderr)
        print(report.render())
        return 0 if report.passed else 1

    retry = RetryPolicy(
        max_attempts=args.retries + 1,
        cell_timeout=args.cell_timeout,
        backoff_base=0.05,
        backoff_max=1.0,
        seed=args.seed,
    )
    report = run_chaos(
        seed=args.seed,
        kernels=tuple(args.kernels),
        policies=tuple(args.policies or ("lru", "srrip")),
        max_accesses=args.window,
        jobs=args.jobs,
        retry=retry,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_json_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    print(report.render())
    return 0 if report.passed else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Run selected experiments into a single markdown report."""
    from .harness.report import generate_report

    selected = {
        name: EXPERIMENTS[name]
        for name in (args.experiments or sorted(EXPERIMENTS))
    }
    path = generate_report(
        selected,
        args.output,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    print(f"wrote {path}")
    return 0


def _sanitize_selftest() -> int:
    """Run every paper policy over synthetic traces with the sanitizer armed.

    The invariant checks fire on every cache operation; completing at all
    means zero violations. Returns the number of checks executed.
    """
    from .core.config import small_test_machine
    from .trace import synthetic

    traces = {
        "synthetic.zipf": synthetic.zipf_reuse(6000, num_blocks=600, seed=7),
        "synthetic.stream": synthetic.strided(6000, stride=64, elements=300),
        "synthetic.chase": synthetic.pointer_chase(6000, num_nodes=500, seed=3),
    }
    config = small_test_machine()
    checks = 0
    for name, trace in traces.items():
        for policy in (BASELINE_POLICY, *PAPER_POLICIES):
            result = simulate(trace, config=config, llc_policy=policy,
                              sanitize=True)
            checks += result.info["sanitizer_checks"]
            print(f"  {name} x {policy}: "
                  f"{result.info['sanitizer_checks']} checks, "
                  f"{result.info['sanitizer_evictions_verified']} evictions verified",
                  file=sys.stderr)
    return checks


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    """The baseline file to apply, honouring --baseline/--no-baseline.

    The default baseline describes the whole tree, so it is only picked
    up implicitly on full-tree runs; linting explicit paths applies it
    only when ``--baseline`` names it.
    """
    if args.no_baseline:
        return None
    from .lint import DEFAULT_BASELINE_NAME

    if args.baseline:
        path = Path(args.baseline)
        if not path.is_file():
            raise ReproError(f"baseline file not found: {path}")
        return path
    if args.paths:
        return None
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.is_file() else None


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer (and optionally the sanitizer selftest)."""
    from .lint import (
        Severity,
        apply_baseline,
        available_rules,
        lint_paths,
        lint_tree,
        make_rule,
        parse_baseline,
        render_json,
        render_markdown,
        render_text,
    )

    if args.list_rules:
        for name in available_rules():
            rule = make_rule(name)
            print(f"{name} ({rule.severity}): {rule.description}")
        return 0

    rules = [make_rule(name) for name in args.rules] if args.rules else None
    if args.paths:
        findings = lint_paths(args.paths, rules)
    else:
        findings = lint_tree(rules=rules)

    suppressed = 0
    baseline_path = _resolve_baseline(args)
    if baseline_path is not None:
        entries = parse_baseline(baseline_path)
        findings, suppressed = apply_baseline(findings, entries, baseline_path)

    if args.format == "json":
        print(render_json(findings, suppressed=suppressed))
    elif args.format == "markdown":
        print(render_markdown(findings, suppressed=suppressed))
    elif findings:
        print(render_text(findings))
    errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity == Severity.WARNING)
    print(
        f"lint: {errors} error(s), {warnings} warning(s), "
        f"{suppressed} baselined",
        file=sys.stderr,
    )

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if args.strict and step_summary:
        with open(step_summary, "a", encoding="utf-8") as fh:
            fh.write(render_markdown(findings, suppressed=suppressed) + "\n")

    rc = 0
    if errors or (args.strict and warnings):
        rc = 1

    if args.sanitize_selftest:
        print("sanitize selftest: paper policies over synthetic traces ...",
              file=sys.stderr)
        checks = _sanitize_selftest()
        print(f"sanitize selftest: {checks} invariant checks, 0 violations",
              file=sys.stderr)
    return rc


def cmd_verify_fastpath(args: argparse.Namespace) -> int:
    """Differential equivalence: fast engine vs reference engine."""
    from .harness.equivalence import default_verification_traces, verify_fastpath

    report = verify_fastpath(
        policies=args.policies or None,
        traces=default_verification_traces(num_accesses=args.accesses),
        warmup_fractions=tuple(args.warmup),
        include_telemetry=not args.no_telemetry,
        progress=args.verbose,
        engine=args.engine,
    )
    print(report.render())
    return 0 if report.passed else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate one paper table/figure (optionally with a chart)."""
    report = EXPERIMENTS[args.name]()
    print(report.render())
    if args.chart:
        baseline = 1.0 if args.name == "fig3" else None
        print()
        print(report.chart(baseline=baseline))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IISWC'20 LLC-replacement-vs-big-data reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate one workload under one policy")
    p_sim.add_argument("workload", help="gap.<kernel>[.scale] | spec06.<name> | spec17.<name>")
    p_sim.add_argument("--policy", default="lru", choices=available_policies())
    p_sim.add_argument("--window", type=int, default=200_000,
                       help="traced accesses (default 200k)")
    p_sim.add_argument("--sanitize", action="store_true",
                       help="arm runtime invariant checks on every cache level")
    p_sim.set_defaults(func=cmd_simulate)

    p_sweep = sub.add_parser("sweep", help="(workload x policy) speed-up matrix")
    p_sweep.add_argument("workloads", nargs="*",
                         help="required unless --resume rebuilds them "
                              "from the journal header")
    p_sweep.add_argument("--policies", nargs="*", choices=available_policies())
    p_sweep.add_argument("--window", type=int, default=200_000)
    p_sweep.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                         help="worker processes for sweep cells "
                              "(default: all cores)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk result cache")
    p_sweep.add_argument("--sanitize", action="store_true",
                         help="arm runtime invariant checks on every cache level")
    p_sweep.add_argument("--engine", default="fast",
                         choices=("fast", "reference", "batched"),
                         help="simulation engine for uncached cells: "
                              "'batched' shares one decoded access stream "
                              "across all eligible policies per workload "
                              "(default: fast; all bit-identical)")
    p_sweep.add_argument("--sampling", metavar="SPEC", default=None,
                         help="run cells under representative-interval "
                              "sampling; SPEC is 'default' or "
                              "'k=4,window=0,warm=1,seed=0,"
                              "synthesis=checkpoint' "
                              "(see docs/sampling.md)")
    p_sweep.add_argument("--journal-dir", metavar="DIR", default=None,
                         help="run-journal root (default: $REPRO_JOURNAL_DIR "
                              "or ~/.cache/repro/journal)")
    p_sweep.add_argument("--no-journal", action="store_true",
                         help="disable the write-ahead run journal "
                              "(implied by --no-cache)")
    p_sweep.add_argument("--resume", metavar="RUN_ID", default=None,
                         help="resume an interrupted journalled run: "
                              "rebuilds the sweep from the journal header "
                              "and restarts at the first incomplete cell")
    p_sweep.add_argument("--failure-report", metavar="PATH", default=None,
                         help="write the failure report JSON here (default: "
                              "<run_id>-failures.json next to the journal "
                              "when resilience is armed)")
    p_sweep.add_argument("--memory-budget-mb", type=float, default=None,
                         metavar="MB",
                         help="per-worker RSS budget; cells that exceed it "
                              "fail with a retryable MemoryBudgetError "
                              "instead of drawing the OOM-killer "
                              "(default: off)")
    p_sweep.add_argument("--cache-max-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="byte budget for the result cache; oldest "
                              "entries are evicted past it (default: "
                              "$REPRO_CACHE_MAX_BYTES or unlimited)")
    p_sweep.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="on SIGTERM/SIGINT, seconds to wait for "
                              "in-flight cells before abandoning them "
                              "(default: 30)")
    _add_retry_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_prof = sub.add_parser(
        "profile", help="interval-resolved telemetry profile of one cell")
    p_prof.add_argument("workload", help="gap.<kernel>[.scale] | spec06.<name> | spec17.<name>")
    p_prof.add_argument("policy", nargs="?", default="lru",
                        choices=available_policies(),
                        help="LLC replacement policy (default: lru)")
    p_prof.add_argument("--window", type=int, default=200_000,
                        help="traced accesses (default 200k)")
    p_prof.add_argument("--interval", type=int, default=10_000,
                        help="interval length in instructions (default 10k)")
    p_prof.add_argument("--json", metavar="PATH",
                        help="also write the versioned JSON profile here")
    p_prof.add_argument("--markdown", action="store_true",
                        help="render as markdown instead of plain text")
    p_prof.set_defaults(func=cmd_profile)

    p_sample = sub.add_parser(
        "sample",
        help="inspect representative-interval sampling plans, or "
             "--validate sampled-vs-full accuracy over whole suites")
    p_sample.add_argument("workloads", nargs="*",
                          help="gap.<kernel>[.scale] | spec06.<name> | "
                               "spec17.<name> (plan inspection mode)")
    p_sample.add_argument("--spec", default="default",
                          help="sampling spec: 'default' or "
                               "'k=4,window=0,warm=1,seed=0,reduction=12,"
                               "synthesis=recency|replay|checkpoint,"
                               "replay=4'")
    p_sample.add_argument("--window", type=int, default=200_000,
                          help="traced accesses (default 200k)")
    p_sample.add_argument("--validate", action="store_true",
                          help="run the sampled-vs-full validation harness "
                               "instead of inspecting plans")
    p_sample.add_argument("--suites", nargs="*", default=["gap", "spec06"],
                          choices=["gap", "spec06", "spec17"],
                          help="suites for --validate (default: gap spec06)")
    p_sample.add_argument("--json", metavar="PATH",
                          help="also write the plan/report as JSON here")
    p_sample.add_argument("--verbose", action="store_true",
                          help="list every selected interval")
    p_sample.set_defaults(func=cmd_sample)

    p_cache = sub.add_parser(
        "cache", help="inspect/verify/clear/prune the sweep result cache")
    p_cache.add_argument("action",
                         choices=["stats", "verify", "clear", "prune", "salt"])
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache root (default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro/sweeps)")
    p_cache.add_argument("--json", action="store_true",
                         help="for verify: print the report as JSON "
                              "(machine-readable; exit code is unchanged)")
    p_cache.set_defaults(func=cmd_cache)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection: crash/hang workers, corrupt cache, "
             "truncate traces; assert full recovery")
    p_chaos.add_argument("--scenario", default="classic",
                         choices=["classic", "v2", "kill-resume",
                                  "disk-full", "memory-bomb"],
                         help="'classic' injects worker-level faults; 'v2' "
                              "runs the process/disk/memory scenarios "
                              "(SIGKILL + journal resume, ENOSPC "
                              "degradation, RSS memory bombs), or name "
                              "one v2 scenario (default: classic)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-schedule seed (default: 0)")
    p_chaos.add_argument("--kernels", nargs="*", default=["bfs", "pr"],
                         choices=GAP_KERNELS,
                         help="GAP kernels for the chaos matrix (default: bfs pr)")
    p_chaos.add_argument("--policies", nargs="*", choices=available_policies(),
                         help="policies for the chaos matrix (default: lru srrip)")
    p_chaos.add_argument("--window", type=int, default=20_000,
                         help="traced accesses per kernel (default 20k)")
    p_chaos.add_argument("--jobs", type=int, default=2,
                         help="worker processes (default: 2)")
    p_chaos.add_argument("--retries", type=int, default=2,
                         help="transient-failure retries per cell (default: 2)")
    p_chaos.add_argument("--cell-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="per-cell wall-clock budget (default: 10)")
    p_chaos.add_argument("--json", metavar="PATH",
                         help="also write the chaos report as JSON here")
    p_chaos.set_defaults(func=cmd_chaos)

    p_lint = sub.add_parser(
        "lint",
        help="whole-program static analyzer + invariant sanitizer",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  clean: no error-severity findings survived the baseline\n"
            "     (info-severity findings never fail a run)\n"
            "  1  error-severity findings present — including expired\n"
            "     baseline entries that still match; with --strict,\n"
            "     surviving warnings fail too\n"
            "\n"
            "See docs/linting.md for the analysis passes and the baseline "
            "format."
        ),
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the live "
                             "repro package plus registry/engine checks)")
    p_lint.add_argument("--rules", nargs="*", metavar="RULE",
                        help="subset of rules to run (default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too (the CI gate)")
    p_lint.add_argument("--format", choices=["text", "json", "markdown"],
                        default="text",
                        help="output format (default: text); --strict runs "
                             "also append the markdown summary to "
                             "$GITHUB_STEP_SUMMARY when it is set")
    p_lint.add_argument("--baseline", metavar="PATH",
                        help="baseline file of accepted findings (default "
                             "for full-tree runs: lint-baseline.txt in the "
                             "working directory, if present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    p_lint.add_argument("--sanitize-selftest", action="store_true",
                        help="also run the paper policies over synthetic "
                             "traces with the runtime sanitizer armed")
    p_lint.set_defaults(func=cmd_lint)

    p_vf = sub.add_parser(
        "verify-fastpath",
        help="prove an optimized engine bit-identical to the reference")
    p_vf.add_argument("--engine", default="fast", choices=("fast", "batched"),
                      help="candidate engine to compare against the "
                           "reference (default: fast)")
    p_vf.add_argument("--policies", nargs="*", choices=available_policies(),
                      help="subset of policies (default: all registered)")
    p_vf.add_argument("--accesses", type=int, default=12_000,
                      help="records per verification trace (default 12k)")
    p_vf.add_argument("--warmup", type=float, nargs="*", default=[0.2],
                      help="warm-up fractions to cross (default: 0.2)")
    p_vf.add_argument("--no-telemetry", action="store_true",
                      help="skip the telemetry-armed half of the matrix")
    p_vf.add_argument("--verbose", action="store_true",
                      help="print each case as it completes")
    p_vf.set_defaults(func=cmd_verify_fastpath)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--chart", action="store_true",
                       help="also draw the result as terminal bars")
    p_exp.set_defaults(func=cmd_experiment)

    p_rep = sub.add_parser("report", help="run experiments into one markdown report")
    p_rep.add_argument("--output", default="report.md")
    p_rep.add_argument("--experiments", nargs="*", choices=sorted(EXPERIMENTS),
                       help="subset to run (default: all)")
    p_rep.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
