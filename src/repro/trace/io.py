"""Trace persistence.

Traces are stored as ``.npz`` archives holding the structured record array
plus a small JSON metadata blob. The format is versioned so that future
layout changes fail loudly instead of silently mis-decoding, and (since
format version 2) carries a SHA-256 **payload checksum** of the record
bytes so that a truncated or bit-rotted archive raises a structured
:class:`~repro.errors.TraceFormatError` — naming the file and the
problem — instead of surfacing as a numpy/zipfile stack trace deep in a
sweep. Version-1 files (no checksum) remain readable.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from .record import TRACE_DTYPE
from .trace import Trace

#: v2 added ``payload_sha256`` to the metadata; v1 files are still read.
FORMAT_VERSION = 2

#: Oldest format version :func:`load_trace` still accepts.
OLDEST_READABLE_VERSION = 1

#: Metadata keys every trace file must carry, whatever its version.
REQUIRED_META_KEYS = ("version", "name", "info")


def payload_checksum(records: np.ndarray) -> str:
    """SHA-256 over the raw record bytes (the integrity-checked payload)."""
    return hashlib.sha256(np.ascontiguousarray(records).tobytes()).hexdigest()


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "info": trace.info,
        "payload_sha256": payload_checksum(trace.records),
    }
    with open(path, "wb") as f:
        np.savez_compressed(
            f,
            records=trace.records,
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
    return path


def _validate_meta(meta: object, path: Path) -> dict:
    """The metadata dict, or a :class:`TraceFormatError` naming what's wrong."""
    if not isinstance(meta, dict):
        raise TraceFormatError(
            f"{path}: trace metadata is {type(meta).__name__}, expected an object"
        )
    missing = [key for key in REQUIRED_META_KEYS if key not in meta]
    if missing:
        raise TraceFormatError(
            f"{path}: trace metadata missing required keys: {', '.join(missing)}"
        )
    return meta


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises :class:`~repro.errors.TraceFormatError` — never a raw
    numpy/zipfile/zlib exception — for every way a file can be wrong:
    unreadable, truncated, not a trace archive, metadata missing
    required keys, unsupported version, dtype mismatch, or (format >= 2)
    a payload checksum mismatch.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            if "records" not in data or "meta" not in data:
                raise TraceFormatError(f"{path}: not a repro trace file")
            records = data["records"]
            meta_bytes = bytes(data["meta"].tobytes())
    except (OSError, ValueError, EOFError, zipfile.BadZipFile, zlib.error) as exc:
        # A truncated .npz can fail at any of these layers depending on
        # where the bytes run out (zip directory, member header, deflate
        # stream, npy header); unify them into one structured error.
        raise TraceFormatError(f"{path}: cannot read trace file: {exc}") from exc
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: corrupt metadata: {exc}") from exc
    meta = _validate_meta(meta, path)
    version = meta["version"]
    if not (
        isinstance(version, int)
        and OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION
    ):
        raise TraceFormatError(
            f"{path}: unsupported trace format version {version} (this library "
            f"reads versions {OLDEST_READABLE_VERSION}..{FORMAT_VERSION})"
        )
    if records.dtype != TRACE_DTYPE:
        raise TraceFormatError(
            f"{path}: record dtype {records.dtype} does not match TRACE_DTYPE"
        )
    if version >= 2:
        expected = meta.get("payload_sha256")
        if not expected:
            raise TraceFormatError(
                f"{path}: trace metadata missing required keys: payload_sha256 "
                f"(mandatory since format version 2)"
            )
        actual = payload_checksum(records)
        if actual != expected:
            raise TraceFormatError(
                f"{path}: payload checksum mismatch (stored {expected[:12]}..., "
                f"recomputed {actual[:12]}...); the file is truncated or corrupt"
            )
    return Trace(records, name=meta["name"], info=meta["info"])
