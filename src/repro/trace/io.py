"""Trace persistence.

Traces are stored as ``.npz`` archives holding the structured record array
plus a small JSON metadata blob. The format is versioned so that future
layout changes fail loudly instead of silently mis-decoding.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from .record import TRACE_DTYPE
from .trace import Trace

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "info": trace.info,
    }
    with open(path, "wb") as f:
        np.savez_compressed(
            f,
            records=trace.records,
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    try:
        with np.load(path) as data:
            if "records" not in data or "meta" not in data:
                raise TraceFormatError(f"{path}: not a repro trace file")
            records = data["records"]
            meta_bytes = bytes(data["meta"].tobytes())
    except (OSError, ValueError) as exc:
        raise TraceFormatError(f"{path}: cannot read trace file: {exc}") from exc
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: corrupt metadata: {exc}") from exc
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace format version {version} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    if records.dtype != TRACE_DTYPE:
        raise TraceFormatError(
            f"{path}: record dtype {records.dtype} does not match TRACE_DTYPE"
        )
    return Trace(records, name=meta.get("name", path.stem), info=meta.get("info"))
