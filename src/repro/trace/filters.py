"""Trace transformation utilities.

Functional helpers that derive new traces from existing ones — the
plumbing for characterization studies ("only the gather PC's accesses",
"only stores", "every 4th access") and for trace anonymization or
re-basing. All functions return new :class:`~repro.trace.trace.Trace`
objects; inputs are never mutated (records are immutable anyway).

Gap semantics: when accesses are dropped, their instruction gaps are
folded into the next surviving access, so total instruction counts are
preserved and MPKI stays meaningful.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import TraceError
from .record import AccessKind
from .trace import Trace


def _fold_gaps(gaps: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Gaps of kept accesses, with dropped accesses' gaps folded forward.

    The gap of each kept access becomes the sum of its own gap and the
    gaps of all dropped accesses since the previous kept one. Trailing
    dropped accesses (after the last kept one) are discarded, matching a
    trace that simply ends earlier.
    """
    cumulative = np.concatenate([[0], np.cumsum(gaps.astype(np.int64))])
    kept_idx = np.nonzero(keep)[0]
    ends = cumulative[kept_idx + 1]
    starts = np.concatenate([[0], ends[:-1]])
    return (ends - starts).astype(np.uint32)


def filter_trace(trace: Trace, keep: np.ndarray, name: str | None = None) -> Trace:
    """Keep only accesses where the boolean mask is True (gaps folded)."""
    keep = np.asarray(keep, dtype=bool)
    if len(keep) != len(trace):
        raise TraceError(
            f"mask length {len(keep)} does not match trace length {len(trace)}"
        )
    if not keep.any():
        raise TraceError("filter would drop every access")
    records = trace.records[keep].copy()
    records["gap"] = _fold_gaps(trace.gaps, keep)
    return Trace(records, name=name or f"{trace.name}|filtered", info=trace.info)


def filter_by_pc(trace: Trace, pcs: set[int] | list[int], name: str | None = None) -> Trace:
    """Only the accesses issued by the given PCs."""
    wanted = np.isin(trace.pcs, np.array(sorted(set(pcs)), dtype=np.uint64))
    return filter_trace(trace, wanted, name=name or f"{trace.name}|pcs")


def filter_by_kind(trace: Trace, kinds: set[AccessKind] | list[AccessKind],
                   name: str | None = None) -> Trace:
    """Only accesses of the given kinds (e.g. stores only)."""
    values = np.array(sorted(int(k) for k in kinds), dtype=np.uint8)
    return filter_trace(trace, np.isin(trace.kinds, values),
                        name=name or f"{trace.name}|kinds")


def filter_by_address_range(trace: Trace, low: int, high: int,
                            name: str | None = None) -> Trace:
    """Only accesses with ``low <= addr < high`` (one array's traffic)."""
    if high <= low:
        raise TraceError(f"empty address range [{low:#x}, {high:#x})")
    addrs = trace.addrs
    keep = (addrs >= np.uint64(low)) & (addrs < np.uint64(high))
    return filter_trace(trace, keep, name=name or f"{trace.name}|range")


def downsample(trace: Trace, step: int, name: str | None = None) -> Trace:
    """Every ``step``-th access (systematic sampling, gaps folded)."""
    if step < 1:
        raise TraceError(f"step must be >= 1, got {step}")
    keep = np.zeros(len(trace), dtype=bool)
    keep[::step] = True
    return filter_trace(trace, keep, name=name or f"{trace.name}|/{step}")


def rebase_addresses(trace: Trace, offset: int, name: str | None = None) -> Trace:
    """Shift every address by ``offset`` bytes (wrapping at 2^64)."""
    records = trace.records.copy()
    records["addr"] = records["addr"] + np.uint64(offset % (1 << 64))
    return Trace(records, name=name or f"{trace.name}|rebased", info=trace.info)


def remap_pcs(trace: Trace, mapping: Callable[[int], int],
              name: str | None = None) -> Trace:
    """Apply a PC-to-PC function (e.g. anonymization) to every record."""
    records = trace.records.copy()
    unique = np.unique(records["pc"])
    table = {int(pc): int(mapping(int(pc))) & ((1 << 64) - 1) for pc in unique}
    records["pc"] = np.array([table[int(pc)] for pc in records["pc"]],
                             dtype=np.uint64)
    return Trace(records, name=name or f"{trace.name}|remapped", info=trace.info)


def split_by_pc(trace: Trace) -> dict[int, Trace]:
    """One sub-trace per PC — the per-code-site decomposition used by
    the PC-characterization analyses."""
    out: dict[int, Trace] = {}
    for pc in np.unique(trace.pcs).tolist():
        out[int(pc)] = filter_by_pc(trace, [int(pc)],
                                    name=f"{trace.name}|pc={int(pc):#x}")
    return out
