"""Memory-access trace records.

A trace is a sequence of dynamic memory accesses, each annotated with the
program counter (PC) of the instruction that issued it, the access kind,
and the number of instructions retired since the previous memory access
(the *gap*). The gap stream is what lets the simulator recover the total
instruction count — and therefore MPKI and IPC — without storing every
non-memory instruction.

The on-disk and in-memory representation is a numpy structured array with
dtype :data:`TRACE_DTYPE`; the simulator hot loop reads the component
arrays directly, while user-facing code goes through
:class:`repro.trace.trace.Trace`.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

import numpy as np

#: Structured dtype of one trace record.
TRACE_DTYPE = np.dtype(
    [
        ("addr", np.uint64),  # byte address of the access
        ("pc", np.uint64),  # program counter of the issuing instruction
        ("kind", np.uint8),  # AccessKind value
        ("gap", np.uint32),  # instructions retired since previous access (>= 1)
    ]
)


class AccessKind(enum.IntEnum):
    """Kind of a memory access, mirroring ChampSim's access types."""

    LOAD = 0
    STORE = 1
    IFETCH = 2
    PREFETCH = 3
    WRITEBACK = 4

    @property
    def is_write(self) -> bool:
        """Whether the access modifies memory (stores and writebacks)."""
        return self in (AccessKind.STORE, AccessKind.WRITEBACK)


class Access(NamedTuple):
    """One decoded trace record.

    This is the convenience view used at API boundaries; the simulator core
    reads the raw structured array for speed.
    """

    addr: int
    pc: int
    kind: AccessKind
    gap: int

    @property
    def is_write(self) -> bool:
        """Whether the access modifies memory."""
        return AccessKind(self.kind).is_write


def make_records(
    addrs: np.ndarray,
    pcs: np.ndarray,
    kinds: np.ndarray,
    gaps: np.ndarray,
) -> np.ndarray:
    """Assemble component arrays into a structured record array.

    All four arrays must have the same length; values are cast to the
    field dtypes of :data:`TRACE_DTYPE`.
    """
    n = len(addrs)
    if not (len(pcs) == len(kinds) == len(gaps) == n):
        raise ValueError(
            "component arrays must have equal length: "
            f"addrs={len(addrs)} pcs={len(pcs)} kinds={len(kinds)} gaps={len(gaps)}"
        )
    records = np.empty(n, dtype=TRACE_DTYPE)
    records["addr"] = addrs
    records["pc"] = pcs
    records["kind"] = kinds
    records["gap"] = gaps
    return records
