"""The :class:`Trace` container.

A :class:`Trace` owns an immutable structured array of access records plus
human-facing metadata (a name and a free-form ``info`` dict recording, for
example, the graph parameters a GAP kernel ran on). Traces support
slicing, concatenation, and cheap component-array access for the
simulator hot loop.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Mapping

import numpy as np

from ..errors import TraceError
from .record import TRACE_DTYPE, Access, AccessKind, make_records


class Trace:
    """An immutable sequence of memory-access records with metadata.

    Parameters
    ----------
    records:
        Structured array with dtype :data:`~repro.trace.record.TRACE_DTYPE`.
    name:
        Short identifier, e.g. ``"gap.bfs.kron14"``.
    info:
        Optional metadata mapping (workload parameters, generator seeds).
    """

    def __init__(
        self,
        records: np.ndarray,
        name: str = "trace",
        info: Mapping[str, Any] | None = None,
    ) -> None:
        if records.dtype != TRACE_DTYPE:
            raise TraceError(
                f"records must have TRACE_DTYPE, got {records.dtype}"
            )
        if records.ndim != 1:
            raise TraceError(f"records must be 1-D, got shape {records.shape}")
        if len(records) and int(records["gap"].min()) < 1:
            raise TraceError("every record must have gap >= 1")
        self._records = records
        self._records.setflags(write=False)
        self.name = name
        self.info: dict[str, Any] = dict(info or {})
        self._digest: str | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        addrs: np.ndarray,
        pcs: np.ndarray,
        kinds: np.ndarray,
        gaps: np.ndarray,
        name: str = "trace",
        info: Mapping[str, Any] | None = None,
    ) -> "Trace":
        """Build a trace from separate component arrays."""
        return cls(make_records(addrs, pcs, kinds, gaps), name=name, info=info)

    @classmethod
    def concat(cls, traces: list["Trace"], name: str | None = None) -> "Trace":
        """Concatenate several traces into one.

        Metadata from the individual traces is kept under an ``"parts"``
        info key; gaps are preserved as-is so instruction counts add up.
        """
        if not traces:
            raise TraceError("cannot concatenate an empty list of traces")
        records = np.concatenate([t.records for t in traces])
        merged_name = name if name is not None else "+".join(t.name for t in traces)
        info = {"parts": [t.name for t in traces]}
        return cls(records, name=merged_name, info=info)

    # -- array access ----------------------------------------------------------

    @property
    def records(self) -> np.ndarray:
        """The underlying structured array (read-only)."""
        return self._records

    @property
    def addrs(self) -> np.ndarray:
        """Byte addresses, as a contiguous ``uint64`` array."""
        return np.ascontiguousarray(self._records["addr"])

    @property
    def pcs(self) -> np.ndarray:
        """Program counters, as a contiguous ``uint64`` array."""
        return np.ascontiguousarray(self._records["pc"])

    @property
    def kinds(self) -> np.ndarray:
        """Access kinds, as a contiguous ``uint8`` array."""
        return np.ascontiguousarray(self._records["kind"])

    @property
    def gaps(self) -> np.ndarray:
        """Instruction gaps, as a contiguous ``uint32`` array."""
        return np.ascontiguousarray(self._records["gap"])

    # -- basic protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Access]:
        for rec in self._records:
            yield Access(
                int(rec["addr"]), int(rec["pc"]), AccessKind(int(rec["kind"])), int(rec["gap"])
            )

    def __getitem__(self, index: int | slice) -> "Access | Trace":
        if isinstance(index, slice):
            return Trace(self._records[index].copy(), name=self.name, info=self.info)
        rec = self._records[index]
        return Access(
            int(rec["addr"]), int(rec["pc"]), AccessKind(int(rec["kind"])), int(rec["gap"])
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, accesses={len(self):,}, "
            f"instructions={self.num_instructions:,})"
        )

    # -- derived quantities ------------------------------------------------------

    @property
    def num_accesses(self) -> int:
        """Number of memory accesses in the trace."""
        return len(self._records)

    @property
    def num_instructions(self) -> int:
        """Total retired instructions represented by the trace."""
        return int(self._records["gap"].sum())

    def digest(self) -> str:
        """A stable content digest identifying this trace.

        SHA-256 over the trace name and the raw bytes of each component
        array (hashed per-component so structured-dtype padding can never
        leak in). Two traces with identical accesses and name share a
        digest across processes, platforms and numpy versions — the sweep
        engine keys its on-disk result cache on it. Memoized; traces are
        immutable so the digest never goes stale.
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(self.name.encode("utf-8"))
            for component in (self.addrs, self.pcs, self.kinds, self.gaps):
                h.update(b"\x00")
                h.update(np.ascontiguousarray(component).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def head(self, n: int) -> "Trace":
        """The first ``n`` accesses as a new trace."""
        return self[:n]  # type: ignore[return-value]

    def block_addrs(self, block_bits: int = 6) -> np.ndarray:
        """Addresses truncated to cache-block granularity (default 64 B)."""
        return self.addrs >> np.uint64(block_bits)

    def footprint_blocks(self, block_bits: int = 6) -> int:
        """Number of distinct cache blocks touched."""
        if not len(self):
            return 0
        return int(np.unique(self.block_addrs(block_bits)).size)

    def footprint_bytes(self, block_bits: int = 6) -> int:
        """Approximate footprint in bytes (distinct blocks x block size)."""
        return self.footprint_blocks(block_bits) << block_bits
