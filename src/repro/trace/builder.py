"""Incremental trace construction.

Workload tracers (the GAP kernels in particular) emit accesses phase by
phase. :class:`TraceBuilder` buffers appended chunks and materializes a
:class:`~repro.trace.trace.Trace` at the end, avoiding quadratic
concatenation. It accepts both single accesses (slow path, used in
data-dependent kernels) and whole numpy chunks (fast path, used for
vectorizable phases); small chunks are coalesced into an internal buffer
so per-vertex emission does not fragment the chunk list.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..errors import TraceError
from .record import TRACE_DTYPE, AccessKind, make_records
from .trace import Trace

_CHUNK = 65536


class TraceBuilder:
    """Accumulates access records and builds a :class:`Trace`.

    The builder tracks the *instruction gap* automatically: call
    :meth:`tick` to account for non-memory instructions executed between
    accesses, then :meth:`access` for each memory operation. Vectorized
    phases append pre-built arrays with :meth:`extend`.
    """

    def __init__(
        self,
        name: str = "trace",
        info: Mapping[str, Any] | None = None,
        limit: int | None = None,
    ) -> None:
        if limit is not None and limit < 1:
            raise TraceError(f"limit must be >= 1 or None, got {limit}")
        self.name = name
        self.info: dict[str, Any] = dict(info or {})
        self.limit = limit
        self._chunks: list[np.ndarray] = []
        self._stored = 0  # records inside _chunks (kept in sync, O(1) length)
        self._buf = np.empty(_CHUNK, dtype=TRACE_DTYPE)
        self._fill = 0
        self._pending_gap = 0

    @property
    def num_accesses(self) -> int:
        """Number of accesses recorded so far."""
        return self._stored + self._fill

    @property
    def full(self) -> bool:
        """Whether the access budget (``limit``) has been reached.

        Workload tracers use this to stop simulating-for-the-trace early:
        records appended once full are silently dropped, and the built
        trace is truncated to exactly ``limit`` accesses.
        """
        return self.limit is not None and self.num_accesses >= self.limit

    def tick(self, instructions: int = 1) -> None:
        """Account for ``instructions`` non-memory instructions."""
        if instructions < 0:
            raise TraceError(f"instruction count must be >= 0, got {instructions}")
        self._pending_gap += instructions

    def access(self, addr: int, pc: int, kind: AccessKind = AccessKind.LOAD) -> None:
        """Record one memory access.

        The access itself counts as one instruction, so the stored gap is
        the pending non-memory instruction count plus one.
        """
        if self.full:
            return
        if self._fill == _CHUNK:
            self._flush_buf()
        rec = self._buf[self._fill]
        rec["addr"] = addr
        rec["pc"] = pc
        rec["kind"] = int(kind)
        rec["gap"] = self._pending_gap + 1
        self._fill += 1
        self._pending_gap = 0

    def extend(
        self,
        addrs: np.ndarray,
        pcs: np.ndarray | int,
        kinds: np.ndarray | AccessKind = AccessKind.LOAD,
        gaps: np.ndarray | int = 1,
    ) -> None:
        """Append a chunk of accesses built vectorized.

        ``pcs``, ``kinds`` and ``gaps`` may be scalars, in which case they
        are broadcast over the chunk. A pending :meth:`tick` gap is folded
        into the first record of the chunk.
        """
        if self.full:
            return
        n = len(addrs)
        if n == 0:
            return
        first_gap_bonus = self._pending_gap
        self._pending_gap = 0
        # Small chunks go straight into the buffer — per-vertex emission
        # would otherwise fragment _chunks into hundreds of thousands of
        # tiny arrays and make build() quadratic-ish.
        if n <= _CHUNK - self._fill:
            view = self._buf[self._fill : self._fill + n]
            view["addr"] = addrs
            view["pc"] = pcs
            if isinstance(kinds, (int, AccessKind)):
                view["kind"] = int(kinds)
            else:
                view["kind"] = kinds
            view["gap"] = gaps
            if first_gap_bonus:
                view["gap"][0] += first_gap_bonus
            self._fill += n
            return
        pcs_arr = np.broadcast_to(np.asarray(pcs, dtype=np.uint64), (n,))
        kind_values = (
            int(kinds) if isinstance(kinds, (int, AccessKind)) else np.asarray(kinds)
        )
        kinds_arr = np.broadcast_to(np.asarray(kind_values, dtype=np.uint8), (n,))
        gaps_arr = np.array(np.broadcast_to(np.asarray(gaps, dtype=np.uint32), (n,)))
        if first_gap_bonus:
            gaps_arr = gaps_arr.copy()
            gaps_arr[0] += first_gap_bonus
        self._flush_buf()
        chunk = make_records(np.asarray(addrs, dtype=np.uint64), pcs_arr, kinds_arr, gaps_arr)
        self._chunks.append(chunk)
        self._stored += len(chunk)

    def _flush_buf(self) -> None:
        if self._fill:
            self._chunks.append(self._buf[: self._fill].copy())
            self._stored += self._fill
            self._fill = 0

    def build(self) -> Trace:
        """Materialize the accumulated records into a :class:`Trace`."""
        self._flush_buf()
        if self._chunks:
            records = np.concatenate(self._chunks)
        else:
            records = np.empty(0, dtype=TRACE_DTYPE)
        if self.limit is not None and len(records) > self.limit:
            records = records[: self.limit].copy()
        return Trace(records, name=self.name, info=self.info)
