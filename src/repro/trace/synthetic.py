"""Synthetic access-pattern primitives.

These generators produce the canonical memory-access structures of
CPU workloads — streaming scans, strided walks, resident working-set
loops, pointer chases, Zipf-skewed reuse — and combinators to mix them.
The SPEC proxy suite (:mod:`repro.spec`) composes these primitives into
named per-benchmark presets; tests use them directly as controlled
stimuli for caches and policies.

All generators are deterministic given a seed and return a
:class:`~repro.trace.trace.Trace`.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .record import AccessKind
from .trace import Trace

#: Default spacing between synthetic "code regions"; each logical stream
#: gets its own PC so PC-correlating policies see realistic signatures.
_PC_BASE = 0x400000
_PC_STRIDE = 0x40


def _make_trace(
    addrs: np.ndarray,
    pcs: np.ndarray,
    name: str,
    store_fraction: float = 0.0,
    gap: int = 4,
    seed: int = 0,
    info: dict | None = None,
) -> Trace:
    n = len(addrs)
    kinds = np.full(n, int(AccessKind.LOAD), dtype=np.uint8)
    if store_fraction > 0.0:
        rng = np.random.default_rng(seed ^ 0x5EED)
        kinds[rng.random(n) < store_fraction] = int(AccessKind.STORE)
    gaps = np.full(n, gap, dtype=np.uint32)
    return Trace.from_arrays(addrs, pcs, kinds, gaps, name=name, info=info)


def streaming(
    num_accesses: int,
    *,
    stride: int = 64,
    base: int = 0x10000000,
    pc: int = _PC_BASE,
    store_fraction: float = 0.0,
    gap: int = 4,
) -> Trace:
    """A pure sequential stream: no temporal reuse at all.

    Models the scan phases of streaming benchmarks (e.g. STREAM-like
    kernels, `libquantum`-style walks).
    """
    if num_accesses <= 0:
        raise WorkloadError("num_accesses must be positive")
    addrs = (base + stride * np.arange(num_accesses, dtype=np.uint64)).astype(np.uint64)
    pcs = np.full(num_accesses, pc, dtype=np.uint64)
    return _make_trace(addrs, pcs, "synthetic.streaming", store_fraction, gap)


def strided(
    num_accesses: int,
    *,
    stride: int,
    elements: int,
    base: int = 0x20000000,
    pc: int = _PC_BASE + _PC_STRIDE,
    gap: int = 4,
) -> Trace:
    """A strided walk that wraps around ``elements`` slots.

    With ``elements * stride`` larger than a cache, this defeats LRU (the
    classic cyclic-reuse pattern RRIP was designed for); smaller, it is
    cache-resident.
    """
    if stride <= 0 or elements <= 0:
        raise WorkloadError("stride and elements must be positive")
    idx = np.arange(num_accesses, dtype=np.uint64) % np.uint64(elements)
    addrs = (np.uint64(base) + idx * np.uint64(stride)).astype(np.uint64)
    pcs = np.full(num_accesses, pc, dtype=np.uint64)
    return _make_trace(addrs, pcs, "synthetic.strided", gap=gap)


def working_set_loop(
    num_accesses: int,
    *,
    set_bytes: int,
    base: int = 0x30000000,
    num_pcs: int = 8,
    seed: int = 1,
    store_fraction: float = 0.1,
    gap: int = 5,
) -> Trace:
    """Random accesses confined to a fixed working set.

    When ``set_bytes`` fits in a cache level this produces near-perfect
    hits there; sized between two levels, it isolates that boundary.
    Multiple PCs index disjoint halves so PC-based predictors can learn.
    """
    if set_bytes < 64:
        raise WorkloadError("set_bytes must be at least one block (64)")
    rng = np.random.default_rng(seed)
    num_blocks = max(1, set_bytes // 64)
    block_idx = rng.integers(0, num_blocks, size=num_accesses, dtype=np.uint64)
    addrs = (np.uint64(base) + block_idx * np.uint64(64)).astype(np.uint64)
    # Each PC is biased to its own region of the working set, giving the
    # PC→address correlation that signature-based policies exploit.
    pc_ids = (block_idx * np.uint64(num_pcs)) // np.uint64(num_blocks)
    pcs = (np.uint64(_PC_BASE) + pc_ids * np.uint64(_PC_STRIDE)).astype(np.uint64)
    return _make_trace(addrs, pcs, "synthetic.working_set", store_fraction, gap, seed)


def pointer_chase(
    num_accesses: int,
    *,
    num_nodes: int,
    base: int = 0x40000000,
    node_bytes: int = 64,
    pc: int = _PC_BASE + 2 * _PC_STRIDE,
    seed: int = 2,
    gap: int = 8,
) -> Trace:
    """A serial pointer chase through a random permutation cycle.

    Models linked-data-structure traversal (`mcf`-style): one load per
    node, no spatial locality, reuse distance equal to the structure size.
    """
    if num_nodes < 2:
        raise WorkloadError("num_nodes must be at least 2")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_nodes)
    # Walk the permutation cycle starting at perm[0].
    order = np.empty(num_accesses, dtype=np.uint64)
    node = 0
    for i in range(num_accesses):
        order[i] = node
        node = perm[node]
    addrs = (np.uint64(base) + order * np.uint64(node_bytes)).astype(np.uint64)
    pcs = np.full(num_accesses, pc, dtype=np.uint64)
    return _make_trace(addrs, pcs, "synthetic.pointer_chase", gap=gap)


def zipf_reuse(
    num_accesses: int,
    *,
    num_blocks: int,
    skew: float = 0.8,
    base: int = 0x50000000,
    num_pcs: int = 16,
    seed: int = 3,
    store_fraction: float = 0.05,
    gap: int = 4,
) -> Trace:
    """Zipf-skewed accesses: a hot subset plus a heavy cold tail.

    Models the frequency-skewed reuse of data-center / big-data codes;
    a good policy protects the hot head and bypasses the tail.
    """
    if num_blocks < 2:
        raise WorkloadError("num_blocks must be at least 2")
    if skew <= 0:
        raise WorkloadError("skew must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_blocks + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    block_idx = rng.choice(num_blocks, size=num_accesses, p=weights).astype(np.uint64)
    addrs = (np.uint64(base) + block_idx * np.uint64(64)).astype(np.uint64)
    pc_ids = block_idx % np.uint64(num_pcs)
    pcs = (np.uint64(_PC_BASE) + pc_ids * np.uint64(_PC_STRIDE)).astype(np.uint64)
    return _make_trace(addrs, pcs, "synthetic.zipf", store_fraction, gap, seed)


def random_uniform(
    num_accesses: int,
    *,
    footprint_bytes: int,
    base: int = 0x60000000,
    pc: int = _PC_BASE + 3 * _PC_STRIDE,
    seed: int = 4,
    gap: int = 4,
) -> Trace:
    """Uniformly random accesses over a large footprint — worst case.

    With a footprint far above LLC capacity this approximates the
    irregular property-array indexing of graph kernels: no policy can do
    better than the ratio of cache size to footprint.
    """
    num_blocks = max(1, footprint_bytes // 64)
    rng = np.random.default_rng(seed)
    block_idx = rng.integers(0, num_blocks, size=num_accesses, dtype=np.uint64)
    addrs = (np.uint64(base) + block_idx * np.uint64(64)).astype(np.uint64)
    pcs = np.full(num_accesses, pc, dtype=np.uint64)
    return _make_trace(addrs, pcs, "synthetic.random", gap=gap, seed=seed)


def interleave(traces: list[Trace], *, pattern: list[int] | None = None, name: str = "synthetic.mix") -> Trace:
    """Round-robin interleave several traces into one mixed stream.

    ``pattern`` gives the number of consecutive accesses taken from each
    trace per round (default: one from each). Interleaving stops when any
    component is exhausted, keeping phase proportions exact.
    """
    if not traces:
        raise WorkloadError("interleave needs at least one trace")
    if pattern is None:
        pattern = [1] * len(traces)
    if len(pattern) != len(traces) or any(p <= 0 for p in pattern):
        raise WorkloadError("pattern must give a positive count per trace")
    rounds = min(len(t) // p for t, p in zip(traces, pattern))
    if rounds == 0:
        raise WorkloadError("traces too short for the requested pattern")
    pieces = []
    for t, p in zip(traces, pattern):
        # reshape into (rounds, p) chunks
        pieces.append(t.records[: rounds * p].reshape(rounds, p))
    stacked = np.concatenate(pieces, axis=1).reshape(-1)
    return Trace(stacked.copy(), name=name, info={"parts": [t.name for t in traces]})


def phased(traces: list[Trace], name: str = "synthetic.phased") -> Trace:
    """Concatenate traces as sequential program phases."""
    return Trace.concat(traces, name=name)
