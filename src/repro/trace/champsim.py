"""ChampSim trace interchange.

The paper's experiments ran on ChampSim, whose input traces are flat
binary streams of 64-byte ``input_instr`` records::

    struct input_instr {
        uint64_t ip;
        uint8_t  is_branch, branch_taken;
        uint8_t  destination_registers[2];
        uint8_t  source_registers[4];
        uint64_t destination_memory[2];   // store addresses
        uint64_t source_memory[4];        // load addresses
    };

:func:`save_champsim_trace` converts a :class:`~repro.trace.trace.Trace`
into that layout (one instruction per memory access, plus optional
filler instructions reproducing the gap stream), and
:func:`load_champsim_trace` reads such files back — including files
produced by ChampSim's own tracer — recovering the (address, PC, kind,
gap) stream this library simulates. This allows cross-validation of the
Python simulator against the reference C++ one on identical inputs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from .record import AccessKind
from .trace import Trace

#: numpy dtype mirroring ChampSim's ``input_instr`` (packed, 64 bytes).
CHAMPSIM_DTYPE = np.dtype(
    [
        ("ip", np.uint64),
        ("is_branch", np.uint8),
        ("branch_taken", np.uint8),
        ("destination_registers", np.uint8, (2,)),
        ("source_registers", np.uint8, (4,)),
        ("destination_memory", np.uint64, (2,)),
        ("source_memory", np.uint64, (4,)),
    ]
)

assert CHAMPSIM_DTYPE.itemsize == 64, "input_instr must pack to 64 bytes"

#: IP used for synthetic filler (non-memory) instructions.
FILLER_IP = 0x00DEAD00


def save_champsim_trace(
    trace: Trace, path: str | Path, expand_gaps: bool = True
) -> Path:
    """Write ``trace`` as a ChampSim ``input_instr`` stream.

    With ``expand_gaps`` (default), each record's instruction gap is
    materialized as ``gap - 1`` filler instructions before the memory
    instruction, so instruction counts — hence MPKI/IPC — agree between
    simulators. With ``expand_gaps=False`` only memory instructions are
    written (smaller files, gap information lost).
    """
    path = Path(path)
    n = len(trace)
    gaps = trace.gaps.astype(np.int64)
    total = int(gaps.sum()) if expand_gaps else n
    records = np.zeros(total, dtype=CHAMPSIM_DTYPE)

    if expand_gaps:
        mem_positions = np.cumsum(gaps) - 1
        records["ip"][:] = FILLER_IP
        # Source register so fillers decode as simple ALU ops.
        records["source_registers"][:, 0] = 1
    else:
        mem_positions = np.arange(n)

    records["ip"][mem_positions] = trace.pcs
    kinds = trace.kinds
    is_store = (kinds == AccessKind.STORE) | (kinds == AccessKind.WRITEBACK)
    store_pos = mem_positions[is_store]
    load_pos = mem_positions[~is_store]
    records["destination_memory"][store_pos, 0] = trace.addrs[is_store]
    records["source_memory"][load_pos, 0] = trace.addrs[~is_store]
    # IFETCH has no ChampSim memory-operand encoding; it is represented
    # as a load at the fetch address (the usual trace-conversion choice).
    records.tofile(path)
    return path


def load_champsim_trace(path: str | Path, name: str | None = None) -> Trace:
    """Read a ChampSim ``input_instr`` stream into a :class:`Trace`.

    Every memory operand becomes one access record (loads from
    ``source_memory``, stores from ``destination_memory``); instructions
    without memory operands accumulate into the next record's gap.
    """
    path = Path(path)
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size % CHAMPSIM_DTYPE.itemsize:
        raise TraceFormatError(
            f"{path}: size {raw.size} is not a multiple of the 64-byte "
            "input_instr record"
        )
    records = raw.view(CHAMPSIM_DTYPE)
    if len(records) == 0:
        raise TraceFormatError(f"{path}: empty ChampSim trace")

    addrs: list[int] = []
    pcs: list[int] = []
    kinds: list[int] = []
    gaps: list[int] = []
    pending = 0
    for rec in records:
        ops: list[tuple[int, int]] = []
        for addr in rec["source_memory"]:
            if addr:
                ops.append((int(addr), int(AccessKind.LOAD)))
        for addr in rec["destination_memory"]:
            if addr:
                ops.append((int(addr), int(AccessKind.STORE)))
        if not ops:
            pending += 1
            continue
        ip = int(rec["ip"])
        for i, (addr, kind) in enumerate(ops):
            addrs.append(addr)
            pcs.append(ip)
            kinds.append(kind)
            # The instruction itself counts once; extra operands of the
            # same instruction carry gap 1.
            gaps.append(pending + 1 if i == 0 else 1)
        pending = 0

    if not addrs:
        raise TraceFormatError(f"{path}: trace contains no memory operands")
    return Trace.from_arrays(
        np.array(addrs, dtype=np.uint64),
        np.array(pcs, dtype=np.uint64),
        np.array(kinds, dtype=np.uint8),
        np.array(gaps, dtype=np.uint32),
        name=name or path.stem,
        info={"source": "champsim", "instructions": int(len(records))},
    )
