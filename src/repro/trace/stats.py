"""Descriptive statistics over traces.

These are the trace-level (pre-simulation) characterization numbers the
paper uses to explain *why* PC-correlating replacement policies fail on
graph workloads: how many distinct PCs a workload has, how many distinct
addresses each PC touches, and how the access mix is composed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .record import AccessKind
from .trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace.

    Attributes
    ----------
    num_accesses / num_instructions:
        Raw sizes.
    load_fraction / store_fraction / ifetch_fraction:
        Access-mix composition (fractions of all accesses).
    footprint_blocks:
        Distinct 64-byte blocks touched.
    num_pcs:
        Distinct program counters issuing accesses.
    mean_blocks_per_pc / max_blocks_per_pc:
        Address-cardinality per PC — the paper's key characterization
        metric (GAP kernels: few PCs, each with a huge footprint).
    pc_entropy_bits:
        Shannon entropy of the PC distribution, in bits.
    accesses_per_kilo_instruction:
        Memory intensity (APKI).
    """

    num_accesses: int
    num_instructions: int
    load_fraction: float
    store_fraction: float
    ifetch_fraction: float
    footprint_blocks: int
    num_pcs: int
    mean_blocks_per_pc: float
    max_blocks_per_pc: int
    pc_entropy_bits: float
    accesses_per_kilo_instruction: float
    blocks_per_pc: dict[int, int] = field(repr=False, default_factory=dict)


def compute_trace_stats(trace: Trace, block_bits: int = 6) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``.

    ``block_bits`` selects the block granularity used for footprint and
    per-PC cardinality (default 64-byte blocks, matching the simulator).
    """
    n = len(trace)
    if n == 0:
        return TraceStats(0, 0, 0.0, 0.0, 0.0, 0, 0, 0.0, 0, 0.0, 0.0)

    kinds = trace.kinds
    load_frac = float(np.count_nonzero(kinds == AccessKind.LOAD) / n)
    store_frac = float(np.count_nonzero(kinds == AccessKind.STORE) / n)
    ifetch_frac = float(np.count_nonzero(kinds == AccessKind.IFETCH) / n)

    blocks = trace.block_addrs(block_bits)
    footprint = int(np.unique(blocks).size)

    pcs = trace.pcs
    unique_pcs, pc_counts = np.unique(pcs, return_counts=True)
    probs = pc_counts / n
    entropy = float(-(probs * np.log2(probs)).sum())

    # Distinct blocks per PC: sort (pc, block) pairs and count unique pairs
    # per PC group. Vectorized to stay fast on multi-million-access traces.
    order = np.lexsort((blocks, pcs))
    sorted_pcs = pcs[order]
    sorted_blocks = blocks[order]
    new_pair = np.empty(n, dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (sorted_pcs[1:] != sorted_pcs[:-1]) | (
        sorted_blocks[1:] != sorted_blocks[:-1]
    )
    pair_pcs = sorted_pcs[new_pair]
    per_pc_unique: dict[int, int] = {}
    pcs_of_pairs, counts_of_pairs = np.unique(pair_pcs, return_counts=True)
    for pc, count in zip(pcs_of_pairs.tolist(), counts_of_pairs.tolist()):
        per_pc_unique[int(pc)] = int(count)

    blocks_per_pc = np.array(list(per_pc_unique.values()), dtype=np.int64)
    instructions = trace.num_instructions

    return TraceStats(
        num_accesses=n,
        num_instructions=instructions,
        load_fraction=load_frac,
        store_fraction=store_frac,
        ifetch_fraction=ifetch_frac,
        footprint_blocks=footprint,
        num_pcs=int(unique_pcs.size),
        mean_blocks_per_pc=float(blocks_per_pc.mean()),
        max_blocks_per_pc=int(blocks_per_pc.max()),
        pc_entropy_bits=entropy,
        accesses_per_kilo_instruction=1000.0 * n / instructions,
        blocks_per_pc=per_pc_unique,
    )
