"""Trace infrastructure: records, containers, IO, statistics, synthesis."""

from .builder import TraceBuilder
from .champsim import CHAMPSIM_DTYPE, load_champsim_trace, save_champsim_trace
from .filters import (
    downsample,
    filter_by_address_range,
    filter_by_kind,
    filter_by_pc,
    filter_trace,
    rebase_addresses,
    remap_pcs,
    split_by_pc,
)
from .io import load_trace, save_trace
from .record import TRACE_DTYPE, Access, AccessKind, make_records
from .stats import TraceStats, compute_trace_stats
from .trace import Trace

__all__ = [
    "TRACE_DTYPE",
    "Access",
    "AccessKind",
    "Trace",
    "TraceBuilder",
    "TraceStats",
    "compute_trace_stats",
    "load_trace",
    "make_records",
    "save_trace",
    "CHAMPSIM_DTYPE",
    "load_champsim_trace",
    "save_champsim_trace",
    "filter_trace",
    "filter_by_pc",
    "filter_by_kind",
    "filter_by_address_range",
    "downsample",
    "rebase_addresses",
    "remap_pcs",
    "split_by_pc",
]
