"""Composite access-pattern builders for the SPEC proxies.

Each SPEC CPU benchmark's cache behaviour, at the granularity that
matters for LLC replacement studies, is a composition of a small number
of canonical structures: resident working sets with PC-correlated reuse,
one-shot streaming scans, strided array walks, pointer chases, and
Zipf-skewed hot/cold mixes. These builders compose the primitives from
:mod:`repro.trace.synthetic` into those shapes.

The constructions deliberately contain the structure PC-correlating
policies (SHiP, Hawkeye, Glider, MPPPB) were designed to exploit — each
logical stream has its own small PC set, and reuse behaviour is
consistent per PC — because that is the property of SPEC workloads the
paper contrasts against graph processing.
"""

from __future__ import annotations

from ..trace import synthetic
from ..trace.trace import Trace

KIB = 1024
MIB = 1024 * KIB


def scan_plus_resident(
    num_accesses: int,
    resident_bytes: int,
    scan_fraction: float = 0.5,
    seed: int = 0,
    name: str = "scan+resident",
) -> Trace:
    """A resident working set polluted by a one-shot streaming scan.

    The canonical LRU-defeating mix: the scan evicts the resident set
    under LRU, while scan-resistant and PC-predicting policies keep it.
    ``scan_fraction`` sets the share of accesses belonging to the scan.
    """
    scan_every = max(1, round(1.0 / max(scan_fraction, 1e-6)) - 1)
    ws = synthetic.working_set_loop(
        num_accesses, set_bytes=resident_bytes, seed=seed, num_pcs=12
    )
    scan = synthetic.streaming(num_accesses, stride=64, base=0x7000_0000 + seed * (1 << 32))
    return synthetic.interleave([ws, scan], pattern=[scan_every, 1], name=name)


def thrash_cycle(
    num_accesses: int,
    cycle_bytes: int,
    seed: int = 0,
    name: str = "thrash",
) -> Trace:
    """A cyclic working set larger than the cache — LRU's worst case.

    BIP/BRRIP-style bimodal insertion retains a useful fraction; LRU
    retains nothing. Used for the DRRIP/set-duelling experiments.
    """
    return synthetic.strided(
        num_accesses, stride=64, elements=max(2, cycle_bytes // 64),
        base=0x9000_0000 + seed * (1 << 32),
    )


def pointer_working_set(
    num_accesses: int,
    structure_bytes: int,
    resident_bytes: int,
    seed: int = 0,
    name: str = "pointer+resident",
) -> Trace:
    """A pointer chase over a big structure mixed with hot metadata.

    Models `mcf`-class behaviour: serial dependent loads over a structure
    far above LLC capacity, interleaved with reused bookkeeping data.
    """
    chase = synthetic.pointer_chase(
        num_accesses, num_nodes=max(2, structure_bytes // 64), seed=seed
    )
    meta = synthetic.working_set_loop(
        num_accesses, set_bytes=resident_bytes, seed=seed + 1, num_pcs=6,
        base=0xA000_0000 + seed * (1 << 32),
    )
    return synthetic.interleave([chase, meta], pattern=[1, 2], name=name)


def skewed_reuse(
    num_accesses: int,
    footprint_bytes: int,
    skew: float = 0.9,
    seed: int = 0,
    name: str = "skewed",
) -> Trace:
    """Zipf-skewed reuse over a footprint above LLC size.

    Models the hot-head/cold-tail mixes of `omnetpp`/`xalancbmk`-class
    codes; good policies protect the head.
    """
    return synthetic.zipf_reuse(
        num_accesses, num_blocks=max(2, footprint_bytes // 64), skew=skew, seed=seed,
        base=0xB000_0000 + seed * (1 << 32),
    )


def banded_stride(
    num_accesses: int,
    band_bytes: int,
    num_bands: int = 4,
    seed: int = 0,
    name: str = "banded",
) -> Trace:
    """Several interleaved strided walks over separate bands.

    Models multi-array stencil codes (`bwaves`/`lbm`-class): each band is
    sequential, the interleaving stresses way-allocation.
    """
    bands = [
        synthetic.streaming(
            num_accesses // num_bands,
            stride=64,
            base=0xC000_0000 + (seed * num_bands + i) * (1 << 32),
            pc=0x400000 + 0x40 * (16 + i),
        )
        for i in range(num_bands)
    ]
    return synthetic.interleave(bands, name=name)


def phased_mix(
    num_accesses: int,
    resident_bytes: int,
    scan_bytes: int,
    seed: int = 0,
    name: str = "phased",
) -> Trace:
    """Alternating compute-resident and scan phases (`gcc`-class).

    Phase changes are where set-duelling policies pay their adaptation
    latency; included so DRRIP's PSEL dynamics get exercised.
    """
    per_phase = max(1, num_accesses // 4)
    phases = [
        synthetic.working_set_loop(
            per_phase, set_bytes=resident_bytes, seed=seed, num_pcs=10
        ),
        synthetic.strided(
            per_phase, stride=64, elements=max(2, scan_bytes // 64),
            base=0xD000_0000 + seed * (1 << 32),
        ),
        synthetic.working_set_loop(
            per_phase, set_bytes=resident_bytes, seed=seed + 2, num_pcs=10
        ),
        synthetic.streaming(
            per_phase, stride=64, base=0xE000_0000 + seed * (1 << 32)
        ),
    ]
    return synthetic.phased(phases, name=name)
