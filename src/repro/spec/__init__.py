"""SPEC CPU 2006/2017 proxy workloads (documented substitution)."""

from .patterns import (
    banded_stride,
    phased_mix,
    pointer_working_set,
    scan_plus_resident,
    skewed_reuse,
    thrash_cycle,
)
from .suite import (
    DEFAULT_ACCESSES,
    build_spec_workload,
    spec06_workloads,
    spec17_workloads,
    spec_suite,
)

__all__ = [
    "banded_stride",
    "phased_mix",
    "pointer_working_set",
    "scan_plus_resident",
    "skewed_reuse",
    "thrash_cycle",
    "DEFAULT_ACCESSES",
    "build_spec_workload",
    "spec06_workloads",
    "spec17_workloads",
    "spec_suite",
]
