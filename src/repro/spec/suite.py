"""SPEC CPU 2006 / 2017 proxy suites.

The paper's Figure 3 compares replacement policies on SPEC 2006, SPEC
2017 and GAP. SPEC binaries and the authors' traces are proprietary, so
— per the substitution rule in DESIGN.md — each memory-intensive SPEC
benchmark commonly used in LLC replacement studies is represented by a
synthetic proxy reproducing its published cache-behaviour class:

==============  ====================================================
proxy           behaviour class it reproduces
==============  ====================================================
mcf             pointer chase over a huge structure + hot metadata
omnetpp         Zipf-skewed event-queue reuse above LLC size
xalancbmk       skewed reuse, many PCs, moderate footprint
soplex          scan + resident working set (sparse LP matrices)
sphinx3         resident set slightly above LLC ("borderline fit")
libquantum      pure streaming (no reuse at LLC)
gcc             phased compute/scan mix
bwaves          banded multi-array streaming stencils
milc            cyclic working set above LLC (thrash; BIP-friendly)
lbm             store-heavy streaming bands
cactusADM       strided scientific working set near LLC size
gems            large strided walks with periodic reuse
==============  ====================================================

The 2017 suite reuses the classes of its 2006 ancestors where the
benchmark carried over (mcf_r, omnetpp_r, ...), with different sizes and
seeds, plus the new memory-heavy entries (roms, pop2, blender-class
resident mixes). Workload names carry the suite prefix so harness output
reads like the paper's.
"""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from ..trace import synthetic
from ..trace.trace import Trace
from .patterns import (
    KIB,
    MIB,
    banded_stride,
    phased_mix,
    pointer_working_set,
    scan_plus_resident,
    skewed_reuse,
    thrash_cycle,
)

#: Default accesses per proxy workload.
DEFAULT_ACCESSES = 300_000


def _rename(trace: Trace, name: str) -> Trace:
    trace.name = name
    return trace


_SPEC06_BUILDERS: dict[str, Callable[[int], Trace]] = {
    "mcf": lambda n: pointer_working_set(
        n, structure_bytes=8 * MIB, resident_bytes=256 * KIB, seed=6
    ),
    "omnetpp": lambda n: skewed_reuse(n, footprint_bytes=4 * MIB, skew=0.95, seed=7),
    "xalancbmk": lambda n: skewed_reuse(n, footprint_bytes=2 * MIB, skew=1.1, seed=8),
    "soplex": lambda n: scan_plus_resident(
        n, resident_bytes=1 * MIB, scan_fraction=0.4, seed=9
    ),
    "sphinx3": lambda n: synthetic.working_set_loop(
        n, set_bytes=2 * MIB, seed=10, num_pcs=24
    ),
    "libquantum": lambda n: synthetic.streaming(n, stride=64, base=0x1_2000_0000),
    "gcc": lambda n: phased_mix(n, resident_bytes=768 * KIB, scan_bytes=4 * MIB, seed=11),
    "bwaves": lambda n: banded_stride(n, band_bytes=4 * MIB, num_bands=4, seed=12),
    "milc": lambda n: thrash_cycle(n, cycle_bytes=3 * MIB, seed=13),
    "lbm": lambda n: banded_stride(n, band_bytes=8 * MIB, num_bands=2, seed=14),
    "cactusADM": lambda n: synthetic.working_set_loop(
        n, set_bytes=1536 * KIB, seed=15, num_pcs=16
    ),
    "GemsFDTD": lambda n: scan_plus_resident(
        n, resident_bytes=1280 * KIB, scan_fraction=0.55, seed=16
    ),
}

_SPEC17_BUILDERS: dict[str, Callable[[int], Trace]] = {
    "mcf_r": lambda n: pointer_working_set(
        n, structure_bytes=12 * MIB, resident_bytes=384 * KIB, seed=26
    ),
    "omnetpp_r": lambda n: skewed_reuse(n, footprint_bytes=6 * MIB, skew=0.9, seed=27),
    "xalancbmk_r": lambda n: skewed_reuse(n, footprint_bytes=3 * MIB, skew=1.05, seed=28),
    "gcc_r": lambda n: phased_mix(
        n, resident_bytes=1 * MIB, scan_bytes=6 * MIB, seed=29
    ),
    "lbm_r": lambda n: banded_stride(n, band_bytes=12 * MIB, num_bands=3, seed=30),
    "cactuBSSN_r": lambda n: synthetic.working_set_loop(
        n, set_bytes=1792 * KIB, seed=31, num_pcs=20
    ),
    "roms_r": lambda n: banded_stride(n, band_bytes=6 * MIB, num_bands=5, seed=32),
    "pop2_s": lambda n: scan_plus_resident(
        n, resident_bytes=1152 * KIB, scan_fraction=0.45, seed=33
    ),
    "x264_r": lambda n: synthetic.working_set_loop(
        n, set_bytes=896 * KIB, seed=34, num_pcs=32
    ),
    "deepsjeng_r": lambda n: skewed_reuse(
        n, footprint_bytes=1792 * KIB, skew=1.2, seed=35
    ),
    "blender_r": lambda n: phased_mix(
        n, resident_bytes=1280 * KIB, scan_bytes=5 * MIB, seed=36
    ),
    "fotonik3d_r": lambda n: thrash_cycle(n, cycle_bytes=4 * MIB, seed=37),
}


def spec06_workloads() -> list[str]:
    """Proxy names of the SPEC CPU 2006 suite."""
    return sorted(_SPEC06_BUILDERS)


def spec17_workloads() -> list[str]:
    """Proxy names of the SPEC CPU 2017 suite."""
    return sorted(_SPEC17_BUILDERS)


def build_spec_workload(
    suite: str, name: str, num_accesses: int = DEFAULT_ACCESSES
) -> Trace:
    """Build one proxy trace, named ``"<suite>.<benchmark>"``."""
    builders = {"spec06": _SPEC06_BUILDERS, "spec17": _SPEC17_BUILDERS}.get(suite)
    if builders is None:
        raise WorkloadError(f"unknown suite {suite!r}; expected spec06 or spec17")
    builder = builders.get(name)
    if builder is None:
        raise WorkloadError(
            f"unknown {suite} workload {name!r}; available: {', '.join(sorted(builders))}"
        )
    if num_accesses < 1:
        raise WorkloadError("num_accesses must be positive")
    return _rename(builder(num_accesses), f"{suite}.{name}")


def spec_suite(
    suite: str = "spec06",
    num_accesses: int = DEFAULT_ACCESSES,
    workloads: list[str] | None = None,
) -> dict[str, Trace]:
    """All (or selected) proxies of one suite, keyed by qualified name."""
    names = workloads or (
        spec06_workloads() if suite == "spec06" else spec17_workloads()
    )
    return {
        f"{suite}.{name}": build_spec_workload(suite, name, num_accesses)
        for name in names
    }
