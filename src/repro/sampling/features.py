"""BBV-like per-window feature vectors for interval clustering.

Each fixed-size access window of a trace gets one feature vector built
from two parts:

* the behaviour metrics :mod:`repro.analysis.phases` already computes
  per window (footprint, store fraction, PC count, new-block fraction),
  normalized per dimension by the maximum observed magnitude, and
* a bucketed program-counter histogram — the memory-access analogue of
  SimPoint's basic-block vector: windows dominated by the same code
  regions land in the same buckets.

PC bucketing uses a fixed multiplicative hash (the 64-bit golden-ratio
constant) rather than Python's builtin ``hash``, which is salted per
process: feature vectors must be identical across worker processes for
a parallel sweep to select the same intervals as a serial one.
"""

from __future__ import annotations

import numpy as np

from ..analysis.phases import profile_windows
from ..trace.trace import Trace

#: Number of PC histogram buckets appended to each behaviour vector.
PC_BUCKETS = 16

#: Fixed multiplicative mixing constant (2^64 / golden ratio). The
#: bucket of a PC is the top ``log2(PC_BUCKETS)`` bits of ``pc * MIX``
#: mod 2^64 — deterministic across processes and platforms, unlike
#: Python's per-process-salted ``hash``.
PC_HASH_MIX = 0x9E3779B97F4A7C15


def pc_bucket_histogram(pcs: np.ndarray, buckets: int = PC_BUCKETS) -> np.ndarray:
    """Normalized histogram of hashed PC buckets for one window."""
    shift = np.uint64(64 - int(buckets).bit_length() + 1)
    mixed = (pcs.astype(np.uint64) * np.uint64(PC_HASH_MIX)) >> shift
    hist = np.bincount(mixed.astype(np.int64), minlength=buckets).astype(np.float64)
    total = hist.sum()
    if total > 0:
        hist /= total
    return hist


def window_features(
    trace: Trace, window_size: int, first_start: int = 0
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Feature vectors for every window starting at or after ``first_start``.

    Returns ``(vectors, spans)`` where ``vectors[i]`` is the feature
    vector of the window covering trace records ``spans[i] = (start,
    stop)``. Windows beginning before ``first_start`` (the full-run
    warm-up region) are excluded so sampling measures the same region a
    full simulation does; when *every* window falls inside the warm-up
    region (trace shorter than one window), all windows are kept so a
    degenerate trace still yields a plan.
    """
    profiles = profile_windows(trace, window_size)
    eligible = [p for p in profiles if p.start >= first_start]
    if not eligible:
        eligible = profiles
    base = np.stack([p.vector() for p in eligible])
    scale = np.maximum(np.abs(base).max(axis=0), 1e-9)
    base = base / scale
    pcs = trace.pcs
    histograms = []
    spans: list[tuple[int, int]] = []
    for profile in eligible:
        stop = min(profile.start + window_size, len(trace))
        histograms.append(pc_bucket_histogram(pcs[profile.start:stop]))
        spans.append((profile.start, stop))
    return np.hstack([base, np.stack(histograms)]), spans
