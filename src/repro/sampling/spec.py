"""Sampling specification: what a sampled simulation is keyed on.

A :class:`SamplingSpec` is the complete, JSON-serializable description
of one representative-interval sampling configuration. It rides inside
the sweep engine's cell key (:func:`repro.harness.engine.cell_key`), so
two sweeps that sample differently can never collide in the on-disk
result cache, and a spec round-trips losslessly through JSON for the
CLI and the validation recorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError

#: Version of the spec's JSON representation (part of cell cache keys).
SPEC_SCHEMA_VERSION = 1

#: Floor on the auto-sized measurement window, in accesses. Windows
#: below this measure too little to be statistically meaningful even on
#: tiny smoke traces.
MIN_AUTO_WINDOW = 250


@dataclass(frozen=True)
class SamplingSpec:
    """Configuration of representative-interval sampling.

    Parameters
    ----------
    intervals:
        Number of clusters k — at most this many representative
        intervals are simulated (fewer when the trace has fewer
        windows, or when k-means leaves clusters empty).
    window_size:
        Accesses per interval window. ``0`` (the default) auto-sizes
        the window from the trace length so that simulating
        ``intervals`` representatives (warm-up windows included) costs
        at most ``1/target_reduction`` of a full run.
    warm_windows:
        Windows of real simulation run immediately before each measured
        interval (on top of the synthesized warm state) to settle DRAM
        row buffers, queues and policy recency state.
    seed:
        Seed of the deterministic k-means clustering. Fixed seed =>
        bit-identical interval selection and recombined results.
    target_reduction:
        The trace-reduction factor the auto window sizing aims for.
        Ignored when ``window_size`` is explicit.
    """

    intervals: int = 4
    window_size: int = 0
    warm_windows: int = 1
    seed: int = 0
    target_reduction: int = 12

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise ConfigurationError(
                f"sampling intervals must be >= 1, got {self.intervals}"
            )
        if self.window_size < 0:
            raise ConfigurationError(
                f"sampling window_size must be >= 0 (0 = auto), "
                f"got {self.window_size}"
            )
        if self.warm_windows < 0:
            raise ConfigurationError(
                f"sampling warm_windows must be >= 0, got {self.warm_windows}"
            )
        if self.target_reduction < 2:
            raise ConfigurationError(
                f"sampling target_reduction must be >= 2, "
                f"got {self.target_reduction}"
            )

    def effective_window(self, trace_accesses: int) -> int:
        """The window size used for a trace of ``trace_accesses`` records.

        Auto sizing solves ``intervals * (warm_windows + 1) * window <=
        trace_accesses / target_reduction`` for the window, floored at
        :data:`MIN_AUTO_WINDOW` so degenerate traces still get a usable
        window.
        """
        if self.window_size > 0:
            return self.window_size
        budget = self.intervals * (self.warm_windows + 1) * self.target_reduction
        return max(MIN_AUTO_WINDOW, trace_accesses // max(budget, 1))

    def to_json_dict(self) -> dict[str, Any]:
        """Canonical JSON form (embedded in sweep cell cache keys)."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "intervals": self.intervals,
            "window_size": self.window_size,
            "warm_windows": self.warm_windows,
            "seed": self.seed,
            "target_reduction": self.target_reduction,
        }

    @classmethod
    def from_json_dict(cls, doc: dict[str, Any]) -> "SamplingSpec":
        """Rebuild a spec from :meth:`to_json_dict` output."""
        version = doc.get("schema_version")
        if version != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"sampling spec has schema_version={version!r}, "
                f"this build reads {SPEC_SCHEMA_VERSION}"
            )
        return cls(
            intervals=int(doc["intervals"]),
            window_size=int(doc["window_size"]),
            warm_windows=int(doc["warm_windows"]),
            seed=int(doc["seed"]),
            target_reduction=int(doc["target_reduction"]),
        )

    @classmethod
    def from_string(cls, text: str) -> "SamplingSpec":
        """Parse a CLI spec string into a :class:`SamplingSpec`.

        ``"default"`` (or the empty string) yields the default spec;
        otherwise the string is comma-separated ``key=value`` pairs with
        the keys ``k`` (intervals), ``window``, ``warm``, ``seed`` and
        ``reduction``, e.g. ``"k=4,window=0,warm=1,seed=0"``.
        """
        text = text.strip()
        if text in ("", "default"):
            return cls()
        values: dict[str, int] = {}
        aliases = {
            "k": "intervals",
            "intervals": "intervals",
            "window": "window_size",
            "window_size": "window_size",
            "warm": "warm_windows",
            "warm_windows": "warm_windows",
            "seed": "seed",
            "reduction": "target_reduction",
            "target_reduction": "target_reduction",
        }
        for part in text.split(","):
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in aliases:
                raise ConfigurationError(
                    f"bad sampling spec element {part!r}; expected "
                    "comma-separated key=value pairs with keys "
                    "k, window, warm, seed, reduction (or 'default')"
                )
            try:
                values[aliases[key]] = int(raw.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad sampling spec value {part!r}: not an integer"
                ) from exc
        return cls(**values)

    def describe(self) -> str:
        """One-line human-readable form (CLI output)."""
        window = self.window_size if self.window_size else "auto"
        return (
            f"k={self.intervals} window={window} warm={self.warm_windows} "
            f"seed={self.seed} target_reduction={self.target_reduction}x"
        )
