"""Sampling specification: what a sampled simulation is keyed on.

A :class:`SamplingSpec` is the complete, JSON-serializable description
of one representative-interval sampling configuration. It rides inside
the sweep engine's cell key (:func:`repro.harness.engine.cell_key`), so
two sweeps that sample differently can never collide in the on-disk
result cache, and a spec round-trips losslessly through JSON for the
CLI and the validation recorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError

#: Version of the spec's JSON representation (part of cell cache keys).
SPEC_SCHEMA_VERSION = 2

#: Floor on the auto-sized measurement window, in accesses. Windows
#: below this measure too little to be statistically meaningful even on
#: tiny smoke traces.
MIN_AUTO_WINDOW = 250

#: Warm-state synthesis strategies the executor implements:
#:
#: * ``"recency"`` — rebuild per-level content from trace recency only
#:   (MTR-style); right for recency-family policies, blind to learned
#:   predictor tables.
#: * ``"replay"`` — recency content plus a training-only functional
#:   replay of the last ``replay_windows`` windows of the skipped
#:   region, driving the policy's training hooks without timing.
#: * ``"checkpoint"`` — recency content plus predictor tables restored
#:   from a functional pass over the trace prefix, captured once per
#:   (trace, policy, config, boundaries) and reused across runs.
SYNTHESIS_STRATEGIES = ("recency", "replay", "checkpoint")


@dataclass(frozen=True)
class SamplingSpec:
    """Configuration of representative-interval sampling.

    Parameters
    ----------
    intervals:
        Number of clusters k — at most this many representative
        intervals are simulated (fewer when the trace has fewer
        windows, or when k-means leaves clusters empty).
    window_size:
        Accesses per interval window. ``0`` (the default) auto-sizes
        the window from the trace length so that simulating
        ``intervals`` representatives (warm-up windows included) costs
        at most ``1/target_reduction`` of a full run.
    warm_windows:
        Windows of real simulation run immediately before each measured
        interval (on top of the synthesized warm state) to settle DRAM
        row buffers, queues and policy recency state.
    seed:
        Seed of the deterministic k-means clustering. Fixed seed =>
        bit-identical interval selection and recombined results.
    target_reduction:
        The trace-reduction factor the auto window sizing aims for.
        Ignored when ``window_size`` is explicit.
    warm_synthesis:
        Warm-state synthesis strategy, one of
        :data:`SYNTHESIS_STRATEGIES`. ``"recency"`` rebuilds cache
        content only; ``"replay"`` additionally drives the policy's
        training hooks over a bounded suffix of the skipped region;
        ``"checkpoint"`` restores predictor tables captured at interval
        boundaries by a functional pass over the trace prefix.
    replay_windows:
        For ``warm_synthesis="replay"``: how many windows of the
        skipped region are functionally replayed (training only, no
        timing) before each measured interval. Ignored by the other
        strategies.
    """

    intervals: int = 4
    window_size: int = 0
    warm_windows: int = 1
    seed: int = 0
    target_reduction: int = 12
    warm_synthesis: str = "recency"
    replay_windows: int = 4

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise ConfigurationError(
                f"sampling intervals must be >= 1, got {self.intervals}"
            )
        if self.window_size < 0:
            raise ConfigurationError(
                f"sampling window_size must be >= 0 (0 = auto), "
                f"got {self.window_size}"
            )
        if self.warm_windows < 0:
            raise ConfigurationError(
                f"sampling warm_windows must be >= 0, got {self.warm_windows}"
            )
        if self.target_reduction < 2:
            raise ConfigurationError(
                f"sampling target_reduction must be >= 2, "
                f"got {self.target_reduction}"
            )
        if self.warm_synthesis not in SYNTHESIS_STRATEGIES:
            raise ConfigurationError(
                f"sampling warm_synthesis must be one of "
                f"{', '.join(SYNTHESIS_STRATEGIES)}; got {self.warm_synthesis!r}"
            )
        if self.replay_windows < 1:
            raise ConfigurationError(
                f"sampling replay_windows must be >= 1, "
                f"got {self.replay_windows}"
            )

    def effective_window(self, trace_accesses: int) -> int:
        """The window size used for a trace of ``trace_accesses`` records.

        Auto sizing solves ``intervals * windows_touched * window <=
        trace_accesses / target_reduction`` for the window, floored at
        :data:`MIN_AUTO_WINDOW` so degenerate traces still get a usable
        window. ``windows_touched`` counts the measured window, the
        timed warm-up windows and — under the ``"replay"`` strategy —
        the functionally replayed windows, so the total work touched
        per run honours the reduction target regardless of strategy.
        """
        if self.window_size > 0:
            return self.window_size
        per_interval = self.warm_windows + 1
        if self.warm_synthesis == "replay":
            per_interval += self.replay_windows
        budget = self.intervals * per_interval * self.target_reduction
        return max(MIN_AUTO_WINDOW, trace_accesses // max(budget, 1))

    def to_json_dict(self) -> dict[str, Any]:
        """Canonical JSON form (embedded in sweep cell cache keys)."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "intervals": self.intervals,
            "window_size": self.window_size,
            "warm_windows": self.warm_windows,
            "seed": self.seed,
            "target_reduction": self.target_reduction,
            "warm_synthesis": self.warm_synthesis,
            "replay_windows": self.replay_windows,
        }

    @classmethod
    def from_json_dict(cls, doc: dict[str, Any]) -> "SamplingSpec":
        """Rebuild a spec from :meth:`to_json_dict` output."""
        version = doc.get("schema_version")
        if version != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"sampling spec has schema_version={version!r}, "
                f"this build reads {SPEC_SCHEMA_VERSION}"
            )
        return cls(
            intervals=int(doc["intervals"]),
            window_size=int(doc["window_size"]),
            warm_windows=int(doc["warm_windows"]),
            seed=int(doc["seed"]),
            target_reduction=int(doc["target_reduction"]),
            warm_synthesis=str(doc["warm_synthesis"]),
            replay_windows=int(doc["replay_windows"]),
        )

    @classmethod
    def from_string(cls, text: str) -> "SamplingSpec":
        """Parse a CLI spec string into a :class:`SamplingSpec`.

        ``"default"`` (or the empty string) yields the default spec;
        otherwise the string is comma-separated ``key=value`` pairs with
        the keys ``k`` (intervals), ``window``, ``warm``, ``seed``,
        ``reduction``, ``synthesis`` (a strategy name from
        :data:`SYNTHESIS_STRATEGIES`) and ``replay`` (windows replayed
        under the replay strategy), e.g.
        ``"k=4,window=0,synthesis=replay,replay=4"``.
        """
        text = text.strip()
        if text in ("", "default"):
            return cls()
        values: dict[str, Any] = {}
        aliases = {
            "k": "intervals",
            "intervals": "intervals",
            "window": "window_size",
            "window_size": "window_size",
            "warm": "warm_windows",
            "warm_windows": "warm_windows",
            "seed": "seed",
            "reduction": "target_reduction",
            "target_reduction": "target_reduction",
            "synthesis": "warm_synthesis",
            "warm_synthesis": "warm_synthesis",
            "replay": "replay_windows",
            "replay_windows": "replay_windows",
        }
        for part in text.split(","):
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in aliases:
                raise ConfigurationError(
                    f"bad sampling spec element {part!r}; expected "
                    "comma-separated key=value pairs with keys "
                    "k, window, warm, seed, reduction, synthesis, "
                    "replay (or 'default')"
                )
            field = aliases[key]
            raw = raw.strip()
            if field == "warm_synthesis":
                values[field] = raw  # validated by __post_init__
                continue
            try:
                values[field] = int(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad sampling spec value {part!r}: not an integer"
                ) from exc
        return cls(**values)

    def describe(self) -> str:
        """One-line human-readable form (CLI output)."""
        window = self.window_size if self.window_size else "auto"
        synthesis = self.warm_synthesis
        if synthesis == "replay":
            synthesis = f"replay({self.replay_windows}w)"
        return (
            f"k={self.intervals} window={window} warm={self.warm_windows} "
            f"seed={self.seed} target_reduction={self.target_reduction}x "
            f"synthesis={synthesis}"
        )
