"""Sampled-vs-full validation harness.

Runs every (workload, policy) cell of the requested suites twice — a
full simulation and a sampled one — and reports per-cell and per-suite
relative errors on the gated metrics (LLC MPKI, IPC) plus the achieved
trace-reduction factors and wall-clock. ``benchmarks/record_sampling.py``
appends the aggregates to the checked-in ``BENCH_sampling.json`` and
``benchmarks/check_regression.py --sampling`` gates them against the
committed error budget in CI.

Each policy validates under its committed warm-state synthesis strategy
(:data:`PREFERRED_SYNTHESIS`): the recency family needs only the
recency-ordered content rebuild, while learned policies additionally
need their predictor tables synthesized — by training-only replay of
the skipped region or by interval-boundary table checkpoints (see
docs/sampling.md for the per-policy validation status).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..core.config import MachineConfig, cascade_lake
from ..core.simulator import DEFAULT_WARMUP_FRACTION, simulate
from ..errors import ConfigurationError
from ..trace.trace import Trace
from .executor import simulate_sampled
from .spec import SamplingSpec

#: Policies the committed error budget is validated (and gated) for.
#: glider and drrip are deliberately absent: under every synthesis
#: strategy their sampled MPKI matches the full run but their IPC error
#: exceeds the budget on a few timing-sensitive cells (miss burstiness
#: does not extrapolate from one representative window) — see
#: docs/sampling.md for the measured numbers.
VALIDATED_POLICIES = ("lru", "srrip", "dip", "ship", "hawkeye", "mpppb")

#: The warm-state synthesis strategy each policy validates (and is
#: gated) under. Policies absent from this mapping run with whatever
#: strategy the caller's spec carries. The recency family needs no
#: predictor synthesis; learned policies use interval-boundary table
#: checkpoints, which reproduce a full run's tables bit-exactly at the
#: warm-up boundary (training-only replay is the cheaper fallback where
#: a checkpoint pass over the prefix is not worth its cost).
PREFERRED_SYNTHESIS: dict[str, str] = {
    "lru": "recency",
    "srrip": "recency",
    "drrip": "checkpoint",
    "dip": "checkpoint",
    "ship": "checkpoint",
    "hawkeye": "checkpoint",
    "glider": "checkpoint",
    "mpppb": "checkpoint",
}

#: Suites the smoke validation covers.
DEFAULT_SUITES = ("gap", "spec06")


@dataclass(frozen=True)
class ValidationCell:
    """Sampled-vs-full comparison of one (workload, policy) cell."""

    suite: str
    workload: str
    policy: str
    #: Warm-state synthesis strategy the sampled run used.
    synthesis: str
    full_mpki: float
    sampled_mpki: float
    full_ipc: float
    sampled_ipc: float
    reduction: float
    full_wall_s: float
    sampled_wall_s: float

    @property
    def mpki_error(self) -> float:
        """Relative LLC MPKI error (0 when the full run had 0 MPKI)."""
        if self.full_mpki == 0.0:
            return abs(self.sampled_mpki)
        return abs(self.sampled_mpki - self.full_mpki) / self.full_mpki

    @property
    def ipc_error(self) -> float:
        if self.full_ipc == 0.0:
            return abs(self.sampled_ipc)
        return abs(self.sampled_ipc - self.full_ipc) / self.full_ipc


@dataclass
class SuiteSummary:
    """Per-suite aggregate of the gated quantities."""

    suite: str
    cells: int
    mpki_err_mean: float
    mpki_err_max: float
    ipc_err_mean: float
    ipc_err_max: float
    reduction_min: float
    reduction_mean: float
    full_wall_s: float
    sampled_wall_s: float

    @classmethod
    def from_cells(cls, suite: str, cells: list[ValidationCell]) -> "SuiteSummary":
        mpki_errors = [cell.mpki_error for cell in cells]
        ipc_errors = [cell.ipc_error for cell in cells]
        reductions = [cell.reduction for cell in cells]
        return cls(
            suite=suite,
            cells=len(cells),
            mpki_err_mean=sum(mpki_errors) / len(cells),
            mpki_err_max=max(mpki_errors),
            ipc_err_mean=sum(ipc_errors) / len(cells),
            ipc_err_max=max(ipc_errors),
            reduction_min=min(reductions),
            reduction_mean=sum(reductions) / len(cells),
            full_wall_s=sum(cell.full_wall_s for cell in cells),
            sampled_wall_s=sum(cell.sampled_wall_s for cell in cells),
        )

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "cells": self.cells,
            "mpki_err_mean": round(self.mpki_err_mean, 5),
            "mpki_err_max": round(self.mpki_err_max, 5),
            "ipc_err_mean": round(self.ipc_err_mean, 5),
            "ipc_err_max": round(self.ipc_err_max, 5),
            "reduction_min": round(self.reduction_min, 2),
            "reduction_mean": round(self.reduction_mean, 2),
            "full_wall_s": round(self.full_wall_s, 3),
            "sampled_wall_s": round(self.sampled_wall_s, 3),
        }


@dataclass
class ValidationReport:
    """Everything one validation run measured."""

    spec: SamplingSpec
    policies: tuple[str, ...]
    cells: list[ValidationCell] = field(default_factory=list)

    @property
    def suites(self) -> dict[str, SuiteSummary]:
        grouped: dict[str, list[ValidationCell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.suite, []).append(cell)
        return {
            suite: SuiteSummary.from_cells(suite, members)
            for suite, members in grouped.items()
        }

    @property
    def overall(self) -> SuiteSummary:
        return SuiteSummary.from_cells("overall", self.cells)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_json_dict(),
            "policies": list(self.policies),
            "synthesis": {
                policy: PREFERRED_SYNTHESIS.get(policy, self.spec.warm_synthesis)
                for policy in self.policies
            },
            "suites": {
                suite: summary.to_json_dict()
                for suite, summary in sorted(self.suites.items())
            },
            "overall": self.overall.to_json_dict(),
            "cells": [
                {
                    "suite": cell.suite,
                    "workload": cell.workload,
                    "policy": cell.policy,
                    "synthesis": cell.synthesis,
                    "full_mpki": round(cell.full_mpki, 4),
                    "sampled_mpki": round(cell.sampled_mpki, 4),
                    "mpki_error": round(cell.mpki_error, 5),
                    "full_ipc": round(cell.full_ipc, 4),
                    "sampled_ipc": round(cell.sampled_ipc, 4),
                    "ipc_error": round(cell.ipc_error, 5),
                    "reduction": round(cell.reduction, 2),
                }
                for cell in self.cells
            ],
        }

    def render(self) -> str:
        lines = [
            f"sampled-vs-full validation — spec {self.spec.describe()}, "
            f"policies {', '.join(self.policies)}",
            "",
            f"{'workload':24s} {'policy':8s} {'synth':10s} {'full mpki':>10s} "
            f"{'sampled':>10s} {'err':>7s} {'ipc err':>8s} {'red':>7s}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.workload:24s} {cell.policy:8s} {cell.synthesis:10s} "
                f"{cell.full_mpki:10.2f} "
                f"{cell.sampled_mpki:10.2f} {cell.mpki_error:6.1%} "
                f"{cell.ipc_error:7.1%} {cell.reduction:6.1f}x"
            )
        lines.append("")
        for suite, summary in sorted(self.suites.items()):
            lines.append(
                f"{suite}: mpki err mean {summary.mpki_err_mean:.2%} "
                f"max {summary.mpki_err_max:.2%} | ipc err mean "
                f"{summary.ipc_err_mean:.2%} max {summary.ipc_err_max:.2%} | "
                f"reduction min {summary.reduction_min:.1f}x "
                f"mean {summary.reduction_mean:.1f}x ({summary.cells} cells)"
            )
        overall = self.overall
        lines.append(
            f"overall: mpki err mean {overall.mpki_err_mean:.2%} "
            f"max {overall.mpki_err_max:.2%} | ipc err mean "
            f"{overall.ipc_err_mean:.2%} max {overall.ipc_err_max:.2%} | "
            f"reduction min {overall.reduction_min:.1f}x"
        )
        return "\n".join(lines)


def suite_traces(suite: str) -> dict[str, Trace]:
    """The traces of one named validation suite (at effective scale)."""
    from ..harness.experiments import gap_traces, spec_traces

    if suite == "gap":
        return gap_traces()
    if suite in ("spec06", "spec17"):
        return spec_traces(suite)
    raise ConfigurationError(
        f"unknown validation suite {suite!r}; expected gap, spec06 or spec17"
    )


def run_validation(
    suites: tuple[str, ...] = DEFAULT_SUITES,
    policies: tuple[str, ...] = VALIDATED_POLICIES,
    spec: SamplingSpec | None = None,
    config: MachineConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    progress: Callable[[str], None] | None = None,
) -> ValidationReport:
    """Sampled-vs-full comparison over whole suites.

    Every cell simulates twice in-process (full, then sampled), so the
    wall-clock totals in the report compare like with like. Policies
    with a committed strategy in :data:`PREFERRED_SYNTHESIS` sample
    under it; other policies use the strategy the spec carries.
    """
    if spec is None:
        spec = SamplingSpec()
    if config is None:
        config = cascade_lake()
    report = ValidationReport(spec=spec, policies=tuple(policies))
    for suite in suites:
        for workload, trace in suite_traces(suite).items():
            for policy in policies:
                if progress is not None:
                    progress(f"{workload} x {policy}")
                synthesis = PREFERRED_SYNTHESIS.get(policy, spec.warm_synthesis)
                cell_spec = (
                    spec if synthesis == spec.warm_synthesis
                    else replace(spec, warm_synthesis=synthesis)
                )
                started = time.perf_counter()
                full = simulate(
                    trace, config=config, llc_policy=policy,
                    warmup_fraction=warmup_fraction,
                )
                full_wall = time.perf_counter() - started
                started = time.perf_counter()
                sampled = simulate_sampled(
                    trace, config=config, llc_policy=policy,
                    warmup_fraction=warmup_fraction, sampling=cell_spec,
                )
                sampled_wall = time.perf_counter() - started
                plan_doc = sampled.info["sampling_plan"]
                report.cells.append(
                    ValidationCell(
                        suite=suite,
                        workload=workload,
                        policy=policy,
                        synthesis=synthesis,
                        full_mpki=full.llc_mpki,
                        sampled_mpki=sampled.llc_mpki,
                        full_ipc=full.ipc,
                        sampled_ipc=sampled.ipc,
                        reduction=float(plan_doc["reduction"]),
                        full_wall_s=full_wall,
                        sampled_wall_s=sampled_wall,
                    )
                )
    return report
