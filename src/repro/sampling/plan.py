"""Representative-interval selection: from trace to sampling plan.

:func:`build_plan` windows the measured region of a trace, clusters the
windows on their BBV-like feature vectors, and picks one representative
window per cluster (the member closest to the cluster center, lowest
index on ties) weighted by its cluster's population — the SimPoint
recipe applied to memory-access windows. The resulting
:class:`SamplingPlan` is pure data: the executor simulates it, the CLI
renders it, and tests assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.simulator import DEFAULT_WARMUP_FRACTION
from ..errors import ConfigurationError
from ..trace.trace import Trace
from .features import window_features
from .kmeans import kmeans
from .spec import SamplingSpec


@dataclass(frozen=True)
class Interval:
    """One selected representative interval of a sampling plan."""

    #: Position of the window among the plan's eligible windows.
    index: int
    #: First trace record of the measured window.
    start: int
    #: One past the last trace record of the measured window.
    stop: int
    #: First record of the simulated warm-up run preceding the window.
    warm_start: int
    #: Number of eligible windows this interval stands for (its
    #: cluster's population) — the recombination weight.
    weight: int
    #: Cluster index the interval represents.
    cluster: int
    #: First record of the training-only functional replay preceding the
    #: timed warm-up (equals ``warm_start`` unless the plan's spec uses
    #: the ``"replay"`` synthesis strategy).
    replay_start: int = -1

    def __post_init__(self) -> None:
        if self.replay_start < 0:
            object.__setattr__(self, "replay_start", self.warm_start)

    @property
    def measured_accesses(self) -> int:
        return self.stop - self.start

    @property
    def simulated_accesses(self) -> int:
        """Warm-up plus measured records actually simulated (timed)."""
        return self.stop - self.warm_start

    @property
    def functional_accesses(self) -> int:
        """Records replayed functionally (training only, untimed)."""
        return self.warm_start - self.replay_start


@dataclass(frozen=True)
class SamplingPlan:
    """Everything needed to execute and audit one sampled run."""

    workload: str
    spec: SamplingSpec
    window_size: int
    #: Eligible (post-warm-up) windows the clustering ran over.
    num_windows: int
    intervals: tuple[Interval, ...]
    trace_accesses: int

    @property
    def total_weight(self) -> int:
        return sum(interval.weight for interval in self.intervals)

    @property
    def simulated_accesses(self) -> int:
        """Trace records simulated (all warm-up and measured windows)."""
        return sum(interval.simulated_accesses for interval in self.intervals)

    @property
    def functional_accesses(self) -> int:
        """Trace records functionally replayed (training only, untimed)."""
        return sum(interval.functional_accesses for interval in self.intervals)

    @property
    def reduction(self) -> float:
        """Trace-reduction factor: full length over *timed* records.

        Functional replay accesses are reported separately (they cost a
        policy-hook pass but no timing simulation) — see
        :attr:`functional_accesses` and the plan's JSON form.
        """
        if not self.simulated_accesses:
            return 0.0
        return self.trace_accesses / self.simulated_accesses

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "spec": self.spec.to_json_dict(),
            "window_size": self.window_size,
            "num_windows": self.num_windows,
            "trace_accesses": self.trace_accesses,
            "simulated_accesses": self.simulated_accesses,
            "functional_accesses": self.functional_accesses,
            "reduction": round(self.reduction, 3),
            "intervals": [
                {
                    "index": i.index,
                    "start": i.start,
                    "stop": i.stop,
                    "warm_start": i.warm_start,
                    "replay_start": i.replay_start,
                    "weight": i.weight,
                    "cluster": i.cluster,
                }
                for i in self.intervals
            ],
        }

    def summary(self) -> str:
        return (
            f"{self.workload}: {len(self.intervals)} representative "
            f"interval(s) of {self.window_size} accesses covering "
            f"{self.num_windows} windows — simulate "
            f"{self.simulated_accesses} of {self.trace_accesses} accesses "
            f"({self.reduction:.1f}x reduction)"
        )


def build_plan(
    trace: Trace,
    spec: SamplingSpec,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> SamplingPlan:
    """Select weighted representative intervals for ``trace``.

    Deterministic for a fixed ``(trace, spec, warmup_fraction)``: the
    clustering seed comes from the spec and representative choice
    breaks ties by lowest window index. Intervals come back sorted by
    start position so the executor replays them in trace order.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot build a sampling plan for an empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    window = spec.effective_window(len(trace))
    if len(trace) < window:
        raise ConfigurationError(
            f"trace {trace.name!r} is too short to sample: {len(trace)} "
            f"accesses is less than one {window}-access window; run it "
            "unsampled or pass a smaller explicit window_size"
        )
    warmup_end = int(len(trace) * warmup_fraction)
    vectors, spans = window_features(trace, window, first_start=warmup_end)
    clustering = kmeans(vectors, spec.intervals, spec.seed)
    intervals: list[Interval] = []
    for cluster in range(clustering.k):
        members = np.nonzero(clustering.assignments == cluster)[0]
        if not len(members):
            continue
        # Among members (near-)tied at the minimum centroid distance,
        # take the one at the median trace position: feature-identical
        # windows can still differ in behaviour at a phase boundary
        # (e.g. the first windows of a re-scan phase miss while the
        # bulk hits), and those transients sit at the edges of the tied
        # run, never at its middle. Exact comparisons keep the choice
        # deterministic.
        member_distances = clustering.distances[members, cluster]
        tied = members[member_distances <= member_distances.min() + 1e-12]
        representative = int(tied[len(tied) // 2])
        start, stop = spans[representative]
        warm_start = max(start - spec.warm_windows * window, 0)
        replay_start = warm_start
        if spec.warm_synthesis == "replay":
            replay_start = max(warm_start - spec.replay_windows * window, 0)
        intervals.append(
            Interval(
                index=representative,
                start=start,
                stop=stop,
                warm_start=warm_start,
                weight=int(len(members)),
                cluster=cluster,
                replay_start=replay_start,
            )
        )
    intervals.sort(key=lambda interval: interval.start)
    plan = SamplingPlan(
        workload=trace.name,
        spec=spec,
        window_size=window,
        num_windows=len(spans),
        intervals=tuple(intervals),
        trace_accesses=len(trace),
    )
    if plan.simulated_accesses >= len(trace):
        raise ConfigurationError(
            f"sampling plan for trace {trace.name!r} would simulate "
            f"{plan.simulated_accesses} of {len(trace)} accesses "
            f"(warm_windows={spec.warm_windows} around "
            f"{len(plan.intervals)} window(s) of {window}); the trace is "
            "too short for this spec — run it unsampled"
        )
    return plan
