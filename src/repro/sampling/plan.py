"""Representative-interval selection: from trace to sampling plan.

:func:`build_plan` windows the measured region of a trace, clusters the
windows on their BBV-like feature vectors, and picks one representative
window per cluster (the member closest to the cluster center, lowest
index on ties) weighted by its cluster's population — the SimPoint
recipe applied to memory-access windows. The resulting
:class:`SamplingPlan` is pure data: the executor simulates it, the CLI
renders it, and tests assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.simulator import DEFAULT_WARMUP_FRACTION
from ..errors import ConfigurationError
from ..trace.trace import Trace
from .features import window_features
from .kmeans import kmeans
from .spec import SamplingSpec


@dataclass(frozen=True)
class Interval:
    """One selected representative interval of a sampling plan."""

    #: Position of the window among the plan's eligible windows.
    index: int
    #: First trace record of the measured window.
    start: int
    #: One past the last trace record of the measured window.
    stop: int
    #: First record of the simulated warm-up run preceding the window.
    warm_start: int
    #: Number of eligible windows this interval stands for (its
    #: cluster's population) — the recombination weight.
    weight: int
    #: Cluster index the interval represents.
    cluster: int

    @property
    def measured_accesses(self) -> int:
        return self.stop - self.start

    @property
    def simulated_accesses(self) -> int:
        """Warm-up plus measured records actually simulated."""
        return self.stop - self.warm_start


@dataclass(frozen=True)
class SamplingPlan:
    """Everything needed to execute and audit one sampled run."""

    workload: str
    spec: SamplingSpec
    window_size: int
    #: Eligible (post-warm-up) windows the clustering ran over.
    num_windows: int
    intervals: tuple[Interval, ...]
    trace_accesses: int

    @property
    def total_weight(self) -> int:
        return sum(interval.weight for interval in self.intervals)

    @property
    def simulated_accesses(self) -> int:
        """Trace records simulated (all warm-up and measured windows)."""
        return sum(interval.simulated_accesses for interval in self.intervals)

    @property
    def reduction(self) -> float:
        """Trace-reduction factor: full length over simulated records."""
        if not self.simulated_accesses:
            return 0.0
        return self.trace_accesses / self.simulated_accesses

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "spec": self.spec.to_json_dict(),
            "window_size": self.window_size,
            "num_windows": self.num_windows,
            "trace_accesses": self.trace_accesses,
            "simulated_accesses": self.simulated_accesses,
            "reduction": round(self.reduction, 3),
            "intervals": [
                {
                    "index": i.index,
                    "start": i.start,
                    "stop": i.stop,
                    "warm_start": i.warm_start,
                    "weight": i.weight,
                    "cluster": i.cluster,
                }
                for i in self.intervals
            ],
        }

    def summary(self) -> str:
        return (
            f"{self.workload}: {len(self.intervals)} representative "
            f"interval(s) of {self.window_size} accesses covering "
            f"{self.num_windows} windows — simulate "
            f"{self.simulated_accesses} of {self.trace_accesses} accesses "
            f"({self.reduction:.1f}x reduction)"
        )


def build_plan(
    trace: Trace,
    spec: SamplingSpec,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> SamplingPlan:
    """Select weighted representative intervals for ``trace``.

    Deterministic for a fixed ``(trace, spec, warmup_fraction)``: the
    clustering seed comes from the spec and representative choice
    breaks ties by lowest window index. Intervals come back sorted by
    start position so the executor replays them in trace order.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot build a sampling plan for an empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    window = spec.effective_window(len(trace))
    warmup_end = int(len(trace) * warmup_fraction)
    vectors, spans = window_features(trace, window, first_start=warmup_end)
    clustering = kmeans(vectors, spec.intervals, spec.seed)
    intervals: list[Interval] = []
    for cluster in range(clustering.k):
        members = np.nonzero(clustering.assignments == cluster)[0]
        if not len(members):
            continue
        # argmin on the member-restricted distances returns the first
        # (lowest-index) minimum, so ties break deterministically.
        representative = int(members[np.argmin(clustering.distances[members, cluster])])
        start, stop = spans[representative]
        intervals.append(
            Interval(
                index=representative,
                start=start,
                stop=stop,
                warm_start=max(start - spec.warm_windows * window, 0),
                weight=int(len(members)),
                cluster=cluster,
            )
        )
    intervals.sort(key=lambda interval: interval.start)
    return SamplingPlan(
        workload=trace.name,
        spec=spec,
        window_size=window,
        num_windows=len(spans),
        intervals=tuple(intervals),
        trace_accesses=len(trace),
    )
