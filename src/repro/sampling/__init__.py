"""Representative-interval sampling (SimPoint-style) for sweeps.

Instead of simulating every access of a trace, ``repro.sampling``
profiles fixed-size windows into BBV-like feature vectors
(:mod:`~repro.sampling.features`), clusters them with a deterministic
seeded k-means (:mod:`~repro.sampling.kmeans`), selects one weighted
representative interval per cluster (:mod:`~repro.sampling.plan`), and
simulates only those intervals — each preceded by warm-state synthesis
and a short simulated warm-up — before recombining the per-interval
results into a full-run estimate (:mod:`~repro.sampling.executor`).

Accuracy is not assumed: :mod:`~repro.sampling.validate` measures
sampled-vs-full error per suite and the committed budget in
``BENCH_sampling.json`` is gated in CI (see docs/sampling.md).
"""

from .executor import (
    clear_checkpoint_store,
    compute_boundary_checkpoints,
    recombine,
    simulate_sampled,
    synthesize_from_checkpoint,
    synthesize_warm_state,
)
from .features import pc_bucket_histogram, window_features
from .kmeans import KMeansResult, kmeans
from .plan import Interval, SamplingPlan, build_plan
from .spec import SYNTHESIS_STRATEGIES, SamplingSpec
from .validate import (
    DEFAULT_SUITES,
    PREFERRED_SYNTHESIS,
    VALIDATED_POLICIES,
    ValidationCell,
    ValidationReport,
    run_validation,
)

__all__ = [
    "DEFAULT_SUITES",
    "PREFERRED_SYNTHESIS",
    "SYNTHESIS_STRATEGIES",
    "VALIDATED_POLICIES",
    "Interval",
    "KMeansResult",
    "SamplingPlan",
    "SamplingSpec",
    "ValidationCell",
    "ValidationReport",
    "build_plan",
    "clear_checkpoint_store",
    "compute_boundary_checkpoints",
    "kmeans",
    "pc_bucket_histogram",
    "recombine",
    "run_validation",
    "simulate_sampled",
    "synthesize_from_checkpoint",
    "synthesize_warm_state",
    "window_features",
]
