"""Sampled simulation: execute a plan and recombine the estimate.

The executor runs each representative interval of a
:class:`~repro.sampling.plan.SamplingPlan` in trace order:

1. **Warm-state synthesis** — per-level cache content at the interval's
   warm-up boundary is reconstructed from the trace's access recency (a
   memory-timestamp-record pass: the most recently touched blocks, up
   to each level's capacity, injected oldest-first through the normal
   fill path). Without this, every interval starts from cold caches and
   the sampled MPKI overshoots the full run by an order of magnitude at
   smoke scale. The spec's ``warm_synthesis`` strategy decides how
   policy *predictor* state is rebuilt on top of the content:

   * ``"recency"`` — content only; global tables start cold.
   * ``"replay"`` — after the content rebuild, a bounded suffix of the
     skipped region (``spec.replay_windows`` windows) streams through
     the real access path with DRAM timing stubbed out, driving each
     policy's training hooks without timing simulation.
   * ``"checkpoint"`` — a single functional pass over the trace prefix
     captures, at every interval boundary, the policy's global tables
     (:meth:`~repro.policies.base.ReplacementPolicy.checkpoint_tables`)
     *and* each level's resident block set. Warm state is then rebuilt
     by filling exactly those blocks (in last-touch order) with the
     restored tables — the content a full run would actually hold, not
     a recency approximation. Checkpoints are stored once per
     ``(trace, config, policy, boundaries)`` and reused across runs of
     the same sweep. Because policy hooks never see cycle counts, the
     functional pass reproduces a timed full run's tables and content
     bit-exactly.
2. **Simulated warm-up** — ``spec.warm_windows`` windows of real
   simulation settle DRAM row buffers/bank queues, MSHR-equivalent
   timing state and policy recency before measurement, then
   ``_reset_statistics`` discards the warm statistics and rebases the
   DRAM bank clocks to the measured core's origin — the same boundary
   correction a full run applies after its warm-up phase, generalized
   to every interval boundary.
3. **Measurement** — the interval runs under the fast engine when
   eligible (the reference hot loop otherwise) and is snapshotted into
   a per-interval :class:`~repro.core.results.SimulationResult`.

Per-interval results recombine into one full-run estimate by weighting
every counter with its interval's cluster population (SimPoint's
weighted sum). Policy *global* state (e.g. SHiP's signature counters)
deliberately carries across intervals in trace order; per-line metadata
is rebuilt by the synthesis fills.

Known limitation, documented in docs/sampling.md: recency-based
synthesis reconstructs LRU-like *content*, so policies whose
steady-state content diverges from recency order see residual content
error even when their predictor tables are synthesized exactly; the
committed error budget is validated per (policy, strategy) pair in
:mod:`repro.sampling.validate`.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.config import MachineConfig, cascade_lake
from ..core.cpu import CoreModel
from ..core.results import LevelStats, SimulationResult, snapshot_result
from ..core.simulator import (
    DEFAULT_WARMUP_FRACTION,
    _reset_statistics,
    _run_accesses,
    build_hierarchy,
)
from ..errors import ConfigurationError, SimulationError
from ..mem.fastpath import FastMachine, fastpath_eligible
from ..mem.hierarchy import CacheHierarchy, ServiceLevel
from ..policies.base import ReplacementPolicy
from ..policies.registry import WARM_STATE_EXCLUDED, make_policy
from ..trace.record import AccessKind
from ..trace.trace import Trace
from .plan import SamplingPlan, build_plan
from .spec import SamplingSpec


def _prefix_last_touch(
    trace: Trace, boundary: int, block_bits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Each distinct block's last access in ``[0, boundary)``.

    Returns ``(blocks, pcs, kinds)`` sorted oldest-last-touch first, so
    filling them in order reproduces the prefix's recency order.
    """
    blocks = trace.block_addrs(block_bits)[:boundary]
    kinds = trace.kinds[:boundary]
    pcs = trace.pcs[:boundary]
    # np.unique(reversed prefix) gives each block's *first* index in the
    # reversed view = its *last* access in the prefix.
    uniq, first_rev = np.unique(blocks[::-1], return_index=True)
    last_index = boundary - 1 - first_rev
    order = np.argsort(last_index, kind="stable")  # oldest last-touch first
    ordered_last = last_index[order]
    return uniq[order], pcs[ordered_last], kinds[ordered_last]


def _fill_blocks(
    cache, blocks: np.ndarray, pcs: np.ndarray, kinds: np.ndarray
) -> int:
    """Inject blocks through the normal fill path, training suppressed.

    Policy eviction training is disabled for the duration: set-conflict
    evictions during a content rebuild are artifacts of the rebuild, not
    observed program behaviour.
    """
    fill = cache.fill
    policy = cache.policy
    saved_on_eviction = policy.on_eviction
    policy.on_eviction = (  # type: ignore[method-assign]
        lambda set_index, way, victim_block: None
    )
    fills = 0
    try:
        for block, pc, kind in zip(blocks.tolist(), pcs.tolist(), kinds.tolist()):
            fill(block, pc, int(kind))
            fills += 1
    finally:
        policy.on_eviction = saved_on_eviction  # type: ignore[method-assign]
    return fills


def synthesize_warm_state(
    hierarchy: CacheHierarchy, trace: Trace, boundary: int
) -> int:
    """Rebuild per-level cache content from trace recency before ``boundary``.

    For every level, the most recently last-touched blocks of the trace
    prefix ``[0, boundary)`` — capped at the level's capacity — are
    injected oldest-first through the normal :meth:`Cache.fill` path,
    so per-line policy metadata (RRPV, signatures, recency stacks) is
    initialized by the policy itself. Instruction blocks go to the L1I,
    data blocks to the L1D, and both to L2/LLC, mirroring the
    hierarchy's routing. Policy eviction *training* is suppressed for
    the duration (set-conflict evictions during injection are artifacts
    of the rebuild, not observed program behaviour). Returns the number
    of fills performed.
    """
    if boundary <= 0:
        for cache in hierarchy.caches.values():
            cache.reset_content()
        return 0
    ordered_blocks, ordered_pcs, ordered_kinds = _prefix_last_touch(
        trace, boundary, hierarchy.block_bits
    )
    instruction = ordered_kinds == AccessKind.IFETCH
    fills = 0
    for cache, mask in (
        (hierarchy.l1i, instruction),
        (hierarchy.l1d, ~instruction),
        (hierarchy.l2, None),
        (hierarchy.llc, None),
    ):
        if mask is None:
            level_blocks, level_pcs, level_kinds = (
                ordered_blocks, ordered_pcs, ordered_kinds,
            )
        else:
            level_blocks = ordered_blocks[mask]
            level_pcs = ordered_pcs[mask]
            level_kinds = ordered_kinds[mask]
        capacity = cache.num_sets * cache.num_ways
        if len(level_blocks) > capacity:
            level_blocks = level_blocks[-capacity:]
            level_pcs = level_pcs[-capacity:]
            level_kinds = level_kinds[-capacity:]
        cache.reset_content()
        fills += _fill_blocks(cache, level_blocks, level_pcs, level_kinds)
    return fills


class _SilentDRAM:
    """Timing-free DRAM stand-in for functional (untimed) passes.

    Swapped in for ``hierarchy.dram`` while a training-only pass streams
    accesses with ``cycle=0``: the real DRAM model would record those
    zero-cycle requests in its bank ``next_free`` clocks and poison the
    timing of every later *timed* segment. Reads complete instantly,
    writes vanish; neither touches statistics.
    """

    def read(self, addr: int, cycle: int) -> int:
        return 0

    def write(self, addr: int, cycle: int) -> None:
        return None


def _functional_replay(
    hierarchy: CacheHierarchy, trace: Trace, start: int, stop: int
) -> int:
    """Stream ``[start, stop)`` through the hierarchy without timing.

    The real access path runs — hits, misses, fills, evictions, every
    policy training hook — but no core model advances and DRAM timing is
    stubbed out (see :class:`_SilentDRAM`), so the pass costs a policy
    pass and nothing else. Policy hooks never observe cycle counts, so
    the global tables this pass trains are bit-identical to the ones a
    timed run over the same records would produce. Statistics polluted
    by the pass are discarded by the caller's ``_reset_statistics``.
    Returns the number of records replayed.
    """
    if start >= stop:
        return 0
    addrs = trace.addrs[start:stop].tolist()
    pcs = trace.pcs[start:stop].tolist()
    kinds = trace.kinds[start:stop].tolist()
    saved_dram = hierarchy.dram
    hierarchy.dram = _SilentDRAM()  # type: ignore[assignment]
    try:
        access = hierarchy.access
        for addr, pc, kind in zip(addrs, pcs, kinds):
            access(addr, pc, kind, 0)
    finally:
        hierarchy.dram = saved_dram
    return stop - start


#: In-process cache of interval-boundary predictor-table checkpoints,
#: keyed by (trace digest, machine config, policy name, boundaries).
#: Populated on the first sampled run of a (trace, policy) cell with the
#: checkpoint strategy and reused by every later run of the same sweep —
#: the functional pass over the trace prefix is paid once, not per run.
_CHECKPOINT_STORE: dict[tuple, dict[int, dict[str, object]]] = {}


def clear_checkpoint_store() -> None:
    """Drop all cached table checkpoints (tests and memory pressure)."""
    _CHECKPOINT_STORE.clear()


def _checkpoint_key(
    trace: Trace, config: MachineConfig, policy_name: str, boundaries: tuple[int, ...]
) -> tuple:
    return (
        trace.digest(),
        json.dumps(config.to_json_dict(), sort_keys=True),
        policy_name,
        boundaries,
    )


def compute_boundary_checkpoints(
    trace: Trace,
    config: MachineConfig,
    policy_name: str,
    boundaries: tuple[int, ...],
) -> dict[int, dict[str, object]]:
    """Capture warm-state checkpoints at each trace boundary.

    One functional pass (no timing, see :func:`_functional_replay`) over
    ``[0, max(boundaries))`` on a fresh hierarchy, pausing at every
    boundary to capture the LLC policy's global tables
    (:meth:`~repro.policies.base.ReplacementPolicy.checkpoint_tables`)
    and the resident block set of every level. The policy is constructed
    from the registry by name so the pass can never alias the measuring
    hierarchy's policy instance.
    """
    hierarchy = build_hierarchy(config, make_policy(policy_name))
    policy = hierarchy.llc.policy
    if policy.checkpoint_tables() is None:
        raise ConfigurationError(
            f"policy {policy_name!r} does not implement the warm-state "
            'checkpoint protocol; use warm_synthesis="recency" or "replay"'
        )
    checkpoints: dict[int, dict[str, object]] = {}
    position = 0
    for boundary in sorted(set(boundaries)):
        _functional_replay(hierarchy, trace, position, boundary)
        position = max(position, boundary)
        tables = policy.checkpoint_tables()
        assert tables is not None
        checkpoints[boundary] = {
            "tables": tables,
            "resident": {
                name: np.sort(
                    np.asarray(cache.resident_blocks(), dtype=np.uint64)
                )
                for name, cache in hierarchy.caches.items()
            },
        }
    return checkpoints


def synthesize_from_checkpoint(
    hierarchy: CacheHierarchy,
    trace: Trace,
    boundary: int,
    checkpoint: dict[str, object],
) -> int:
    """Rebuild warm state from a boundary checkpoint.

    Restores the policy's global tables, then fills each level with
    exactly the blocks the checkpointing pass held resident at
    ``boundary`` (in last-touch order, so recency-managed levels come
    back in the right order), and restores the tables once more to erase
    the training noise those fills injected. Content and tables then
    match a full run's state at ``boundary`` bit-for-bit; only per-line
    predictor metadata is approximated, via the fill path with the
    trained tables in place. Returns the number of fills performed.
    """
    policy = hierarchy.llc.policy
    tables = checkpoint["tables"]
    policy.restore_tables(tables)  # type: ignore[arg-type]
    resident: dict[str, np.ndarray] = checkpoint["resident"]  # type: ignore[assignment]
    if boundary <= 0:
        for cache in hierarchy.caches.values():
            cache.reset_content()
        return 0
    ordered_blocks, ordered_pcs, ordered_kinds = _prefix_last_touch(
        trace, boundary, hierarchy.block_bits
    )
    fills = 0
    for name, cache in hierarchy.caches.items():
        mask = np.isin(ordered_blocks, resident[name], assume_unique=True)
        cache.reset_content()
        fills += _fill_blocks(
            cache, ordered_blocks[mask], ordered_pcs[mask], ordered_kinds[mask]
        )
    policy.restore_tables(tables)  # type: ignore[arg-type]
    return fills


def _weighted_ratio(pairs: list[tuple[float, float]]) -> float:
    """Weighted mean of (value, weight) pairs; 0.0 on zero total weight."""
    total_weight = sum(weight for _, weight in pairs)
    if total_weight <= 0:
        return 0.0
    return sum(value * weight for value, weight in pairs) / total_weight


def recombine(
    measurements: list[tuple[SimulationResult, int]],
    workload: str,
    policy: str,
    info: dict | None = None,
) -> SimulationResult:
    """Weighted recombination of per-interval results into one estimate.

    Every additive counter (instructions, cycles, per-level cache
    counters, DRAM traffic, service-level attribution) is the weighted
    sum over intervals; ratio metrics are weighted by their natural
    denominators — the DRAM row-hit rate by each interval's DRAM
    traffic, the mean load latency by each interval's instruction count
    (a per-interval proxy for its load count).
    """
    if not measurements:
        raise SimulationError(
            f"sampling produced no measured intervals for {workload!r}"
        )
    level_names = list(measurements[0][0].levels)
    levels: dict[str, LevelStats] = {}
    for name in level_names:
        levels[name] = LevelStats(
            name=name,
            demand_accesses=sum(
                m.levels[name].demand_accesses * w for m, w in measurements
            ),
            demand_hits=sum(m.levels[name].demand_hits * w for m, w in measurements),
            writeback_accesses=sum(
                m.levels[name].writeback_accesses * w for m, w in measurements
            ),
            prefetch_accesses=sum(
                m.levels[name].prefetch_accesses * w for m, w in measurements
            ),
            prefetch_hits=sum(
                m.levels[name].prefetch_hits * w for m, w in measurements
            ),
            evictions=sum(m.levels[name].evictions * w for m, w in measurements),
            dirty_evictions=sum(
                m.levels[name].dirty_evictions * w for m, w in measurements
            ),
            bypasses=sum(m.levels[name].bypasses * w for m, w in measurements),
        )
    served_by: dict[ServiceLevel, int] = {}
    for measurement, weight in measurements:
        for level, count in measurement.served_by.items():
            served_by[level] = served_by.get(level, 0) + count * weight
    return SimulationResult(
        workload=workload,
        policy=policy,
        instructions=sum(m.instructions * w for m, w in measurements),
        cycles=float(sum(m.cycles * w for m, w in measurements)),
        levels=levels,
        served_by=served_by,
        l1d_misses=sum(m.l1d_misses * w for m, w in measurements),
        l1d_misses_to_dram=sum(
            m.l1d_misses_to_dram * w for m, w in measurements
        ),
        dram_reads=sum(m.dram_reads * w for m, w in measurements),
        dram_writes=sum(m.dram_writes * w for m, w in measurements),
        dram_row_hit_rate=_weighted_ratio(
            [
                (m.dram_row_hit_rate, float(w * (m.dram_reads + m.dram_writes)))
                for m, w in measurements
            ]
        ),
        mean_load_latency=_weighted_ratio(
            [(m.mean_load_latency, float(w * m.instructions)) for m, w in measurements]
        ),
        rob_stall_cycles=float(
            sum(m.rob_stall_cycles * w for m, w in measurements)
        ),
        info=dict(info or {}),
    )


def simulate_sampled(
    trace: Trace,
    config: MachineConfig | None = None,
    llc_policy: ReplacementPolicy | str = "lru",
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    sampling: SamplingSpec | None = None,
    engine: str = "fast",
    plan: SamplingPlan | None = None,
) -> SimulationResult:
    """Run ``trace`` under representative-interval sampling.

    Drop-in sampled counterpart of :func:`repro.core.simulator.simulate`
    for the plain (no telemetry, no sanitizer, no prefetcher) cell: the
    returned :class:`SimulationResult` estimates what the full run would
    measure, with the sampling spec and executed plan recorded in
    ``result.info``. Deterministic for a fixed ``(trace, spec)``:
    repeated calls return bit-identical results.
    """
    if sampling is None:
        sampling = SamplingSpec()
    if engine not in ("fast", "reference"):
        raise ConfigurationError(
            f'sampled engine must be "fast" or "reference", got {engine!r}'
        )
    if config is None:
        config = cascade_lake()
    if plan is None:
        plan = build_plan(trace, sampling, warmup_fraction)
    hierarchy = build_hierarchy(config, llc_policy)
    policy_name = hierarchy.llc.policy.name
    use_fast = engine == "fast" and fastpath_eligible(hierarchy, trace)

    strategy = sampling.warm_synthesis
    checkpoints: dict[int, dict[str, object]] | None = None
    if strategy == "checkpoint" and hierarchy.llc.policy.checkpoint_tables() is None:
        # The registry's WARM_STATE_EXCLUDED names the policies whose
        # only cross-line state the recency synthesis already rebuilds,
        # so a mixed sweep under "checkpoint" (e.g. the CLI's forced LRU
        # baseline) degrades those cells rather than refusing the sweep.
        if type(hierarchy.llc.policy).__name__ not in WARM_STATE_EXCLUDED:
            raise ConfigurationError(
                f"policy {policy_name!r} does not implement the warm-state "
                'checkpoint protocol; use warm_synthesis="recency" or "replay"'
            )
        strategy = "recency"
    if strategy == "checkpoint":
        boundaries = tuple(i.warm_start for i in plan.intervals)
        key = _checkpoint_key(trace, config, policy_name, boundaries)
        checkpoints = _CHECKPOINT_STORE.get(key)
        if checkpoints is None:
            checkpoints = compute_boundary_checkpoints(
                trace, config, policy_name, boundaries
            )
            _CHECKPOINT_STORE[key] = checkpoints

    measurements: list[tuple[SimulationResult, int]] = []
    synthesis_fills = 0
    replay_accesses = 0
    checkpoint_restores = 0
    for interval in plan.intervals:
        if checkpoints is not None:
            synthesis_fills += synthesize_from_checkpoint(
                hierarchy, trace, interval.warm_start,
                checkpoints[interval.warm_start],
            )
            checkpoint_restores += 1
        else:
            synthesis_fills += synthesize_warm_state(
                hierarchy, trace, interval.replay_start
            )
            if strategy == "replay":
                replay_accesses += _functional_replay(
                    hierarchy, trace, interval.replay_start, interval.warm_start
                )
        warm_core = CoreModel(config.core)
        if interval.warm_start < interval.start:
            if use_fast:
                fast = FastMachine(hierarchy)
                fast.run(warm_core, trace, interval.warm_start, interval.start)
                warm_core.drain()
                fast.checkin()
            else:
                _run_accesses(
                    hierarchy, warm_core, trace, interval.warm_start, interval.start
                )
                warm_core.drain()
        _reset_statistics(hierarchy, int(warm_core.cycle))
        core = CoreModel(config.core)
        if use_fast:
            fast = FastMachine(hierarchy)
            fast.run(core, trace, interval.start, interval.stop)
            core_stats = core.drain()
            fast.checkin()
        else:
            _run_accesses(hierarchy, core, trace, interval.start, interval.stop)
            core_stats = core.drain()
        measurements.append(
            (
                snapshot_result(trace.name, policy_name, hierarchy, core_stats),
                interval.weight,
            )
        )
        _reset_statistics(hierarchy, int(core.cycle))

    info = {
        "sampling": sampling.to_json_dict(),
        "sampling_synthesis_effective": strategy,
        "sampling_plan": plan.to_json_dict(),
        "sampling_synthesis_fills": synthesis_fills,
        "sampling_replay_accesses": replay_accesses,
        "sampling_checkpoint_restores": checkpoint_restores,
        "warmup_accesses": int(len(trace) * warmup_fraction),
        "measured_accesses": sum(i.measured_accesses for i in plan.intervals),
        **trace.info,
    }
    return recombine(measurements, trace.name, policy_name, info)
