"""Deterministic seeded k-means for interval clustering.

A minimal k-means++ implementation over numpy with every source of
randomness drawn from one ``np.random.default_rng(seed)`` stream: the
same vectors and seed produce bit-identical assignments in every
process, which the sampling layer's determinism guarantee rests on.
(scikit-learn is deliberately not used — the repo's only runtime
dependency is numpy.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Cluster assignment of every vector plus final geometry."""

    #: ``assignments[i]`` is the cluster index of vector ``i``.
    assignments: np.ndarray
    #: Final cluster centers, shape ``(k, dims)``.
    centers: np.ndarray
    #: Squared distance of every vector to every center, ``(n, k)``.
    distances: np.ndarray

    @property
    def k(self) -> int:
        return int(self.centers.shape[0])


def _squared_distances(vectors: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape (n, k)."""
    return ((vectors[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)


def kmeans(
    vectors: np.ndarray, k: int, seed: int, max_iters: int = 50
) -> KMeansResult:
    """Cluster ``vectors`` into at most ``k`` groups, deterministically.

    Uses k-means++ seeding (D^2-weighted center choice) followed by
    Lloyd iterations until assignment convergence or ``max_iters``.
    ``k`` is clamped to the number of vectors; an empty cluster keeps
    its previous center (its representative simply attracts no
    members, and the selection step skips it).
    """
    rng = np.random.default_rng(seed)
    n = len(vectors)
    if n == 0:
        raise ValueError("kmeans needs at least one vector")
    k = min(k, n)
    chosen = [vectors[int(rng.integers(n))]]
    for _ in range(1, k):
        d2 = np.min(
            np.stack([((vectors - c) ** 2).sum(axis=1) for c in chosen]), axis=0
        )
        total = d2.sum()
        if total <= 0:
            # All remaining mass sits on already-chosen centers
            # (duplicate vectors); fall back to a uniform draw.
            chosen.append(vectors[int(rng.integers(n))])
            continue
        chosen.append(vectors[int(rng.choice(n, p=d2 / total))])
    centers = np.stack(chosen)
    for _ in range(max_iters):
        distances = _squared_distances(vectors, centers)
        assignments = distances.argmin(axis=1)
        updated = np.stack(
            [
                vectors[assignments == c].mean(axis=0)
                if (assignments == c).any()
                else centers[c]
                for c in range(k)
            ]
        )
        if np.allclose(updated, centers):
            centers = updated
            break
        centers = updated
    distances = _squared_distances(vectors, centers)
    return KMeansResult(
        assignments=distances.argmin(axis=1),
        centers=centers,
        distances=distances,
    )
