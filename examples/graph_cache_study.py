#!/usr/bin/env python
"""Characterize a graph workload's cache behaviour end to end.

Reproduces, on one workload, the paper's full characterization pipeline:

1. build a graph and trace a kernel over it;
2. trace-level characterization — PC count, per-PC footprint, reuse
   distances vs cache capacities (the E2/E3 analyses);
3. hierarchy simulation — MPKI per level, DRAM fraction (Figure 2's
   view);
4. LLC-size sensitivity — the same kernel on 1x/2x/4x LLCs.

Run:  python examples/graph_cache_study.py [kernel]   (default: sssp)
"""

import sys

from repro import cascade_lake, simulate
from repro.analysis import format_table, pc_profile, reuse_cdf, reuse_profile
from repro.gap import run_kernel
from repro.graphs import kronecker


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "sssp"
    machine = cascade_lake()

    print(f"tracing {kernel} over a scale-16 kron graph ...")
    graph = kronecker(scale=16, edge_factor=16, seed=23)
    run = run_kernel(kernel, graph, trace_name=f"{kernel}.kron16",
                     max_accesses=150_000)
    trace = run.trace

    # -- E2-style PC characterization ---------------------------------------
    profile = pc_profile(trace)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["static PCs", profile.num_pcs],
            ["PC entropy (bits)", profile.pc_entropy_bits],
            ["distinct blocks per PC (mean)", profile.mean_blocks_per_pc],
            ["footprint share per PC", profile.footprint_concentration],
        ],
        title=f"PC characterization: {trace.name}",
    ))

    # -- E3-style reuse-distance analysis ------------------------------------
    _, distances = reuse_profile(trace)
    block = 64
    capacities = {
        "L1D (32 KiB)": machine.l1d.size_bytes // block,
        "L2 (1 MiB)": machine.l2.size_bytes // block,
        "LLC (1.375 MiB)": machine.llc.size_bytes // block,
        "4x LLC": 4 * machine.llc.size_bytes // block,
    }
    cdf = reuse_cdf(distances, list(capacities.values()))
    print()
    print(format_table(
        ["capacity", "LRU hit fraction"],
        [[name, cdf[blocks]] for name, blocks in capacities.items()],
        title="Reuse-distance CDF",
    ))

    # -- Figure-2-style hierarchy simulation ---------------------------------
    result = simulate(trace, config=machine)
    print()
    print(format_table(
        ["level", "MPKI", "hit rate"],
        [
            [lvl, result.mpki(lvl), result.levels[lvl].demand_hit_rate]
            for lvl in ("L1D", "L2C", "LLC")
        ],
        title="Simulated hierarchy (LRU)",
    ))
    print(f"\nIPC {result.ipc:.3f}; "
          f"{result.l1d_miss_dram_fraction:.1%} of L1D misses reach DRAM")

    # -- E6-style LLC scaling --------------------------------------------------
    rows = []
    for factor in (1, 2, 4):
        scaled = simulate(trace, config=machine.with_llc_scale(factor))
        rows.append([f"{factor}x LLC", scaled.llc_mpki, scaled.ipc])
    print()
    print(format_table(["LLC size", "LLC MPKI", "IPC"], rows,
                       title="LLC-size sensitivity"))


if __name__ == "__main__":
    main()
