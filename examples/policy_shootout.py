#!/usr/bin/env python
"""Policy shootout: all evaluated policies on one SPEC-like and one
graph workload, Figure-3 style.

Demonstrates the paper's core contrast on a laptop-scale budget: the
learned policies (SHiP, Hawkeye, Glider, MPPPB) earn their complexity on
a PC-predictable SPEC-class workload and lose it on graph processing.

Run:  python examples/policy_shootout.py
"""

from repro import cascade_lake, run_matrix
from repro.analysis import format_table
from repro.gap import bfs
from repro.graphs import kronecker
from repro.policies import BASELINE_POLICY, PAPER_POLICIES
from repro.spec import build_spec_workload


def main() -> None:
    print("building workloads ...")
    spec_like = build_spec_workload("spec06", "soplex", num_accesses=150_000)
    graph = kronecker(scale=16, edge_factor=16, seed=7)
    graph_like = bfs(graph, num_sources=4, max_accesses=150_000).trace

    policies = [BASELINE_POLICY, *PAPER_POLICIES]
    print(f"simulating {2 * len(policies)} (workload, policy) cells ...")
    matrix = run_matrix(
        {"spec06.soplex": spec_like, "gap.bfs": graph_like},
        policies,
        config=cascade_lake(),
        progress=lambda w, p: print(f"  {w:14s} x {p}"),
    )

    rows = []
    for workload in matrix.workloads:
        rows.append(
            [
                workload,
                *[matrix.speedup(workload, p) for p in PAPER_POLICIES],
            ]
        )
    print()
    print(format_table(["workload", *PAPER_POLICIES], rows,
                       title="Speed-up over LRU"))

    rows = []
    for workload in matrix.workloads:
        rows.append(
            [workload, *[matrix.get(workload, p).llc_mpki for p in policies]]
        )
    print()
    print(format_table(["workload", *policies], rows, title="LLC MPKI",
                       float_format="{:.1f}"))


if __name__ == "__main__":
    main()
