#!/usr/bin/env python
"""Complexity vs benefit: what each policy costs and what it buys.

The paper's closing argument in one table: the learned policies spend an
order of magnitude more metadata storage than SRRIP-class designs, and
on graph processing that spend buys almost nothing. This example
combines the hardware-budget model (E11) with a quick GAP measurement.

Run:  python examples/complexity_vs_benefit.py
"""

from repro import cascade_lake, run_matrix
from repro.analysis import format_table, hbar_chart
from repro.gap import connected_components
from repro.graphs import kronecker
from repro.policies import PAPER_POLICIES
from repro.policies.budget import estimate_budget


def main() -> None:
    machine = cascade_lake()
    sets, ways = machine.llc.num_sets, machine.llc.num_ways

    print("tracing cc over a scale-16 kron graph ...")
    graph = kronecker(scale=16, edge_factor=16, seed=31)
    trace = connected_components(graph, max_accesses=120_000).trace

    policies = ["lru", *PAPER_POLICIES]
    print(f"simulating {len(policies)} policies ...")
    matrix = run_matrix({trace.name: trace}, policies, config=machine)

    lru_budget = estimate_budget("lru", sets, ways)
    rows = []
    speedups = {}
    for policy in PAPER_POLICIES:
        budget = estimate_budget(policy, sets, ways)
        speedup = matrix.speedup(trace.name, policy)
        speedups[policy] = speedup
        rows.append(
            [
                policy,
                budget.total_kib,
                budget.overhead_vs(lru_budget),
                speedup,
                (speedup - 1.0) * 100,
            ]
        )
    print()
    print(format_table(
        ["policy", "storage KiB", "x LRU storage", "GAP speedup", "gain %"],
        rows,
        title="Complexity vs benefit on graph processing",
    ))
    print()
    print(hbar_chart(speedups, title="Speed-up over LRU (cc.kron16)",
                     baseline=1.0, value_format="{:.3f}"))
    print()
    print(
        "Hawkeye/Glider/MPPPB spend 3-7x LRU's metadata for near-zero "
        "graph-processing benefit — the paper's conclusion."
    )


if __name__ == "__main__":
    main()
