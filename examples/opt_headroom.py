#!/usr/bin/env python
"""OPT headroom study: how much could a perfect LLC policy help?

Runs Belady's clairvoyant OPT (two-pass oracle) against LRU on a graph
workload and on a cache-friendly SPEC-class workload. The contrast shows
*why* the paper's learned policies fail to lift graph processing: even
the optimal policy barely moves the needle there.

Run:  python examples/opt_headroom.py
"""

from repro import cascade_lake, simulate_with_opt
from repro.gap import connected_components
from repro.graphs import kronecker
from repro.spec import build_spec_workload


def report(name: str, opt, lru) -> None:
    print(f"\n{name}")
    print(f"  LLC hit rate:  LRU {lru.levels['LLC'].demand_hit_rate:6.1%}"
          f"   OPT {opt.levels['LLC'].demand_hit_rate:6.1%}")
    print(f"  LLC MPKI:      LRU {lru.llc_mpki:6.1f}   OPT {opt.llc_mpki:6.1f}")
    reduction = 1 - opt.llc_mpki / lru.llc_mpki if lru.llc_mpki else 0.0
    print(f"  OPT removes {reduction:.1%} of LLC misses; "
          f"IPC gain {opt.ipc / lru.ipc - 1:+.1%}")


def main() -> None:
    machine = cascade_lake()

    print("tracing connected-components over a scale-16 kron graph ...")
    graph = kronecker(scale=16, edge_factor=16, seed=11)
    gap_trace = connected_components(graph, max_accesses=150_000).trace
    opt, lru = simulate_with_opt(gap_trace, config=machine)
    report("GAP cc.kron16", opt, lru)

    print("\ntracing a SPEC-class skewed-reuse workload ...")
    spec_trace = build_spec_workload("spec06", "GemsFDTD", num_accesses=150_000)
    opt, lru = simulate_with_opt(spec_trace, config=machine)
    report("spec06.GemsFDTD", opt, lru)

    print(
        "\nThe asymmetry is the paper's conclusion: graph misses are "
        "capacity-fundamental, not policy-fixable."
    )


if __name__ == "__main__":
    main()
