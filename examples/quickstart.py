#!/usr/bin/env python
"""Quickstart: simulate one graph workload under two replacement policies.

Builds a small Kronecker graph, traces a PageRank run over it, simulates
the trace on the paper's Cascade Lake machine under LRU and Hawkeye, and
prints the per-level statistics both ways.

Run:  python examples/quickstart.py
"""

from repro import cascade_lake, simulate
from repro.gap import pagerank
from repro.graphs import kronecker


def main() -> None:
    # 1. A scale-14 RMAT graph (16K vertices) — small enough to run in
    #    seconds, irregular enough to behave like real graph processing.
    graph = kronecker(scale=14, edge_factor=16, seed=42)
    print(f"graph: {graph}")

    # 2. Run PageRank for real and record its memory-access trace.
    run = pagerank(graph, num_iterations=3, max_accesses=200_000)
    trace = run.trace
    print(f"trace: {trace}")
    print(f"kernel code sites (PCs): {list(run.pcs)}")

    # 3. Simulate on the paper's machine under the LRU baseline and under
    #    Hawkeye, the strongest learned policy on SPEC-class workloads.
    machine = cascade_lake()
    lru = simulate(trace, config=machine, llc_policy="lru")
    hawkeye = simulate(trace, config=machine, llc_policy="hawkeye")

    for result in (lru, hawkeye):
        print()
        print(f"policy = {result.policy}")
        print(f"  IPC                 {result.ipc:8.3f}")
        for level in ("L1D", "L2C", "LLC"):
            print(f"  {level} MPKI           {result.mpki(level):8.1f}")
        print(f"  L1D misses -> DRAM  {result.l1d_miss_dram_fraction:8.1%}")

    speedup = hawkeye.speedup_over(lru)
    print()
    print(f"Hawkeye speed-up over LRU: {speedup:.3f}x")
    print(
        "On graph workloads the gain is marginal — the paper's central "
        "observation."
    )


if __name__ == "__main__":
    main()
