"""E6 — LLC-size sensitivity: does 'policies do not help GAP' survive
doubling and quadrupling the LLC? (The paper argues the problem is the
workload, not the particular 1.375 MB capacity.)"""

from repro.harness.experiments import experiment_llc_sensitivity


def test_e6_llc_size_sensitivity(benchmark, emit):
    report = benchmark.pedantic(experiment_llc_sensitivity, rounds=1, iterations=1)
    emit("e6_llc_sensitivity", report)

    speedup_col = report.headers.index("geomean speedup")
    for row in report.rows:
        llc_size, policy, speedup = row[0], row[1], row[speedup_col]
        # At every LLC size, policy gains on GAP stay small.
        assert 0.9 < speedup < 1.2, (llc_size, policy, speedup)
