"""Figure 2 — MPKI across the hierarchy for GAP workloads (plus E5's
L1D-miss-to-DRAM fraction, which the paper reports alongside it).

At full scale the assertions pin the paper's quantitative bands. Under
``REPRO_SMOKE`` (the CI gate's reduced traces) only the qualitative
shape is asserted here — quantitative drift at smoke scale is the job
of ``benchmarks/check_regression.py`` and its checked-in baseline.
"""

from repro.harness.experiments import experiment_fig2, smoke_mode


def test_fig2_gap_mpki_across_hierarchy(benchmark, emit):
    report = benchmark.pedantic(experiment_fig2, rounds=1, iterations=1)
    emit("fig2_mpki", report)

    mean_row = next(r for r in report.rows if r[0] == "MEAN")
    _, l1d, l2c, llc, dram_frac = mean_row

    # Paper's qualitative shape (Fig. 2): every level suffers double-digit
    # MPKI, the hierarchy filters L1D -> L2 -> LLC monotonically, and a
    # large share of L1D misses must be served by DRAM.
    assert l1d > l2c > llc, "MPKI must decrease down the hierarchy"
    assert llc > 15, "GAP workloads must stay miss-dominated at the LLC"

    if smoke_mode():
        # Reduced graphs shrink footprints, so the paper's absolute bands
        # do not apply; the regression gate checks the numbers instead.
        assert l2c > 15
        assert dram_frac > 0.2, "deep misses must still reach DRAM at smoke scale"
    else:
        assert l2c > 30
        # Paper averages 53.2 / 44.2 / 41.8: our LLC and L2C figures must land
        # in the same band (traces are array-access-only, so L1D runs higher —
        # see EXPERIMENTS.md).
        assert 25 < llc < 70
        assert 30 < l2c < 80
        assert dram_frac > 0.35, "most deep misses must reach DRAM"

    # Per-workload: every GAP kernel individually is miss-heavy at the LLC.
    for row in report.rows:
        if row[0] == "MEAN":
            continue
        assert row[3] > 10, f"{row[0]} should have LLC MPKI > 10"
