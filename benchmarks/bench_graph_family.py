"""E9 — kron vs urand graph families: both of GAP's synthetic inputs
must show the miss-dominated behaviour of Figure 2."""

from repro.harness.experiments import experiment_graph_family


def test_e9_graph_family_sensitivity(benchmark, emit):
    report = benchmark.pedantic(experiment_graph_family, rounds=1, iterations=1)
    emit("e9_graph_family", report)

    llc_col = report.headers.index("LLC MPKI")
    by_family: dict[str, list[float]] = {"kron": [], "urand": []}
    for row in report.rows:
        by_family[row[0]].append(row[llc_col])

    assert all(v > 8 for v in by_family["kron"])
    assert all(v > 8 for v in by_family["urand"])
    # urand has no hub reuse, so on average it misses at least as much.
    kron_mean = sum(by_family["kron"]) / len(by_family["kron"])
    urand_mean = sum(by_family["urand"]) / len(by_family["urand"])
    assert urand_mean > 0.8 * kron_mean
