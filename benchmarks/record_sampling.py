#!/usr/bin/env python
"""Record a sampled-vs-full accuracy entry in ``BENCH_sampling.json``.

Runs the representative-interval sampling validation harness
(:mod:`repro.sampling.validate`) over the GAP and SPEC06 suites at the
effective (``REPRO_SMOKE``) scales with the validated policy set, and
appends a schema-versioned entry to ``BENCH_sampling.json`` at the
repository root:

* git SHA and UTC date of the measurement,
* the sampling spec the accuracy was measured under,
* per-suite and overall mean/max relative error on LLC MPKI and IPC,
* the minimum and mean trace-reduction factor,
* the full-over-sampled wall-clock ratio (informational — the gated
  quantities are the error budget and the reduction floor, which are
  host-independent; wall-clock is not).

``check_regression.py --sampling`` gates the latest entry against the
committed error budget, so a change that degrades sampling accuracy (or
quietly erodes the trace reduction) fails CI instead of shipping.

Usage::

    REPRO_SMOKE=1 python benchmarks/record_sampling.py
    python benchmarks/check_regression.py --sampling

Appends are guarded (``recording_guard``): a dirty working tree or an
existing entry for the same commit at the same shape refuses the
recording unless ``--force`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_TRAJECTORY = REPO_ROOT / "BENCH_sampling.json"

#: Version of one sampling-trajectory entry's layout.
ENTRY_SCHEMA = 1

#: Entry fields defining the "shape" for the duplicate-recording guard.
SHAPE_KEYS = ("smoke", "scale", "spec", "policies", "suite_names")


def _git_sha() -> str:
    """Delegates to the sweep recorder so both stamp SHAs identically."""
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    from record_trajectory import _git_sha as sweep_git_sha

    return sweep_git_sha()


def _scale() -> dict:
    from repro.harness.experiments import (
        effective_gap_scale,
        effective_gap_window,
        effective_spec_window,
    )

    return {
        "gap_window": effective_gap_window(),
        "gap_scale": effective_gap_scale(),
        "spec_window": effective_spec_window(),
    }


def expected_shape(suites: tuple[str, ...]) -> dict:
    """The shape the next entry will record, computed before measuring."""
    from repro.harness.experiments import smoke_mode
    from repro.sampling import VALIDATED_POLICIES, SamplingSpec

    return {
        "smoke": smoke_mode(),
        "scale": _scale(),
        "spec": SamplingSpec().to_json_dict(),
        "policies": list(VALIDATED_POLICIES),
        "suite_names": sorted(suites),
    }


def measure(suites: tuple[str, ...]) -> dict:
    """One sampling-trajectory entry: the validation harness, aggregated."""
    from repro.harness.experiments import smoke_mode
    from repro.sampling import run_validation

    report = run_validation(
        suites=suites,
        progress=lambda cell: print(f"  validating {cell} ...", file=sys.stderr),
    )
    overall = report.overall
    wall_speedup = (
        overall.full_wall_s / overall.sampled_wall_s
        if overall.sampled_wall_s > 0
        else 0.0
    )
    return {
        "schema": ENTRY_SCHEMA,
        "git_sha": _git_sha(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "smoke": smoke_mode(),
        "scale": _scale(),
        "spec": report.spec.to_json_dict(),
        "policies": list(report.policies),
        "synthesis": report.to_json_dict()["synthesis"],
        "suite_names": sorted(report.suites),
        "suites": {
            suite: summary.to_json_dict()
            for suite, summary in sorted(report.suites.items())
        },
        "overall": overall.to_json_dict(),
        "wall_speedup": round(wall_speedup, 2),
    }


def load_trajectory(path: Path) -> dict:
    """The sampling trajectory document, or a fresh empty one."""
    if path.is_file():
        return json.loads(path.read_text(encoding="utf-8"))
    return {
        "schema": ENTRY_SCHEMA,
        "description": (
            "Sampled-vs-full accuracy trajectory of representative-interval "
            "sampling on the smoke GAP+SPEC06 suites; appended by "
            "benchmarks/record_sampling.py, gated by "
            "benchmarks/check_regression.py --sampling (see docs/sampling.md)"
        ),
        "entries": [],
    }


def append_entry(path: Path, entry: dict) -> None:
    document = load_trajectory(path)
    document["entries"].append(entry)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suites", nargs="*", default=["gap", "spec06"],
        choices=["gap", "spec06", "spec17"],
        help="validation suites (default: gap spec06)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_TRAJECTORY,
        help="trajectory file to append to (default: BENCH_sampling.json)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="record even with a dirty working tree or an existing entry "
             "for this commit at the same shape",
    )
    args = parser.parse_args(argv)
    if str(BENCH_DIR) not in sys.path:  # direct-script and importlib runs
        sys.path.insert(0, str(BENCH_DIR))
    from recording_guard import RecordingGuardError, guard_append

    suites = tuple(args.suites)
    try:
        guard_append(
            args.output,
            load_trajectory(args.output).get("entries", []),
            _git_sha(),
            expected_shape(suites),
            SHAPE_KEYS,
            force=args.force,
        )
    except RecordingGuardError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    entry = measure(suites)
    append_entry(args.output, entry)
    overall = entry["overall"]
    print(
        f"appended entry for {entry['git_sha'][:12]} to {args.output} "
        f"(mpki err mean {overall['mpki_err_mean']:.2%} "
        f"max {overall['mpki_err_max']:.2%}, "
        f"reduction min {overall['reduction_min']:.1f}x, "
        f"wall speed-up {entry['wall_speedup']:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
