"""Microbenchmarks: simulator throughput per policy.

These are conventional pytest-benchmark timings (multiple rounds) of the
simulation hot loop itself, so performance regressions in the cache or
policy code are caught alongside the figure-level benches.
"""

import pytest

from repro.core.config import cascade_lake, small_test_machine
from repro.core.simulator import simulate
from repro.trace import synthetic

POLICIES = ["lru", "srrip", "drrip", "ship", "hawkeye", "glider", "mpppb"]


@pytest.fixture(scope="module")
def workload():
    return synthetic.zipf_reuse(30_000, num_blocks=4096, seed=17)


@pytest.mark.parametrize("policy", POLICIES)
def test_simulation_throughput(benchmark, workload, policy):
    result = benchmark.pedantic(
        simulate,
        args=(workload,),
        kwargs={"config": small_test_machine(), "llc_policy": policy},
        rounds=3,
        iterations=1,
    )
    assert result.instructions > 0


@pytest.mark.parametrize("policy", ["lru", "ship", "hawkeye"])
def test_simulation_throughput_telemetry(benchmark, workload, policy):
    """The telemetry-armed loop, to keep its overhead visible over time.

    This is the *enabled* cost (interval sampling + per-set taps + 3C
    classifier); the disabled path is covered by
    ``test_simulation_throughput`` above, which must stay within 2% of
    its pre-telemetry numbers (docs/telemetry.md records the comparison).
    """
    from repro.telemetry import TelemetryConfig

    result = benchmark.pedantic(
        simulate,
        args=(workload,),
        kwargs={
            "config": small_test_machine(),
            "llc_policy": policy,
            "telemetry": TelemetryConfig(interval_instructions=10_000),
        },
        rounds=3,
        iterations=1,
    )
    assert "telemetry" in result.info


@pytest.mark.parametrize("engine", ["fast", "reference"])
@pytest.mark.parametrize("policy", POLICIES)
def test_engine_throughput(benchmark, workload, policy, engine):
    """Fast vs reference engine on the paper's machine geometry.

    The cascade_lake caches are large enough that the L1/L2 hot loop —
    the part the fast engine rewrites — dominates; the speedup target
    (``docs/performance.md``) is measured as the ratio of these two
    timings per policy. On the tiny ``small_test_machine`` geometry the
    LLC policy itself dominates instead, which is why the comparison
    lives on this config.
    """
    result = benchmark.pedantic(
        simulate,
        args=(workload,),
        kwargs={
            "config": cascade_lake(),
            "llc_policy": policy,
            "engine": engine,
        },
        rounds=3,
        iterations=1,
    )
    assert result.instructions > 0


def test_trace_generation_throughput(benchmark):
    from repro.gap import pagerank
    from repro.graphs import kronecker

    graph = kronecker(12, edge_factor=8, seed=3)
    run = benchmark.pedantic(
        pagerank,
        args=(graph,),
        kwargs={"num_iterations": 2},
        rounds=3,
        iterations=1,
    )
    assert len(run.trace) > 0


def test_reuse_distance_throughput(benchmark):
    from repro.analysis.reuse import reuse_distances

    trace = synthetic.zipf_reuse(20_000, num_blocks=2048, seed=18)
    distances = benchmark.pedantic(
        reuse_distances, args=(trace.block_addrs(),), rounds=3, iterations=1
    )
    assert len(distances) == 20_000
