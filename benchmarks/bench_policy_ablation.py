"""E7 — mechanism ablations: each policy's distinguishing mechanism must
earn its keep on the workload class it was designed for (DESIGN.md's
ablation index)."""

from repro.harness.experiments import experiment_policy_ablation


def test_e7_policy_mechanism_ablations(benchmark, emit):
    report = benchmark.pedantic(experiment_policy_ablation, rounds=1, iterations=1)
    emit("e7_policy_ablation", report)

    checks = report.notes["checks"]
    for name, passed in checks.items():
        assert passed, f"ablation check failed: {name}"
