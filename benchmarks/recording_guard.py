#!/usr/bin/env python
"""Append guard shared by the benchmark recorders.

``record_trajectory.py`` and ``record_sampling.py`` append entries to
checked-in trajectory files (``BENCH_sweep.json``,
``BENCH_sampling.json``) that the regression gates read. Two recording
mistakes silently poison those trajectories:

* **Dirty working tree** — the entry claims to measure ``git_sha`` but
  the tree contains uncommitted edits, so the number is attributed to a
  commit that never produced it.
* **Duplicate (SHA, shape)** — re-running a recorder appends a second
  entry for the same commit and matrix shape; the gate compares
  latest-vs-previous, so the duplicate makes every regression check
  compare a commit against itself and trivially pass.

:func:`guard_append` refuses both before any measurement runs.
``--force`` (the recorders' escape hatch) downgrades the refusal to a
warning for intentional local recordings, e.g. re-baselining from a
work-in-progress tree.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent


class RecordingGuardError(RuntimeError):
    """Recording refused: the entry would misattribute or duplicate."""


def working_tree_changes(repo_root: Path = REPO_ROOT) -> list[str]:
    """Porcelain status lines of uncommitted changes; [] outside git.

    A broken or absent git is treated as "no changes detected" rather
    than an error — the guard protects attribution, and with no
    repository there is nothing to misattribute (``git_sha`` will be
    ``unknown`` and the SHA guard stands down too).
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return []
    if out.returncode != 0:
        return []
    return [line for line in out.stdout.splitlines() if line.strip()]


def entry_shape(entry: dict, shape_keys: tuple[str, ...]) -> dict:
    """The comparable shape of one trajectory entry."""
    return {key: entry.get(key) for key in shape_keys}


def guard_append(
    output: Path,
    entries: list[dict],
    git_sha: str,
    shape: dict,
    shape_keys: tuple[str, ...],
    force: bool = False,
) -> None:
    """Refuse an append that would misattribute or duplicate an entry.

    ``shape`` is the new entry's shape (the same keys listed in
    ``shape_keys``); existing entries are reduced to the same keys for
    the duplicate check, so entries measured at a different scale or
    matrix for the same commit are still allowed. Raises
    :class:`RecordingGuardError` with every reason at once; ``force``
    turns the refusal into a stderr warning.
    """
    reasons: list[str] = []
    dirty = working_tree_changes()
    if dirty:
        listing = ", ".join(line.strip() for line in dirty[:5])
        if len(dirty) > 5:
            listing += f", ... ({len(dirty)} total)"
        reasons.append(
            f"working tree has uncommitted changes ({listing}); the entry "
            f"would be attributed to {git_sha[:12]} but measure something else"
        )
    if git_sha not in ("", "unknown"):
        duplicates = [
            index
            for index, entry in enumerate(entries)
            if entry.get("git_sha") == git_sha
            and entry_shape(entry, shape_keys) == shape
        ]
        if duplicates:
            reasons.append(
                f"{output.name} already has {len(duplicates)} entry(ies) for "
                f"{git_sha[:12]} at this matrix shape (index "
                f"{', '.join(str(i) for i in duplicates)}); the gate would "
                "compare the commit against itself"
            )
    if not reasons:
        return
    if force:
        for reason in reasons:
            print(f"warning (--force): {reason}", file=sys.stderr)
        return
    raise RecordingGuardError(
        "refusing to record:\n"
        + "\n".join(f"  - {reason}" for reason in reasons)
        + "\n(re-run with --force to record anyway)"
    )
