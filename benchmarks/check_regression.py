#!/usr/bin/env python
"""Benchmark-regression gate: compare results/ against expected/.

Reads the JSON artifacts the ``emit`` fixture wrote under
``benchmarks/results/`` and compares the key aggregate metrics (Figure 3
geomean speed-ups, Figure 2 mean MPKIs) against the checked-in baseline
in ``benchmarks/expected/``, within per-metric tolerances. Exits
non-zero on any drift beyond tolerance — CI runs this after the smoke
benchmark subset, so a core change that silently degrades (or inflates)
a policy's measured speed-up fails the build.

Exit codes: 0 = within tolerance, 1 = regression (or scale mismatch),
2 = the gate could not run at all (missing results or baseline file).

``--markdown PATH`` appends a GitHub-flavoured summary table to PATH —
CI passes ``$GITHUB_STEP_SUMMARY`` so the per-metric drift table shows
up in the job summary without downloading artifacts.

The baseline records the workload scale it was captured at; results
produced at a different scale are rejected rather than mis-compared.
Regenerate the baseline after an intentional change with::

    REPRO_SMOKE=1 python -m pytest benchmarks/bench_fig2_mpki.py \
        benchmarks/bench_fig3_speedup.py --benchmark-only
    python benchmarks/check_regression.py --update

``--trajectory`` switches to the performance-trajectory gate instead:
it reads the checked-in ``BENCH_sweep.json`` (appended to by
``benchmarks/record_trajectory.py``), fails when the latest entry's
per-engine throughput regressed more than 15% against the previous
entry, or when the batched engine's wall-clock speed-up over the
per-cell fast path fell below the floor (3x), and posts a markdown
trend table to ``--markdown`` (CI: ``$GITHUB_STEP_SUMMARY``).

``--sampling`` gates representative-interval sampling accuracy: it
reads ``BENCH_sampling.json`` (appended to by
``benchmarks/record_sampling.py``) and fails when the latest entry's
sampled-vs-full error exceeds the committed budget (mean/max relative
error on LLC MPKI and IPC) or the minimum trace-reduction factor fell
below the floor (10x). The per-suite error table goes to ``--markdown``
(CI: ``$GITHUB_STEP_SUMMARY``). See docs/sampling.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
DEFAULT_RESULTS = BENCH_DIR / "results"
DEFAULT_EXPECTED = BENCH_DIR / "expected" / "smoke.json"
DEFAULT_TRAJECTORY = BENCH_DIR.parent / "BENCH_sweep.json"
DEFAULT_SAMPLING = BENCH_DIR.parent / "BENCH_sampling.json"

#: Maximum tolerated drop of an engine's cells/second between the last
#: two trajectory entries. Absolute throughput is host-sensitive, so
#: this is deliberately loose; the speed-up ratio below is the sharp
#: (host-independent) part of the gate.
TRAJECTORY_REGRESSION_LIMIT = 0.15

#: Floor on the batched engine's wall-clock speed-up over the per-cell
#: fast engine in the latest entry. Both engines run in the same
#: process on the same matrix, so this ratio is robust to host speed.
MIN_BATCHED_SPEEDUP = 3.0

#: The sampling error budget: ceilings on the latest BENCH_sampling.json
#: entry's overall sampled-vs-full relative error. Both metrics are
#: host-independent (full and sampled runs execute the same simulator in
#: the same process), so the budget is sharp — exceeding any ceiling
#: means sampling accuracy actually changed. Values are fractions:
#: 0.03 = 3% relative error.
SAMPLING_BUDGET = {
    "mpki_err_mean": 0.03,
    "mpki_err_max": 0.08,
    "ipc_err_mean": 0.05,
    "ipc_err_max": 0.12,
}

#: Floor on the latest entry's *minimum* per-cell trace-reduction
#: factor: sampling that stops reducing the simulated record count has
#: no reason to exist, however accurate it is.
MIN_SAMPLING_REDUCTION = 10.0

#: (results file, scale-note keys) per gated experiment.
GATED = {
    "fig3_speedup": ("fig3_speedup.json", ("gap_window", "gap_scale", "spec_window")),
    "fig2_mpki": ("fig2_mpki.json", ("gap_window", "gap_scale")),
}


class GateError(Exception):
    """The gate could not run at all (missing inputs) — exit code 2."""


def _load_report(results_dir: Path, filename: str) -> dict:
    path = results_dir / filename
    if not path.is_file():
        raise GateError(
            f"missing results artifact: {path} (run the smoke benchmarks first)"
        )
    return json.loads(path.read_text(encoding="utf-8"))


def _load_baseline(expected_path: Path) -> dict:
    if not expected_path.is_file():
        raise GateError(
            f"missing baseline file: {expected_path} "
            "(capture one with check_regression.py --update)"
        )
    return json.loads(expected_path.read_text(encoding="utf-8"))


def _row_values(report: dict) -> dict[str, dict[str, float]]:
    """rows -> {row label: {column header: value}} for numeric columns."""
    headers = report["headers"]
    table: dict[str, dict[str, float]] = {}
    for row in report["rows"]:
        table[str(row[0])] = {
            header: cell
            for header, cell in zip(headers[1:], row[1:])
            if isinstance(cell, (int, float))
        }
    return table


def _check_scale(name: str, report: dict, expected_scale: dict, failures: list[str]) -> None:
    notes = report.get("notes", {})
    for key in GATED[name][1]:
        got, want = notes.get(key), expected_scale.get(key)
        if want is not None and got != want:
            failures.append(
                f"{name}: produced at {key}={got}, baseline captured at {key}={want} "
                "— run the smoke subset (REPRO_SMOKE=1) before gating"
            )


def _render_markdown(
    rows: list[dict], failures: list[str], compared: int, baseline_name: str
) -> str:
    """The comparison as a GitHub-flavoured job-summary section."""
    verdict = (
        "✅ all within tolerance"
        if not failures
        else f"❌ {len(failures)} failure(s)"
    )
    lines = [
        "## Benchmark regression gate",
        "",
        f"Compared **{compared}** metrics against `{baseline_name}`: {verdict}",
        "",
    ]
    if rows:
        lines += [
            "| metric | row | column | baseline | got | drift | limit | status |",
            "| --- | --- | --- | --- | --- | --- | --- | --- |",
        ]
        for r in rows:
            status = "✅ ok" if r["ok"] else "❌ regression"
            lines.append(
                f"| {r['metric']} | {r['row']} | {r['column']} "
                f"| {r['want']:.4f} | {r['got']:.4f} "
                f"| {r['drift']:.4f} | {r['limit']:.4f} | {status} |"
            )
    other = [f for f in failures if not f.startswith(tuple(f"{r['metric']}[" for r in rows))]
    if other:
        lines += ["", "Other failures:", ""]
        lines += [f"- {f}" for f in other]
    lines.append("")
    return "\n".join(lines)


def check(results_dir: Path, expected_path: Path, markdown: Path | None = None) -> int:
    expected = _load_baseline(expected_path)
    failures: list[str] = []
    rows: list[dict] = []
    compared = 0

    for name, spec in expected["metrics"].items():
        report = _load_report(results_dir, GATED[name][0])
        _check_scale(name, report, expected.get("scale", {}), failures)
        table = _row_values(report)
        tol_abs = spec.get("tolerance_abs")
        tol_rel = spec.get("tolerance_rel")
        for row_label, columns in spec["values"].items():
            for column, want in columns.items():
                got = table.get(row_label, {}).get(column)
                if got is None:
                    failures.append(f"{name}: missing cell [{row_label}][{column}]")
                    continue
                compared += 1
                drift = abs(got - want)
                limit = tol_abs if tol_abs is not None else abs(want) * tol_rel
                ok = drift <= limit
                rows.append({
                    "metric": name, "row": row_label, "column": column,
                    "want": want, "got": got, "drift": drift, "limit": limit,
                    "ok": ok,
                })
                print(
                    f"{name:>14} {row_label:>8} {column:<16} "
                    f"expected {want:8.4f}  got {got:8.4f}  "
                    f"drift {drift:7.4f} (limit {limit:.4f})  "
                    f"{'ok' if ok else 'REGRESSION'}"
                )
                if not ok:
                    failures.append(
                        f"{name}[{row_label}][{column}]: {got:.4f} vs baseline "
                        f"{want:.4f} (drift {drift:.4f} > {limit:.4f})"
                    )

    print(f"\ncompared {compared} metrics against {expected_path.name}")
    if markdown is not None:
        section = _render_markdown(rows, failures, compared, expected_path.name)
        with open(markdown, "a", encoding="utf-8") as handle:
            handle.write(section + "\n")
        print(f"appended markdown summary to {markdown}")
    if failures:
        print(f"{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark regression gate: OK")
    return 0


def _trajectory_markdown(entries: list[dict], failures: list[str]) -> str:
    """The trajectory's recent entries as a job-summary trend table."""
    verdict = (
        "✅ throughput trajectory healthy"
        if not failures
        else f"❌ {len(failures)} failure(s)"
    )
    lines = [
        "## Sweep-throughput trajectory",
        "",
        f"`BENCH_sweep.json`, {len(entries)} entries: {verdict}",
        "",
        "| date | commit | cells | jobs | fast cells/s | batched cells/s | batched speed-up |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for entry in entries[-8:]:
        engines = entry.get("engines", {})
        fast = engines.get("fast", {}).get("cells_per_sec")
        batched = engines.get("batched", {}).get("cells_per_sec")
        lines.append(
            f"| {entry.get('date', '?')} | {str(entry.get('git_sha', '?'))[:12]} "
            f"| {entry.get('matrix', {}).get('cells', '?')} "
            f"| {entry.get('jobs', '?')} "
            f"| {fast if fast is not None else '—'} "
            f"| {batched if batched is not None else '—'} "
            f"| {entry.get('batched_speedup', '—')}x |"
        )
    if failures:
        lines += ["", "Failures:", ""]
        lines += [f"- {f}" for f in failures]
    lines.append("")
    return "\n".join(lines)


def check_trajectory(
    trajectory_path: Path,
    markdown: Path | None = None,
    regression_limit: float = TRAJECTORY_REGRESSION_LIMIT,
    min_speedup: float = MIN_BATCHED_SPEEDUP,
) -> int:
    """Gate the latest ``BENCH_sweep.json`` entry; see module docstring."""
    if not trajectory_path.is_file():
        raise GateError(
            f"missing trajectory file: {trajectory_path} "
            "(record an entry with benchmarks/record_trajectory.py first)"
        )
    document = json.loads(trajectory_path.read_text(encoding="utf-8"))
    entries = document.get("entries", [])
    if not entries:
        raise GateError(
            f"{trajectory_path} contains no entries "
            "(record one with benchmarks/record_trajectory.py first)"
        )

    failures: list[str] = []
    latest = entries[-1]
    previous = entries[-2] if len(entries) >= 2 else None

    speedup = latest.get("batched_speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("latest entry records no batched_speedup")
    elif speedup < min_speedup:
        failures.append(
            f"batched engine speed-up {speedup:.2f}x fell below the "
            f"{min_speedup:.1f}x floor (latest entry {latest.get('git_sha', '?')[:12]})"
        )
    else:
        print(
            f"batched speed-up {speedup:.2f}x over the per-cell fast engine "
            f"(floor {min_speedup:.1f}x): ok"
        )

    if previous is not None:
        for engine, current in sorted(latest.get("engines", {}).items()):
            before = previous.get("engines", {}).get(engine)
            if before is None:
                continue
            got = current.get("cells_per_sec", 0.0)
            want = before.get("cells_per_sec", 0.0)
            floor = want * (1.0 - regression_limit)
            ok = got >= floor
            print(
                f"{engine:>8}: {got:8.2f} cells/s vs previous {want:8.2f} "
                f"(floor {floor:8.2f})  {'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                failures.append(
                    f"{engine} engine throughput regressed "
                    f"{100 * (1 - got / want):.1f}% "
                    f"({got:.2f} vs {want:.2f} cells/s, "
                    f"limit {100 * regression_limit:.0f}%)"
                )
    else:
        print("single trajectory entry: nothing to compare against yet")

    if markdown is not None:
        with open(markdown, "a", encoding="utf-8") as handle:
            handle.write(_trajectory_markdown(entries, failures) + "\n")
        print(f"appended markdown trend table to {markdown}")
    if failures:
        print(f"{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("sweep-throughput trajectory gate: OK")
    return 0


def _sampling_markdown(entry: dict, failures: list[str]) -> str:
    """The latest sampling entry as a job-summary error table."""
    verdict = (
        "✅ within the error budget"
        if not failures
        else f"❌ {len(failures)} failure(s)"
    )
    spec = entry.get("spec", {})
    lines = [
        "## Sampling error-budget gate",
        "",
        f"`BENCH_sampling.json` latest entry "
        f"({str(entry.get('git_sha', '?'))[:12]}, "
        f"policies {', '.join(entry.get('policies', []))}, "
        f"k={spec.get('intervals', '?')} seed={spec.get('seed', '?')}): "
        f"{verdict}",
        "",
        "| suite | cells | MPKI err mean | MPKI err max | IPC err mean "
        "| IPC err max | reduction min | reduction mean |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    summaries = dict(entry.get("suites", {}))
    summaries["**overall**"] = entry.get("overall", {})
    for suite, summary in summaries.items():
        lines.append(
            f"| {suite} | {summary.get('cells', '?')} "
            f"| {summary.get('mpki_err_mean', 0.0):.2%} "
            f"| {summary.get('mpki_err_max', 0.0):.2%} "
            f"| {summary.get('ipc_err_mean', 0.0):.2%} "
            f"| {summary.get('ipc_err_max', 0.0):.2%} "
            f"| {summary.get('reduction_min', 0.0):.1f}x "
            f"| {summary.get('reduction_mean', 0.0):.1f}x |"
        )
    lines += [
        "",
        f"Budget: MPKI mean ≤ {SAMPLING_BUDGET['mpki_err_mean']:.0%}, "
        f"max ≤ {SAMPLING_BUDGET['mpki_err_max']:.0%}; "
        f"IPC mean ≤ {SAMPLING_BUDGET['ipc_err_mean']:.0%}, "
        f"max ≤ {SAMPLING_BUDGET['ipc_err_max']:.0%}; "
        f"reduction ≥ {MIN_SAMPLING_REDUCTION:.0f}x. "
        f"Wall-clock speed-up {entry.get('wall_speedup', '?')}x "
        "(informational).",
    ]
    if failures:
        lines += ["", "Failures:", ""]
        lines += [f"- {f}" for f in failures]
    lines.append("")
    return "\n".join(lines)


def check_sampling(
    sampling_path: Path,
    markdown: Path | None = None,
    budget: dict[str, float] = SAMPLING_BUDGET,
    min_reduction: float = MIN_SAMPLING_REDUCTION,
) -> int:
    """Gate the latest ``BENCH_sampling.json`` entry; see module docstring."""
    if not sampling_path.is_file():
        raise GateError(
            f"missing sampling trajectory: {sampling_path} "
            "(record an entry with benchmarks/record_sampling.py first)"
        )
    document = json.loads(sampling_path.read_text(encoding="utf-8"))
    entries = document.get("entries", [])
    if not entries:
        raise GateError(
            f"{sampling_path} contains no entries "
            "(record one with benchmarks/record_sampling.py first)"
        )

    failures: list[str] = []
    latest = entries[-1]
    overall = latest.get("overall")
    if not isinstance(overall, dict):
        raise GateError(
            f"latest entry of {sampling_path} records no overall aggregate"
        )

    for metric, ceiling in budget.items():
        got = overall.get(metric)
        if not isinstance(got, (int, float)):
            failures.append(f"latest entry records no {metric}")
            continue
        ok = got <= ceiling
        print(
            f"{metric:>14}: {got:7.2%} (budget {ceiling:.0%})  "
            f"{'ok' if ok else 'OVER BUDGET'}"
        )
        if not ok:
            failures.append(
                f"{metric} {got:.2%} exceeds the {ceiling:.0%} budget "
                f"(latest entry {str(latest.get('git_sha', '?'))[:12]})"
            )
    reduction = overall.get("reduction_min")
    if not isinstance(reduction, (int, float)):
        failures.append("latest entry records no reduction_min")
    else:
        ok = reduction >= min_reduction
        print(
            f" reduction_min: {reduction:6.1f}x (floor {min_reduction:.0f}x)  "
            f"{'ok' if ok else 'BELOW FLOOR'}"
        )
        if not ok:
            failures.append(
                f"minimum trace reduction {reduction:.1f}x fell below the "
                f"{min_reduction:.0f}x floor"
            )

    if markdown is not None:
        with open(markdown, "a", encoding="utf-8") as handle:
            handle.write(_sampling_markdown(latest, failures) + "\n")
        print(f"appended markdown error table to {markdown}")
    if failures:
        print(f"{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("sampling error-budget gate: OK")
    return 0


def update(results_dir: Path, expected_path: Path) -> int:
    """Capture the current results as the new baseline."""
    fig3 = _load_report(results_dir, GATED["fig3_speedup"][0])
    fig2 = _load_report(results_dir, GATED["fig2_mpki"][0])
    notes = fig3.get("notes", {})
    baseline = {
        "description": (
            "Smoke-scale benchmark baseline for the CI regression gate; "
            "regenerate with check_regression.py --update (see docstring)"
        ),
        "scale": {
            "gap_window": notes.get("gap_window"),
            "gap_scale": notes.get("gap_scale"),
            "spec_window": notes.get("spec_window"),
        },
        "metrics": {
            "fig3_speedup": {
                "tolerance_abs": 0.02,
                "values": _row_values(fig3),
            },
            "fig2_mpki": {
                "tolerance_rel": 0.10,
                "values": {"MEAN": _row_values(fig2)["MEAN"]},
            },
        },
    }
    expected_path.parent.mkdir(parents=True, exist_ok=True)
    expected_path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {expected_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument("--expected", type=Path, default=DEFAULT_EXPECTED)
    parser.add_argument("--markdown", type=Path, default=None, metavar="PATH",
                        help="append a GitHub-flavoured summary table to PATH "
                             "(CI passes $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    parser.add_argument("--trajectory", action="store_true",
                        help="gate the BENCH_sweep.json perf trajectory "
                             "instead of the results/ artifacts")
    parser.add_argument("--trajectory-file", type=Path,
                        default=DEFAULT_TRAJECTORY, metavar="PATH",
                        help="trajectory file (default: BENCH_sweep.json)")
    parser.add_argument("--sampling", action="store_true",
                        help="gate the BENCH_sampling.json sampled-vs-full "
                             "error budget instead of the results/ artifacts")
    parser.add_argument("--sampling-file", type=Path,
                        default=DEFAULT_SAMPLING, metavar="PATH",
                        help="sampling trajectory file "
                             "(default: BENCH_sampling.json)")
    parser.add_argument("--min-batched-speedup", type=float,
                        default=MIN_BATCHED_SPEEDUP, metavar="RATIO",
                        help="floor on batched-vs-fast wall-clock speed-up "
                             f"(default: {MIN_BATCHED_SPEEDUP})")
    args = parser.parse_args(argv)
    try:
        if args.sampling:
            return check_sampling(args.sampling_file, markdown=args.markdown)
        if args.trajectory:
            return check_trajectory(
                args.trajectory_file,
                markdown=args.markdown,
                min_speedup=args.min_batched_speedup,
            )
        if args.update:
            return update(args.results, args.expected)
        return check(args.results, args.expected, markdown=args.markdown)
    except GateError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
