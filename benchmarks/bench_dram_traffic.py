"""E5 — DRAM transactions per kilo-instruction on GAP, per policy.

The pressure side of the paper's story: GAP kernels drive near-constant
DRAM traffic regardless of the LLC policy, because the misses are
capacity-fundamental rather than decision-fixable.
"""

from repro.harness.experiments import experiment_dram_traffic


def test_e5_dram_traffic(benchmark, emit):
    report = benchmark.pedantic(experiment_dram_traffic, rounds=1, iterations=1)
    emit("e5_dram_traffic", report)

    policies = report.headers[1:]
    for row in report.rows:
        workload, values = row[0], dict(zip(policies, row[1:]))
        # Traffic is substantial under every policy...
        assert all(v > 5 for v in values.values()), workload
        # ...and no policy changes it by more than ~50% in either direction.
        assert max(values.values()) < 1.6 * min(values.values()), (workload, values)
