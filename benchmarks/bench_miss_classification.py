"""E10 — 3C miss classification at the LLC: GAP misses must be
overwhelmingly compulsory + capacity (replacement cannot fix them)."""

from repro.harness.experiments import experiment_miss_classification


def test_e10_miss_classification(benchmark, emit):
    report = benchmark.pedantic(
        experiment_miss_classification, rounds=1, iterations=1
    )
    emit("e10_miss_classification", report)

    comp_col = report.headers.index("compulsory")
    cap_col = report.headers.index("capacity")
    for row in report.rows:
        suite, workload = row[0], row[1]
        unfixable = row[comp_col] + row[cap_col]
        if suite == "gap":
            assert unfixable > 0.85, (workload, unfixable)

    # Fractions are well-formed everywhere.
    for row in report.rows:
        total = row[comp_col] + row[cap_col] + row[report.headers.index("conflict")]
        assert abs(total - 1.0) < 1e-6 or total == 0.0
