"""Table I — the simulated system configuration (paper Section I-C)."""

from repro.harness.experiments import experiment_table1


def test_table1_system_configuration(benchmark, emit):
    report = benchmark.pedantic(experiment_table1, rounds=1, iterations=1)
    emit("table1_config", report)
    rows = dict((r[0], r[1]) for r in report.rows)
    # The paper's machine: 32 KB L1s, 1 MB L2, 1.375 MB LLC, DDR4.
    assert "32 KiB" in rows["L1D"]
    assert "1 MiB" in rows["L2"]
    assert "1.375 MiB" in rows["LLC"] and "11-way" in rows["LLC"]
    assert "DDR4" in rows["DRAM"]
