"""Shared machinery for the per-figure benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper. The
``emit`` fixture prints the rendered table and also writes it under
``benchmarks/results/`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves the complete set of reproduced artifacts on disk — those files
are the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", Path(__file__).parent / "results"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print an ExperimentReport and persist it to results/<name>.txt."""

    def _emit(name: str, report) -> None:
        rendered = report.render()
        (results_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
        with capsys.disabled():
            print()
            print(rendered)

    return _emit
