"""Shared machinery for the per-figure benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper. The
``emit`` fixture prints the rendered table and also writes it under
``benchmarks/results/`` — both as text and as a JSON artifact (the CI
regression gate reads the JSON) — so a full ``pytest benchmarks/
--benchmark-only`` run leaves the complete set of reproduced artifacts
on disk; those files are the source for EXPERIMENTS.md.

All benchmark sweeps route through the sweep engine
(:mod:`repro.harness.engine`): this conftest defaults ``REPRO_CACHE_DIR``
to ``benchmarks/.cache`` and ``REPRO_JOBS`` to the machine's core count
(capped at 4), so repeated benchmark runs re-simulate only what changed
and fresh runs use the available parallelism. Export either variable to
override; ``REPRO_SMOKE=1`` switches every workload to the reduced
smoke scale the CI gate runs (see docs/sweeps.md).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_CACHE_DIR", str(Path(__file__).parent / ".cache"))
os.environ.setdefault("REPRO_JOBS", str(min(4, os.cpu_count() or 1)))

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", Path(__file__).parent / "results"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print an ExperimentReport and persist it to results/<name>.{txt,json}."""

    def _emit(name: str, report) -> None:
        rendered = report.render()
        (results_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
        (results_dir / f"{name}.json").write_text(
            json.dumps(report.to_json_dict(), indent=2) + "\n", encoding="utf-8"
        )
        with capsys.disabled():
            print()
            print(rendered)

    return _emit
