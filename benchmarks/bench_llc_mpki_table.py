"""E1 — LLC MPKI of every GAP workload under every evaluated policy
(the per-workload data behind Figure 3's GAP bar)."""

from repro.harness.experiments import experiment_llc_mpki


def test_e1_llc_mpki_per_policy(benchmark, emit):
    report = benchmark.pedantic(experiment_llc_mpki, rounds=1, iterations=1)
    emit("e1_llc_mpki", report)

    header = report.headers
    lru_col = header.index("lru")
    for row in report.rows:
        workload, values = row[0], row[1:]
        lru_mpki = row[lru_col]
        # No policy reduces GAP LLC MPKI by a transformative amount —
        # the paper's central negative result (OPT headroom itself is low).
        for policy, mpki in zip(header[1:], values):
            assert mpki > 0.55 * lru_mpki, (
                f"{policy} on {workload}: MPKI {mpki:.1f} vs LRU {lru_mpki:.1f} — "
                "GAP misses must remain mostly unfixable"
            )
