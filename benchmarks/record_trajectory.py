#!/usr/bin/env python
"""Record a sweep-throughput entry in the checked-in perf trajectory.

Runs the smoke fig2/fig3 sweep matrix (every GAP + SPEC proxy workload
x every paper policy, at the ``REPRO_SMOKE`` scales) once per engine —
the per-cell fast path and the batched multi-cell engine — with the
result cache disabled, and appends a schema-versioned entry to
``BENCH_sweep.json`` at the repository root:

* git SHA and UTC date of the measurement,
* per-engine wall-clock and cells/second for the identical matrix,
* the batched-over-fast wall-clock speed-up.

The file is the project's canonical performance trajectory (linked from
README/ROADMAP): every CI benchmarks run appends the current commit's
numbers and ``check_regression.py --trajectory`` gates them against the
last checked-in entry, so a throughput regression (or a batched engine
that quietly stops being faster) fails the build instead of eroding
silently. Because both engines run in the same process on the same
machine, the *ratio* is robust to host speed even though the absolute
cells/second are not.

Usage::

    REPRO_SMOKE=1 python benchmarks/record_trajectory.py --jobs 1
    python benchmarks/check_regression.py --trajectory

Appends are guarded (``recording_guard``): a dirty working tree or an
existing entry for the same commit at the same matrix shape refuses the
recording — either would poison the trajectory's latest-vs-previous
comparison — unless ``--force`` is given.

The gated quantity is the *ratio*, so the trajectory is recorded at
``--jobs 1`` by default even on multi-core hosts: serial runs keep the
two engines' wall-clocks free of process-pool startup and per-worker
trace-registry transfer, a fixed absolute cost that would dent the
(much shorter) batched wall-clock disproportionately.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_TRAJECTORY = REPO_ROOT / "BENCH_sweep.json"

#: Version of one trajectory entry's layout.
ENTRY_SCHEMA = 1

#: Entry fields that together define the "matrix shape" for the
#: duplicate-recording guard: a re-measurement of the same commit at a
#: different scale or matrix is allowed, an identical one is refused.
SHAPE_KEYS = ("smoke", "scale", "matrix")

#: Engines measured per entry, in run order. The fast per-cell engine
#: runs first so its wall-clock is the denominator of the speed-up.
MEASURED_ENGINES = ("fast", "batched")


def _git_sha() -> str:
    """The commit being measured: CI's GITHUB_SHA, else git, else unknown."""
    env = os.environ.get("GITHUB_SHA", "").strip()
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _smoke_matrix() -> tuple[dict, list[str]]:
    """The fig2/fig3 sweep inputs at the effective (smoke) scales."""
    from repro.harness.experiments import gap_traces, spec_traces
    from repro.policies.registry import BASELINE_POLICY, PAPER_POLICIES

    traces: dict = {}
    traces.update(gap_traces())
    traces.update(spec_traces("spec06"))
    traces.update(spec_traces("spec17"))
    policies = list(dict.fromkeys([BASELINE_POLICY, *PAPER_POLICIES]))
    return traces, policies


def expected_shape(jobs: int) -> dict:
    """The shape the next entry will record, computed before measuring.

    Matches the ``SHAPE_KEYS`` fields :func:`measure` writes, so the
    duplicate-recording guard can refuse *before* the (minutes-long)
    measurement runs. ``jobs`` is accepted for signature symmetry but is
    deliberately not part of the shape: re-recording the same commit at
    a different ``--jobs`` still overwrites the gated ratio, so it is
    just as much a duplicate.
    """
    del jobs
    from repro.harness.experiments import (
        effective_gap_scale,
        effective_gap_window,
        effective_spec_window,
        smoke_mode,
    )

    traces, policies = _smoke_matrix()
    return {
        "smoke": smoke_mode(),
        "scale": {
            "gap_window": effective_gap_window(),
            "gap_scale": effective_gap_scale(),
            "spec_window": effective_spec_window(),
        },
        "matrix": {
            "workloads": len(traces),
            "policies": len(policies),
            "cells": len(traces) * len(policies),
        },
    }


def measure(jobs: int, repeats: int = 2) -> dict:
    """One trajectory entry: the smoke matrix timed under each engine.

    Caching is disabled so the numbers measure simulation throughput,
    not cache hits; traces are built (and memoized) before the first
    timer starts so workload generation is excluded from both engines
    equally.

    Each engine is timed ``repeats`` times and the entry keeps the
    *minimum* wall-clock — the standard estimator of un-contended run
    time, since interference (host contention, thermal throttling, a
    noisy CI neighbour) only ever adds time. Runs alternate engine
    order so a machine that slows down over the measurement cannot
    systematically tax whichever engine runs last.
    """
    from repro.harness.engine import SweepEngine
    from repro.harness.experiments import (
        effective_gap_scale,
        effective_gap_window,
        effective_spec_window,
        smoke_mode,
    )

    traces, policies = _smoke_matrix()
    cells = len(traces) * len(policies)
    best: dict[str, float] = {}
    # Both engines run with the cyclic garbage collector off: the
    # generational GC repeatedly re-traverses every long-lived container
    # (the batched engine's plans alone hold millions of tuples), which
    # adds double-digit-percent wall-clock that measures the allocator,
    # not the engines. Reference counting still frees everything that
    # matters here; the collector is restored afterwards.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for rep in range(max(1, repeats)):
            order = MEASURED_ENGINES if rep % 2 == 0 else MEASURED_ENGINES[::-1]
            for name in order:
                sweep = SweepEngine(cache_dir=None, jobs=jobs)
                started = time.perf_counter()
                outcome = sweep.run(traces, policies, engine=name)
                wall = time.perf_counter() - started
                if outcome.stats.simulated != cells:
                    raise RuntimeError(
                        f"engine {name!r} simulated "
                        f"{outcome.stats.simulated} of {cells} cells — "
                        "trajectory numbers would not be comparable"
                    )
                best[name] = min(wall, best.get(name, wall))
                print(
                    f"  engine={name}: {cells} cells in {wall:.1f}s "
                    f"({cells / wall:.2f} cells/s, jobs={jobs}, "
                    f"run {rep + 1}/{max(1, repeats)})",
                    file=sys.stderr,
                )
                gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    engines = {
        name: {
            "wall_s": round(best[name], 3),
            "cells_per_sec": round(cells / best[name], 3),
        }
        for name in MEASURED_ENGINES
    }
    entry = {
        "schema": ENTRY_SCHEMA,
        "git_sha": _git_sha(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "smoke": smoke_mode(),
        "jobs": jobs,
        "repeats": max(1, repeats),
        "scale": {
            "gap_window": effective_gap_window(),
            "gap_scale": effective_gap_scale(),
            "spec_window": effective_spec_window(),
        },
        "matrix": {
            "workloads": len(traces),
            "policies": len(policies),
            "cells": cells,
        },
        "engines": engines,
    }
    entry["batched_speedup"] = round(
        engines["fast"]["wall_s"] / engines["batched"]["wall_s"], 3
    )
    return entry


def load_trajectory(path: Path) -> dict:
    """The trajectory document, or a fresh empty one."""
    if path.is_file():
        return json.loads(path.read_text(encoding="utf-8"))
    return {
        "schema": ENTRY_SCHEMA,
        "description": (
            "Sweep-throughput trajectory of the smoke fig2/fig3 matrix; "
            "appended by benchmarks/record_trajectory.py, gated by "
            "benchmarks/check_regression.py --trajectory"
        ),
        "entries": [],
    }


def append_entry(path: Path, entry: dict) -> None:
    document = load_trajectory(path)
    document["entries"].append(entry)
    path.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per sweep (default 1: the gated speed-up "
        "ratio is cleanest serial — see the module docstring)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per engine; the entry keeps the minimum (default 2)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_TRAJECTORY,
        help="trajectory file to append to (default: BENCH_sweep.json)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="record even with a dirty working tree or an existing entry "
             "for this commit at the same matrix shape",
    )
    args = parser.parse_args(argv)
    if str(BENCH_DIR) not in sys.path:  # direct-script and importlib runs
        sys.path.insert(0, str(BENCH_DIR))
    from recording_guard import RecordingGuardError, guard_append

    jobs = max(1, args.jobs)
    try:
        guard_append(
            args.output,
            load_trajectory(args.output).get("entries", []),
            _git_sha(),
            expected_shape(jobs),
            SHAPE_KEYS,
            force=args.force,
        )
    except RecordingGuardError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    entry = measure(jobs=jobs, repeats=max(1, args.repeats))
    append_entry(args.output, entry)
    print(
        f"appended entry for {entry['git_sha'][:12]} to {args.output} "
        f"(batched speed-up {entry['batched_speedup']:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
