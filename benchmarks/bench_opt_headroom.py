"""E4 — Belady OPT headroom at the LLC on GAP workloads.

The paper's explanation for Figure 3's flat GAP bars: even the
clairvoyant optimal policy leaves most GAP misses in place, so no
implementable policy can do much better than LRU.
"""

from repro.harness.experiments import experiment_opt_headroom


def test_e4_opt_headroom(benchmark, emit):
    report = benchmark.pedantic(experiment_opt_headroom, rounds=1, iterations=1)
    emit("e4_opt_headroom", report)

    h = report.headers
    lru_hit, opt_hit = h.index("LRU hit rate"), h.index("OPT hit rate")
    lru_mpki, opt_mpki = h.index("LRU MPKI"), h.index("OPT MPKI")

    for row in report.rows:
        # Optimality: OPT never loses to LRU.
        assert row[opt_hit] >= row[lru_hit] - 1e-9, row[0]
        assert row[opt_mpki] <= row[lru_mpki] + 1e-9, row[0]
        # Headroom is bounded: even OPT leaves GAP heavily miss-dominated.
        assert row[opt_mpki] > 0.40 * row[lru_mpki], (
            f"{row[0]}: OPT should not fix the majority of GAP misses"
        )

    mean_gain = sum(r[lru_mpki] - r[opt_mpki] for r in report.rows) / sum(
        r[lru_mpki] for r in report.rows
    )
    assert mean_gain < 0.45, "average OPT MPKI reduction must stay modest"
