"""E8 — L2 prefetcher sensitivity: the GAP conclusions must not be an
artifact of simulating without the Cascade Lake stride prefetchers."""

from repro.harness.experiments import experiment_prefetch_sensitivity


def test_e8_prefetcher_sensitivity(benchmark, emit):
    report = benchmark.pedantic(
        experiment_prefetch_sensitivity, rounds=1, iterations=1
    )
    emit("e8_prefetch_sensitivity", report)

    none_col = report.headers.index("none")
    stride_col = report.headers.index("ip-stride")
    for row in report.rows:
        workload = row[0]
        # Prefetching may cover the sequential OA/NA streams, but the
        # gather misses keep every kernel miss-dominated at the L2.
        assert row[stride_col] > 0.4 * row[none_col], (workload, row)
        assert row[stride_col] > 8, workload
