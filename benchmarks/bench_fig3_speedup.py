"""Figure 3 — geomean speed-up over LRU per suite per policy.

The paper's headline figure: on SPEC 2006/2017 the learned policies
(SHiP, Hawkeye, Glider, MPPPB) deliver clear wins over LRU; on GAP all
six policies collapse to ~1.0 and the learned ones do not dominate.

Under ``REPRO_SMOKE`` the shorter SPEC windows damp the absolute gains,
so the "clearly beats LRU" threshold relaxes; the CI regression gate
(``benchmarks/check_regression.py``) pins the exact smoke-scale numbers.
"""

from repro.harness.experiments import experiment_fig3, smoke_mode
from repro.policies.registry import PAPER_POLICIES


def test_fig3_geomean_speedups(benchmark, emit):
    report = benchmark.pedantic(experiment_fig3, rounds=1, iterations=1)
    emit("fig3_speedup", report)

    by_suite = {row[0]: dict(zip(PAPER_POLICIES, row[1:])) for row in report.rows}
    spec06, spec17, gap = by_suite["spec06"], by_suite["spec17"], by_suite["gap"]
    learned = ("ship", "hawkeye", "glider", "mpppb")
    clear_win = 1.02 if smoke_mode() else 1.03

    # SPEC suites: everything at or above LRU, learned policies at the top.
    for suite in (spec06, spec17):
        assert all(s > 0.97 for s in suite.values())
        assert max(suite[p] for p in learned) >= suite["srrip"]
        assert max(suite.values()) > clear_win, "some policy must clearly beat LRU"

    # GAP: the paper's key claim — every policy clusters near 1.0, with
    # no policy achieving SPEC-class gains, and the heavyweight learned
    # policies failing to dominate the simple ones.
    assert all(0.9 < s < 1.15 for s in gap.values()), gap
    assert max(gap[p] for p in ("hawkeye", "glider", "mpppb")) < max(
        spec06[p] for p in learned
    ), "learned policies must not transfer their SPEC gains to GAP"

    # Cross-suite: the best learned-policy gain on SPEC06 must exceed the
    # best gain anything achieves on GAP by a visible margin.
    assert max(spec06[p] for p in learned) > max(gap.values()) - 0.03
