"""E2 — PC characterization: the 'few PCs x huge footprints' structure
that defeats PC-correlating replacement on graph workloads."""

import numpy as np

from repro.harness.experiments import experiment_pc_characterization


def test_e2_pc_characterization(benchmark, emit):
    report = benchmark.pedantic(
        experiment_pc_characterization, rounds=1, iterations=1
    )
    emit("e2_pc_characterization", report)

    gap_rows = [r for r in report.rows if r[0] == "gap"]
    spec_rows = [r for r in report.rows if r[0] == "spec06"]
    assert gap_rows and spec_rows

    gap_pcs = np.array([r[2] for r in gap_rows], dtype=float)
    spec_pcs = np.array([r[2] for r in spec_rows], dtype=float)
    gap_blocks_per_pc = np.array([r[4] for r in gap_rows], dtype=float)
    gap_share = np.array([r[5] for r in gap_rows], dtype=float)
    spec_share = np.array([r[5] for r in spec_rows], dtype=float)

    # The paper: GAP kernels execute from a handful of PCs...
    assert gap_pcs.max() <= 8
    # ... fewer than typical SPEC-class codes ...
    assert np.median(spec_pcs) > gap_pcs.max()
    # ... and every GAP PC covers a huge address range: tens of
    # thousands of distinct blocks each.
    assert gap_blocks_per_pc.min() > 5_000
    # The learnability gap: each GAP PC spans a fifth or more of the
    # whole footprint (nothing for a PC-indexed table to separate),
    # while the typical SPEC PC maps to a small, predictable slice.
    # (Streaming proxies with one PC covering everything exist in SPEC
    # too — hence the median, not the max.)
    assert gap_share.min() > 2 * np.median(spec_share)
