"""E3 — reuse-distance CDFs sampled at the cache capacities.

The GAP signature is the *flat tail*: between L2 capacity and 4x the
LLC, extra capacity buys graph kernels almost nothing (their remaining
reuse lies orders of magnitude further out), while SPEC-class workloads
with working sets near the boundary gain a lot in exactly that range.
"""

from repro.harness.experiments import experiment_reuse_distance


def test_e3_reuse_distance_cdfs(benchmark, emit):
    report = benchmark.pedantic(experiment_reuse_distance, rounds=1, iterations=1)
    emit("e3_reuse_distance", report)

    # Columns: suite, workload, cold frac, L1D, L2C, LLC, 4xLLC
    l2_col = report.headers.index("L2C")
    llc_col = report.headers.index("LLC")
    big_col = report.headers.index("4xLLC")

    # CDF must be monotone in capacity for every workload.
    for row in report.rows:
        values = row[3:]
        assert list(values) == sorted(values), row[1]

    # GAP: the flat tail — scaling from L2 capacity to 4x the LLC gains
    # under 10 points of hit rate for every kernel, and no kernel gets
    # anywhere near hit-dominated at LLC capacity.
    gap_rows = [r for r in report.rows if r[0] == "gap"]
    for row in gap_rows:
        assert row[big_col] - row[l2_col] < 0.10, row[1]
        assert row[llc_col] < 0.85, row[1]

    # SPEC-class: at least one workload's working set lives in exactly
    # that range and gains dramatically from the same capacity scaling.
    spec_gains = [
        r[big_col] - r[l2_col] for r in report.rows if r[0] == "spec06"
    ]
    assert max(spec_gains) > 0.2
