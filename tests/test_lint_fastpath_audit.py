"""Fastpath-eligibility audit tests on fixture hierarchies.

Each drift the pass exists to catch is planted in a fixture and asserted
with the exact rule id, file and line; a faithful fixture passes clean.
"""

import textwrap

from repro.lint import Severity, lint_paths, make_rule

SUPPORT = """
class AccessKind:
    LOAD = 0
    STORE = 1
    IFETCH = 2
    PREFETCH = 3
    WRITEBACK = 4


class CacheHierarchy:
    def __init__(self, llc, l2_prefetcher=None, inclusive=False):
        self.llc = llc
        self.l2_prefetcher = l2_prefetcher
        self.inclusive = inclusive


class LRUPolicy(ReplacementPolicy):
    name = "lru"

    def initialize(self, num_sets, num_ways):
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def find_victim(self, set_index, access, tags):
        return 0

    def on_hit(self, set_index, way, access):
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_fill(self, set_index, way, access):
        self._clock += 1
        self._stamp[set_index][way] = self._clock
"""

CLEAN_FASTPATH = """
def fastpath_eligible(hierarchy, trace):
    if hierarchy.l2_prefetcher is not None:
        return False
    if hierarchy.inclusive:
        return False
    if type(hierarchy.llc.policy) is not LRUPolicy:
        return False
    if len(trace) and int(trace.kinds.max()) > 2:
        return False
    return True


def checkout(policy):
    return (policy._stamp, policy._clock)
"""


CLEAN_BATCH = CLEAN_FASTPATH.replace("fastpath_eligible", "batch_eligible")


def lint_fixture(tmp_path, fastpath_source, batch_source=None):
    root = tmp_path / "mem"
    root.mkdir(parents=True, exist_ok=True)
    (root / "support.py").write_text(textwrap.dedent(SUPPORT))
    fastpath = root / "fastpath.py"
    fastpath.write_text(textwrap.dedent(fastpath_source))
    if batch_source is not None:
        (root / "batch.py").write_text(textwrap.dedent(batch_source))
    return fastpath, lint_paths([root], [make_rule("fastpath-eligibility")])


class TestCleanFixture:
    def test_faithful_guards_pass(self, tmp_path):
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH)
        assert findings == []


class TestMissingPredicate:
    def test_no_eligibility_function_flagged(self, tmp_path):
        path, findings = lint_fixture(tmp_path, """
            def run_fast(hierarchy, trace):
                return None
        """)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "fastpath-eligibility"
        assert finding.path == str(path)
        assert finding.line == 1
        assert finding.severity == Severity.ERROR
        assert "no top-level fastpath_eligible" in finding.message


class TestHierarchyFeatures:
    def test_uninspected_optional_feature_flagged(self, tmp_path):
        path, findings = lint_fixture(tmp_path, """
            def fastpath_eligible(hierarchy, trace):
                if hierarchy.l2_prefetcher is not None:
                    return False
                if type(hierarchy.llc.policy) is not LRUPolicy:
                    return False
                if len(trace) and int(trace.kinds.max()) > 2:
                    return False
                return True


            def checkout(policy):
                return (policy._stamp, policy._clock)
        """)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "fastpath-eligibility"
        assert finding.path == str(path)
        assert finding.line == 2  # the fastpath_eligible def line
        assert "'inclusive'" in finding.message


class TestPolicyPinning:
    def test_isinstance_instead_of_type_pin_flagged(self, tmp_path):
        _, findings = lint_fixture(tmp_path, """
            def fastpath_eligible(hierarchy, trace):
                if hierarchy.l2_prefetcher is not None:
                    return False
                if hierarchy.inclusive:
                    return False
                if not isinstance(hierarchy.llc.policy, LRUPolicy):
                    return False
                if len(trace) and int(trace.kinds.max()) > 2:
                    return False
                return True


            def checkout(policy):
                return (policy._stamp, policy._clock)
        """)
        assert len(findings) == 1
        assert "does not pin upper-level policies" in findings[0].message
        assert "isinstance" in findings[0].hint

    def test_unreferenced_mutable_state_flagged(self, tmp_path):
        path, findings = lint_fixture(tmp_path, """
            def fastpath_eligible(hierarchy, trace):
                if hierarchy.l2_prefetcher is not None:
                    return False
                if hierarchy.inclusive:
                    return False
                if type(hierarchy.llc.policy) is not LRUPolicy:
                    return False
                if len(trace) and int(trace.kinds.max()) > 2:
                    return False
                return True


            def checkout(policy):
                return (policy._stamp,)  # forgets _clock
        """)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "fastpath-eligibility"
        assert finding.path == str(path)
        assert "LRUPolicy" in finding.message
        assert "'_clock'" in finding.message


class TestKindBound:
    def test_bound_admitting_prefetch_flagged(self, tmp_path):
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH.replace(
            "trace.kinds.max()) > 2", "trace.kinds.max()) > 3"
        ))
        assert len(findings) == 1
        message = findings[0].message
        assert "kinds<=3" in message
        assert "PREFETCH" in message

    def test_bound_excluding_ifetch_flagged(self, tmp_path):
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH.replace(
            "trace.kinds.max()) > 2", "trace.kinds.max()) >= 2"
        ))
        assert len(findings) == 1
        assert "IFETCH" in findings[0].message

    def test_missing_bound_flagged(self, tmp_path):
        _, findings = lint_fixture(tmp_path, """
            def fastpath_eligible(hierarchy, trace):
                if hierarchy.l2_prefetcher is not None:
                    return False
                if hierarchy.inclusive:
                    return False
                if type(hierarchy.llc.policy) is not LRUPolicy:
                    return False
                return True


            def checkout(policy):
                return (policy._stamp, policy._clock)
        """)
        assert len(findings) == 1
        assert "does not bound trace.kinds" in findings[0].message

    def test_mirrored_constant_on_left_accepted(self, tmp_path):
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH.replace(
            "int(trace.kinds.max()) > 2", "2 < int(trace.kinds.max())"
        ))
        assert findings == []


class TestBatchedEngine:
    """The same obligations bind repro.mem.batch's batch_eligible()."""

    def test_clean_batch_guard_passes(self, tmp_path):
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH, CLEAN_BATCH)
        assert findings == []

    def test_missing_batch_predicate_flagged(self, tmp_path):
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH, """
            def simulate_batched(trace, policies):
                return {}
        """)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "fastpath-eligibility"
        assert finding.path.endswith("batch.py")
        assert "no top-level batch_eligible" in finding.message

    def test_batch_drift_flagged_independently(self, tmp_path):
        """A drifted batch guard is flagged while fastpath.py stays clean."""
        drifted = CLEAN_BATCH.replace(
            "    if hierarchy.inclusive:\n        return False\n", ""
        )
        assert "inclusive" not in drifted  # the drift really is planted
        _, findings = lint_fixture(tmp_path, CLEAN_FASTPATH, drifted)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("batch.py")
        assert "batch_eligible() never inspects" in finding.message
        assert "'inclusive'" in finding.message


class TestLiveFastpath:
    def test_live_module_passes_the_audit(self):
        from repro.lint.analyzer import package_root

        findings = lint_paths([package_root()], [make_rule("fastpath-eligibility")])
        assert [f.render() for f in findings] == []
