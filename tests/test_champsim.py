"""Tests for ChampSim trace interchange."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.champsim import (
    CHAMPSIM_DTYPE,
    FILLER_IP,
    load_champsim_trace,
    save_champsim_trace,
)
from repro.trace.record import AccessKind

from conftest import make_trace


class TestFormat:
    def test_record_is_64_bytes(self):
        assert CHAMPSIM_DTYPE.itemsize == 64


class TestRoundTrip:
    def test_loads_and_stores_roundtrip(self, tmp_path):
        t = make_trace(
            [0x1000, 0x2000, 0x3000],
            pcs=[0x400, 0x404, 0x408],
            kinds=[int(AccessKind.LOAD), int(AccessKind.STORE), int(AccessKind.LOAD)],
            gaps=[1, 3, 2],
        )
        path = save_champsim_trace(t, tmp_path / "t.champsim")
        loaded = load_champsim_trace(path)
        assert loaded.addrs.tolist() == t.addrs.tolist()
        assert loaded.pcs.tolist() == t.pcs.tolist()
        assert loaded.kinds.tolist() == t.kinds.tolist()
        assert loaded.gaps.tolist() == t.gaps.tolist()

    def test_instruction_count_preserved(self, tmp_path):
        t = make_trace([0x1000, 0x2000], gaps=[5, 7])
        path = save_champsim_trace(t, tmp_path / "t.bin")
        loaded = load_champsim_trace(path)
        assert loaded.num_instructions == t.num_instructions
        assert loaded.info["instructions"] == 12

    def test_file_size_with_gaps(self, tmp_path):
        t = make_trace([0x1000, 0x2000], gaps=[4, 4])
        path = save_champsim_trace(t, tmp_path / "t.bin")
        assert path.stat().st_size == 8 * 64  # 8 instructions x 64 B

    def test_compact_mode(self, tmp_path):
        t = make_trace([0x1000, 0x2000], gaps=[4, 4])
        path = save_champsim_trace(t, tmp_path / "t.bin", expand_gaps=False)
        assert path.stat().st_size == 2 * 64
        loaded = load_champsim_trace(path)
        assert loaded.addrs.tolist() == t.addrs.tolist()
        assert loaded.gaps.tolist() == [1, 1]  # gap info intentionally lost

    def test_writeback_saved_as_store(self, tmp_path):
        t = make_trace([0x1000], kinds=[int(AccessKind.WRITEBACK)])
        loaded = load_champsim_trace(save_champsim_trace(t, tmp_path / "t.bin"))
        assert loaded.kinds.tolist() == [int(AccessKind.STORE)]


class TestFillerEncoding:
    def test_fillers_have_sentinel_ip(self, tmp_path):
        t = make_trace([0x1000], gaps=[3])
        path = save_champsim_trace(t, tmp_path / "t.bin")
        records = np.fromfile(path, dtype=CHAMPSIM_DTYPE)
        assert records["ip"].tolist()[:2] == [FILLER_IP, FILLER_IP]
        assert records["ip"][2] == 0x400000

    def test_fillers_have_no_memory_operands(self, tmp_path):
        t = make_trace([0x1000], gaps=[3])
        records = np.fromfile(
            save_champsim_trace(t, tmp_path / "t.bin"), dtype=CHAMPSIM_DTYPE
        )
        assert not records["source_memory"][:2].any()
        assert not records["destination_memory"][:2].any()


class TestErrorPaths:
    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 100)  # not a multiple of 64
        with pytest.raises(TraceFormatError, match="64-byte"):
            load_champsim_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="empty"):
            load_champsim_trace(path)

    def test_no_memory_operands(self, tmp_path):
        records = np.zeros(4, dtype=CHAMPSIM_DTYPE)
        path = tmp_path / "nomem.bin"
        records.tofile(path)
        with pytest.raises(TraceFormatError, match="no memory operands"):
            load_champsim_trace(path)


class TestSimulationEquivalence:
    def test_roundtripped_trace_simulates_identically(self, tmp_path, small_machine):
        from repro.core.simulator import simulate
        from repro.trace import synthetic

        t = synthetic.zipf_reuse(3000, num_blocks=400, seed=12)
        loaded = load_champsim_trace(
            save_champsim_trace(t, tmp_path / "t.bin"), name=t.name
        )
        a = simulate(t, config=small_machine)
        b = simulate(loaded, config=small_machine)
        assert a.cycles == b.cycles
        assert a.levels["LLC"].demand_hits == b.levels["LLC"].demand_hits
