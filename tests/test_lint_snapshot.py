"""Fixture tests for the snapshot-completeness pass.

A deliberately incomplete toy policy must be flagged with the exact
rule/file/line, covered variants (direct reads, helper closure, super()
chains, property indirection) must pass, and the inventory helpers are
checked directly where the aggregate behaviour would hide a regression.
"""

import textwrap

from repro.lint import Severity, lint_paths, make_rule
from repro.lint.analyzer import build_context
from repro.lint.inventory import state_inventory


def lint_source(tmp_path, source):
    target = tmp_path / "policies"
    target.mkdir(parents=True, exist_ok=True)
    path = target / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return path, lint_paths([path], [make_rule("snapshot-completeness")])


INCOMPLETE = """
class Leaky(ReplacementPolicy):
    name = "leaky"

    def initialize(self, num_sets, num_ways):
        self._stamp = [[0] * num_ways for _ in range(num_sets)]
        self._history = []
        self._clock = 0

    def find_victim(self, set_index, access, tags):
        return 0

    def on_hit(self, set_index, way, access):
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_fill(self, set_index, way, access):
        self._history.append(access.block)

    def snapshot_state(self):
        return {"clock": self._clock}
"""


class TestIncompletePolicy:
    def test_missing_state_flagged_at_snapshot_def(self, tmp_path):
        path, findings = lint_source(tmp_path, INCOMPLETE)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "snapshot-completeness"
        assert finding.path == str(path)
        assert finding.line == 20  # the snapshot_state() def line
        assert finding.severity == Severity.WARNING
        assert "Leaky.snapshot_state()" in finding.message
        assert "_history" in finding.message and "_stamp" in finding.message
        assert "_clock" not in finding.message  # covered

    def test_mutating_hooks_named(self, tmp_path):
        _, findings = lint_source(tmp_path, INCOMPLETE)
        message = findings[0].message
        assert "on_fill" in message  # _history's mutator
        assert "on_hit" in message  # _stamp's mutator

    def test_missing_snapshot_anchors_at_class(self, tmp_path):
        path, findings = lint_source(tmp_path, """
            class NoSnapshot(ReplacementPolicy):
                name = "nosnap"

                def initialize(self, num_sets, num_ways):
                    self._bits = [0] * num_sets

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    self._bits[set_index] = 1

                def on_fill(self, set_index, way, access):
                    self._bits[set_index] = 1
        """)
        assert len(findings) == 1
        assert findings[0].line == 2  # the class line: no own snapshot_state


class TestCoveredVariants:
    def test_aggregate_coverage_passes(self, tmp_path):
        _, findings = lint_source(tmp_path, INCOMPLETE + """
class Fixed(Leaky):
    name = "fixed"

    def snapshot_state(self):
        return {
            "clock": self._clock,
            "history_depth": len(self._history),
            "stamps_nonzero": sum(1 for r in self._stamp for s in r if s),
        }
""")
        assert [f.message for f in findings if "Fixed" in f.message] == []

    def test_super_chain_coverage_passes(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class Base(ReplacementPolicy):
                name = "base"

                def initialize(self, num_sets, num_ways):
                    self._clock = 0

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    self._clock += 1

                def on_fill(self, set_index, way, access):
                    self._clock += 1

                def snapshot_state(self):
                    return {"clock": self._clock}

            class Child(Base):
                name = "child"

                def initialize(self, num_sets, num_ways):
                    super().initialize(num_sets, num_ways)
                    self._fills = 0

                def on_fill(self, set_index, way, access):
                    super().on_fill(set_index, way, access)
                    self._fills += 1

                def snapshot_state(self):
                    state = super().snapshot_state()
                    state["fills"] = self._fills
                    return state
        """)
        assert findings == []

    def test_property_indirection_counts_as_coverage(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            class ViaProperty(ReplacementPolicy):
                name = "viaprop"

                def initialize(self, num_sets, num_ways):
                    self._hits = 0

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    self._hits += 1

                def on_fill(self, set_index, way, access):
                    pass

                @property
                def hit_total(self):
                    return self._hits

                def snapshot_state(self):
                    return {"hits": self.hit_total}
        """)
        assert findings == []

    def test_abstract_base_not_flagged(self, tmp_path):
        _, findings = lint_source(tmp_path, """
            import abc

            class Framework(ReplacementPolicy, abc.ABC):
                name = ""

                def initialize(self, num_sets, num_ways):
                    self._count = 0

                def on_hit(self, set_index, way, access):
                    self._count += 1

                @abc.abstractmethod
                def find_victim(self, set_index, access, tags):
                    ...
        """)
        assert findings == []


class TestInventory:
    def test_alias_subscript_store_counts_rebinding_does_not(self, tmp_path):
        target = tmp_path / "policies"
        target.mkdir()
        path = target / "fixture.py"
        path.write_text(textwrap.dedent("""
            class P(ReplacementPolicy):
                name = "p"

                def initialize(self, num_sets, num_ways):
                    self._table = [[0] * num_ways for _ in range(num_sets)]
                    self._role = [0] * num_sets

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_hit(self, set_index, way, access):
                    row = self._table[set_index]
                    row[way] = 1  # store through the alias: mutation

                def on_fill(self, set_index, way, access):
                    role = self._role[set_index]
                    role = role + 1  # bare rebinding: NOT a mutation
        """))
        ctx, _ = build_context([path])
        cls = ctx.class_by_name["P"]
        inventory = state_inventory(ctx, cls)
        assert "_table" in inventory.mutable
        assert "_role" not in inventory.mutable

    def test_method_call_on_state_counts_as_mutation(self, tmp_path):
        target = tmp_path / "policies"
        target.mkdir()
        path = target / "fixture.py"
        path.write_text(textwrap.dedent("""
            class P(ReplacementPolicy):
                name = "p"

                def initialize(self, num_sets, num_ways):
                    self._history = []

                def find_victim(self, set_index, access, tags):
                    return 0

                def on_fill(self, set_index, way, access):
                    self._history.append(access.block)
        """))
        ctx, _ = build_context([path])
        inventory = state_inventory(ctx, ctx.class_by_name["P"])
        assert inventory.mutated_by["_history"] == {"on_fill"}
